#!/usr/bin/env sh
# Records the perf trajectory of the parallel/cached hot kernels: runs the
# microbench suite in --json mode, which writes BENCH_visibility.json,
# BENCH_codebook.json, BENCH_codec.json and BENCH_session.json at the
# repository root (median ns per iteration, host thread budget, git
# revision). The codec report compares the reused-arena encoder against a
# faithful copy of the pre-arena seed encoder (same bitstream, naive
# per-call allocation); the session report times the double-buffered frame
# loop end to end. Commit the refreshed files alongside perf-relevant
# changes so regressions are visible in review as a plain diff.
#
# After the run, the fresh codec medians are compared against the
# previously committed BENCH_codec.json: any tracked kernel slower by more
# than VOLCAST_BENCH_TOLERANCE percent (default 25) fails the script, so a
# codec perf regression cannot be recorded silently. The comparison is
# skipped (with a warning) when the baseline was recorded with a different
# host thread budget — those medians are not comparable.
#
# The two end-to-end throughput benches are ratcheted the same way: the
# campus bin's users_per_sec (BENCH_campus.json) and the server bin's
# client_frames_per_sec (BENCH_server.json) must not drop more than
# VOLCAST_BENCH_TOLERANCE percent below their committed baselines (note
# the inverted direction: throughput regresses *downward*). Same
# host_threads skip applies.
#
# Usage: scripts/bench_baseline.sh [extra args passed to the bench binary]
# Knobs: VOLCAST_BENCH_SAMPLES   (default 20 timed samples per bench)
#        VOLCAST_BENCH_TOLERANCE (default 25, percent regression tolerated)

set -eu

export CARGO_NET_OFFLINE=true

cd "$(dirname "$0")/.."

# The scaling benches need >= 4 hardware threads for their _t4 records;
# on smaller hosts the binary skips those records (a 4-worker run on a
# 1-core box measures oversubscription, not scaling). Warn here too so the
# skip is visible even if the bench output scrolls by.
host_threads=$(nproc 2>/dev/null || echo 1)
echo "host_threads=${host_threads}"
if [ "${host_threads}" -lt 4 ]; then
    echo "WARNING: host has ${host_threads} thread(s) < 4; _t4 bench records will be skipped." >&2
    echo "WARNING: do not commit BENCH_*.json from this host over baselines that have _t4 rows." >&2
fi

# Stash the committed baselines before the benches overwrite them.
tmpdir=$(mktemp -d)
trap 'rm -rf "${tmpdir}"' EXIT
baseline=""
if [ -f BENCH_codec.json ]; then
    baseline="${tmpdir}/codec.json"
    cp BENCH_codec.json "${baseline}"
fi
for f in BENCH_campus.json BENCH_server.json; do
    [ -f "$f" ] && cp "$f" "${tmpdir}/$f"
done

cargo bench -p volcast-bench --bench microbench -- --json "$@"

# --- End-to-end throughput benches (campus + session server). ----------
cargo build --release -p volcast-bench --bin campus --bin server
./target/release/campus
./target/release/server

tolerance="${VOLCAST_BENCH_TOLERANCE:-25}"
threads_of() {
    sed -n 's/.*"host_threads":\([0-9]*\).*/\1/p' "$1" | head -1
}
field_of() {
    sed -n 's/.*"'"$2"'":\([0-9.]*\).*/\1/p' "$1" | head -1
}

# Throughput ratchet: fresh $2 in $1 must not drop more than tolerance %
# below the stashed baseline (higher is better — inverted vs the codec
# latency check). Skipped when there is no baseline, the baseline predates
# the field, or host_threads differ.
ratchet_throughput() {
    report="$1"
    metric="$2"
    old="${tmpdir}/${report}"
    if [ ! -f "${old}" ]; then
        echo "NOTE: no committed ${report}; recording fresh baseline." >&2
        return 0
    fi
    old_v=$(field_of "${old}" "${metric}")
    new_v=$(field_of "${report}" "${metric}")
    if [ -z "${old_v}" ] || [ -z "${new_v}" ]; then
        echo "NOTE: ${report} baseline predates ${metric}; skipping ratchet." >&2
        return 0
    fi
    old_t=$(threads_of "${old}")
    new_t=$(threads_of "${report}")
    if [ -z "${old_t}" ] || [ "${old_t}" != "${new_t}" ]; then
        echo "WARNING: ${report} baseline host_threads=${old_t:-unset} != current ${new_t}; skipping ratchet." >&2
        return 0
    fi
    awk -v old="${old_v}" -v new="${new_v}" -v tol="${tolerance}" \
        -v report="${report}" -v metric="${metric}" '
        BEGIN {
            floor = old * (1 - tol / 100)
            if (new < floor) {
                printf "  FAIL: %s %s %.1f < %.1f allowed (baseline %.1f - %s%%)\n", report, metric, new, floor, old, tol
                exit 1
            }
            printf "  ok:   %s %s %.1f (baseline %.1f)\n", report, metric, new, old
        }' || {
        echo "ERROR: ${report} ${metric} regressed more than ${tolerance}% vs the committed baseline." >&2
        echo "Fix the regression, or raise VOLCAST_BENCH_TOLERANCE if the slowdown is intended." >&2
        exit 1
    }
}

echo "throughput regression check (tolerance ${tolerance}%):"
ratchet_throughput BENCH_campus.json users_per_sec
ratchet_throughput BENCH_server.json client_frames_per_sec

[ -n "${baseline}" ] || exit 0

# "name median_ns" per bench record (the reports are single-line JSON from
# our own writer, so one record per '{' split is reliable).
medians() {
    tr '{' '\n' <"$1" | awk -F'"' '
        /"name":/ {
            name = ""
            for (i = 1; i <= NF; i++) if ($i == "name") name = $(i + 2)
            if (name != "" && match($0, /"median_ns":[0-9.]+/))
                print name, substr($0, RSTART + 12, RLENGTH - 12)
        }'
}
threads_of() {
    sed -n 's/.*"host_threads":\([0-9]*\).*/\1/p' "$1" | head -1
}

tolerance="${VOLCAST_BENCH_TOLERANCE:-25}"
old_threads=$(threads_of "${baseline}")
new_threads=$(threads_of BENCH_codec.json)
if [ "${old_threads}" != "${new_threads}" ]; then
    echo "WARNING: baseline host_threads=${old_threads} != current ${new_threads}; skipping codec regression check." >&2
    exit 0
fi

echo "codec regression check (tolerance ${tolerance}%):"
if ! {
    medians "${baseline}" | sed 's/^/old /'
    medians BENCH_codec.json | sed 's/^/new /'
} | awk -v tol="${tolerance}" '
    $1 == "old" { old[$2] = $3 }
    $1 == "new" { new[$2] = $3 }
    END {
        fail = 0
        for (n in new) {
            if (!(n in old)) { printf "  new:  %s median %.0f ns (no baseline)\n", n, new[n]; continue }
            limit = old[n] * (1 + tol / 100)
            if (new[n] > limit) {
                printf "  FAIL: %s median %.0f ns > %.0f ns allowed (baseline %.0f ns + %s%%)\n", n, new[n], limit, old[n], tol
                fail = 1
            } else {
                printf "  ok:   %s median %.0f ns (baseline %.0f ns)\n", n, new[n], old[n]
            }
        }
        exit fail
    }'; then
    echo "ERROR: codec kernel(s) regressed more than ${tolerance}% vs the committed BENCH_codec.json." >&2
    echo "Fix the regression, or raise VOLCAST_BENCH_TOLERANCE if the slowdown is intended." >&2
    exit 1
fi

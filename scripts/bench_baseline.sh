#!/usr/bin/env sh
# Records the perf trajectory of the parallel/cached hot kernels: runs the
# microbench suite in --json mode, which writes BENCH_visibility.json,
# BENCH_codebook.json, BENCH_codec.json and BENCH_session.json at the
# repository root (median ns per iteration, host thread budget, git
# revision). The codec report compares the reused-arena encoder against a
# faithful copy of the pre-arena seed encoder (same bitstream, naive
# per-call allocation); the session report times the double-buffered frame
# loop end to end. Commit the refreshed files alongside perf-relevant
# changes so regressions are visible in review as a plain diff.
#
# Usage: scripts/bench_baseline.sh [extra args passed to the bench binary]
# Knobs: VOLCAST_BENCH_SAMPLES (default 20 timed samples per bench).

set -eu

export CARGO_NET_OFFLINE=true

cd "$(dirname "$0")/.."

# The scaling benches need >= 4 hardware threads for their _t4 records;
# on smaller hosts the binary skips those records (a 4-worker run on a
# 1-core box measures oversubscription, not scaling). Warn here too so the
# skip is visible even if the bench output scrolls by.
host_threads=$(nproc 2>/dev/null || echo 1)
echo "host_threads=${host_threads}"
if [ "${host_threads}" -lt 4 ]; then
    echo "WARNING: host has ${host_threads} thread(s) < 4; _t4 bench records will be skipped." >&2
    echo "WARNING: do not commit BENCH_*.json from this host over baselines that have _t4 rows." >&2
fi

cargo bench -p volcast-bench --bench microbench -- --json "$@"

#!/usr/bin/env sh
# Records the perf trajectory of the parallel/cached hot kernels: runs the
# microbench suite in --json mode, which writes BENCH_visibility.json,
# BENCH_codebook.json, BENCH_codec.json and BENCH_session.json at the
# repository root (median ns per iteration, host thread budget, git
# revision). The codec report compares the reused-arena encoder against a
# faithful copy of the pre-arena seed encoder (same bitstream, naive
# per-call allocation); the session report times the double-buffered frame
# loop end to end. Commit the refreshed files alongside perf-relevant
# changes so regressions are visible in review as a plain diff.
#
# After the run, the fresh codec medians are compared against the
# previously committed BENCH_codec.json: any tracked kernel slower by more
# than VOLCAST_BENCH_TOLERANCE percent (default 25) fails the script, so a
# codec perf regression cannot be recorded silently. The comparison is
# skipped (with a warning) when the baseline was recorded with a different
# host thread budget — those medians are not comparable.
#
# Usage: scripts/bench_baseline.sh [extra args passed to the bench binary]
# Knobs: VOLCAST_BENCH_SAMPLES   (default 20 timed samples per bench)
#        VOLCAST_BENCH_TOLERANCE (default 25, percent slowdown tolerated)

set -eu

export CARGO_NET_OFFLINE=true

cd "$(dirname "$0")/.."

# The scaling benches need >= 4 hardware threads for their _t4 records;
# on smaller hosts the binary skips those records (a 4-worker run on a
# 1-core box measures oversubscription, not scaling). Warn here too so the
# skip is visible even if the bench output scrolls by.
host_threads=$(nproc 2>/dev/null || echo 1)
echo "host_threads=${host_threads}"
if [ "${host_threads}" -lt 4 ]; then
    echo "WARNING: host has ${host_threads} thread(s) < 4; _t4 bench records will be skipped." >&2
    echo "WARNING: do not commit BENCH_*.json from this host over baselines that have _t4 rows." >&2
fi

# Stash the committed codec baseline before the bench overwrites it.
baseline=""
if [ -f BENCH_codec.json ]; then
    baseline=$(mktemp)
    cp BENCH_codec.json "${baseline}"
    trap 'rm -f "${baseline}"' EXIT
fi

cargo bench -p volcast-bench --bench microbench -- --json "$@"

[ -n "${baseline}" ] || exit 0

# "name median_ns" per bench record (the reports are single-line JSON from
# our own writer, so one record per '{' split is reliable).
medians() {
    tr '{' '\n' <"$1" | awk -F'"' '
        /"name":/ {
            name = ""
            for (i = 1; i <= NF; i++) if ($i == "name") name = $(i + 2)
            if (name != "" && match($0, /"median_ns":[0-9.]+/))
                print name, substr($0, RSTART + 12, RLENGTH - 12)
        }'
}
threads_of() {
    sed -n 's/.*"host_threads":\([0-9]*\).*/\1/p' "$1" | head -1
}

tolerance="${VOLCAST_BENCH_TOLERANCE:-25}"
old_threads=$(threads_of "${baseline}")
new_threads=$(threads_of BENCH_codec.json)
if [ "${old_threads}" != "${new_threads}" ]; then
    echo "WARNING: baseline host_threads=${old_threads} != current ${new_threads}; skipping codec regression check." >&2
    exit 0
fi

echo "codec regression check (tolerance ${tolerance}%):"
if ! {
    medians "${baseline}" | sed 's/^/old /'
    medians BENCH_codec.json | sed 's/^/new /'
} | awk -v tol="${tolerance}" '
    $1 == "old" { old[$2] = $3 }
    $1 == "new" { new[$2] = $3 }
    END {
        fail = 0
        for (n in new) {
            if (!(n in old)) { printf "  new:  %s median %.0f ns (no baseline)\n", n, new[n]; continue }
            limit = old[n] * (1 + tol / 100)
            if (new[n] > limit) {
                printf "  FAIL: %s median %.0f ns > %.0f ns allowed (baseline %.0f ns + %s%%)\n", n, new[n], limit, old[n], tol
                fail = 1
            } else {
                printf "  ok:   %s median %.0f ns (baseline %.0f ns)\n", n, new[n], old[n]
            }
        }
        exit fail
    }'; then
    echo "ERROR: codec kernel(s) regressed more than ${tolerance}% vs the committed BENCH_codec.json." >&2
    echo "Fix the regression, or raise VOLCAST_BENCH_TOLERANCE if the slowdown is intended." >&2
    exit 1
fi

#!/usr/bin/env sh
# Records the perf trajectory of the parallel/cached hot kernels: runs the
# microbench suite in --json mode, which writes BENCH_visibility.json and
# BENCH_codebook.json at the repository root (median ns per iteration at
# 1 and 4 worker threads, host thread budget, git revision). Commit the
# refreshed files alongside perf-relevant changes so regressions are
# visible in review as a plain diff.
#
# Usage: scripts/bench_baseline.sh [extra args passed to the bench binary]
# Knobs: VOLCAST_BENCH_SAMPLES (default 20 timed samples per bench).

set -eu

export CARGO_NET_OFFLINE=true

cd "$(dirname "$0")/.."
cargo bench -p volcast-bench --bench microbench -- --json "$@"

#!/usr/bin/env sh
# Full quality gate for the volcast workspace, run with the network forced
# off. The workspace has no external dependencies, so an empty registry
# cache must be enough to pass every step (see DESIGN.md §7).
#
# Usage: scripts/verify.sh  (from the repository root)

set -eu

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (VOLCAST_THREADS=1)"
VOLCAST_THREADS=1 cargo test --workspace -q

echo "==> cargo test (VOLCAST_THREADS=4)"
VOLCAST_THREADS=4 cargo test --workspace -q

echo "==> fig2a regenerates byte-identically at both thread counts"
tmp_fig2a="$(mktemp)"
trap 'rm -f "$tmp_fig2a"' EXIT
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin fig2a > "$tmp_fig2a"
diff results/fig2a.txt "$tmp_fig2a"
VOLCAST_THREADS=4 cargo run -q --release -p volcast-bench --bin fig2a > "$tmp_fig2a"
diff results/fig2a.txt "$tmp_fig2a"

echo "verify: all checks passed"

#!/usr/bin/env sh
# Full quality gate for the volcast workspace, run with the network forced
# off. The workspace has no external dependencies, so an empty registry
# cache must be enough to pass every step (see DESIGN.md §7).
#
# Usage: scripts/verify.sh  (from the repository root)

set -eu

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "verify: all checks passed"

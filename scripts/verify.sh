#!/usr/bin/env sh
# Full quality gate for the volcast workspace, run with the network forced
# off. The workspace has no external dependencies, so an empty registry
# cache must be enough to pass every step (see DESIGN.md §7).
#
# Usage: scripts/verify.sh  (from the repository root)

set -eu

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied, unsafe blocks must carry SAFETY docs)"
# Every unsafe block in the workspace lives in volcast-pointcloud's
# codec::simd module and must explain itself; all other crates forbid
# unsafe at the crate root (volcast-util's counting allocator excepted).
cargo clippy --workspace --all-targets -- -D warnings -D clippy::undocumented-unsafe-blocks

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (VOLCAST_THREADS=1)"
VOLCAST_THREADS=1 cargo test --workspace -q

echo "==> cargo test (VOLCAST_THREADS=4)"
VOLCAST_THREADS=4 cargo test --workspace -q

echo "==> cargo test (VOLCAST_TRACE=1: suite passes with tracing on)"
VOLCAST_TRACE=1 cargo test --workspace -q

echo "==> cargo test (VOLCAST_NO_SIMD=1: scalar codec fallback is equivalent)"
# Forces the codec's scalar backend; every bitstream-equality and
# round-trip test must pass unchanged, proving the SIMD kernels are a pure
# wall-clock optimization.
VOLCAST_NO_SIMD=1 cargo test -q -p volcast-pointcloud

echo "==> codec round-trip is allocation-free under the counting allocator"
# Own test binary: the counting global allocator is process-wide, so the
# steady-state assertion must not share a process with other tests. Run in
# release (the assertion is about the optimized frame path) and with
# tracing on — the test disables obs itself and must stay green anyway.
VOLCAST_TRACE=1 cargo test --release -q -p volcast-pointcloud --test codec_alloc

echo "==> fig2a regenerates byte-identically at both thread counts"
tmp_fig2a="$(mktemp)"
tmp_obs="$(mktemp -d)"
trap 'rm -rf "$tmp_fig2a" "$tmp_obs"' EXIT
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin fig2a > "$tmp_fig2a"
diff results/fig2a.txt "$tmp_fig2a"
VOLCAST_THREADS=4 cargo run -q --release -p volcast-bench --bin fig2a > "$tmp_fig2a"
diff results/fig2a.txt "$tmp_fig2a"

echo "==> fig2a obs snapshot matches the committed copy at both thread counts"
# With tracing on, fig2a dumps its deterministic metrics snapshot; it must
# be byte-identical to results/obs_fig2a.json regardless of the worker
# count (VOLCAST_OBS_DIR redirects the dump so the committed file is the
# untouched reference).
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=1 \
    cargo run -q --release -p volcast-bench --bin fig2a > /dev/null
diff results/obs_fig2a.json "$tmp_obs/obs_fig2a.json"
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=4 \
    cargo run -q --release -p volcast-bench --bin fig2a > /dev/null
diff results/obs_fig2a.json "$tmp_obs/obs_fig2a.json"

echo "==> fault-scenario matrix is deterministic across thread counts"
# The fault-injection gate: every scenario's SessionOutcome FNV and obs
# snapshot must match the committed references at 1 and 4 workers — in
# both delivery modes (single-stream ladder and layered base +
# enhancements + XOR-parity FEC; the layered rows carry pinned hashes).
sh scripts/fault_matrix.sh

echo "==> wire-format fuzz smoke (1000 seeded mutations, no panics)"
# The server-facing robustness gate: random bit flips, splats,
# truncations, and duplications over a valid stream must never panic the
# parser, and a payload served as valid must hash to its checksum.
cargo test --release -q -p volcast-net --test wire fuzz_smoke_random_mutations_never_panic

echo "==> server bench is byte-identical at VOLCAST_THREADS=1 and 8"
# The session server at its full default scale (1200 offered clients,
# admission cap 1024, 120 frames; runs in well under a second). stdout
# carries only deterministic metrics and the outcome hash, so a plain
# diff is the thread-invariance witness — and the run leaves
# BENCH_server.json regenerated at the canonical scale.
tmp_srv1="$(mktemp)"
tmp_srv8="$(mktemp)"
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin server > "$tmp_srv1" 2> /dev/null
VOLCAST_THREADS=8 cargo run -q --release -p volcast-bench --bin server > "$tmp_srv8" 2> /dev/null
diff "$tmp_srv1" "$tmp_srv8"
rm -f "$tmp_srv1" "$tmp_srv8"

echo "==> campus smoke is byte-identical at VOLCAST_THREADS=1 and 8, hash pinned"
# A fast campus configuration (500 users, 8 APs, 30 frames; ~50 ms) with
# the outcome hash pinned: the room-epoch hot path — epoch-invariant RSS
# caching, plan-skeleton reuse, the flattened simulator core — cannot
# drift without failing this diff. --report '' keeps the committed
# full-scale BENCH_campus.json untouched.
tmp_cmp1="$(mktemp)"
tmp_cmp8="$(mktemp)"
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin campus -- \
    --users 500 --aps 8 --frames 30 --report '' > "$tmp_cmp1" 2> /dev/null
VOLCAST_THREADS=8 cargo run -q --release -p volcast-bench --bin campus -- \
    --users 500 --aps 8 --frames 30 --report '' > "$tmp_cmp8" 2> /dev/null
diff "$tmp_cmp1" "$tmp_cmp8"
grep -q "outcome hash 0x671fa175dde52bf0" "$tmp_cmp1" || {
    echo "ERROR: campus smoke outcome hash drifted (expected 0x671fa175dde52bf0):" >&2
    tail -1 "$tmp_cmp1" >&2
    exit 1
}
rm -f "$tmp_cmp1" "$tmp_cmp8"

echo "verify: all checks passed"

#!/usr/bin/env sh
# Fault-scenario determinism gate: runs the fault matrix (`--bin faults`)
# at VOLCAST_THREADS=1 and =4 and asserts the outputs — the FNV-1a hashes
# of every scenario's SessionOutcome plus the headline stats — are byte
# for byte identical to each other AND to the committed reference in
# results/faults.txt. With tracing on, the per-scenario deterministic obs
# snapshots (fault activations, ladder reactions, retransmits) must also
# match results/obs_faults_<scenario>.json at both thread counts.
#
# Usage: scripts/fault_matrix.sh  (from the repository root)

set -eu

export CARGO_NET_OFFLINE=true

tmp_out="$(mktemp)"
tmp_obs="$(mktemp -d)"
trap 'rm -rf "$tmp_out" "$tmp_obs"' EXIT

echo "==> fault matrix reproduces byte-identically at both thread counts"
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin faults > "$tmp_out"
diff results/faults.txt "$tmp_out"
VOLCAST_THREADS=4 cargo run -q --release -p volcast-bench --bin faults > "$tmp_out"
diff results/faults.txt "$tmp_out"

echo "==> per-scenario obs snapshots match the committed copies"
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=1 \
    cargo run -q --release -p volcast-bench --bin faults > /dev/null
for f in results/obs_faults_*.json; do
    diff "$f" "$tmp_obs/$(basename "$f")"
done
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=4 \
    cargo run -q --release -p volcast-bench --bin faults > /dev/null
for f in results/obs_faults_*.json; do
    diff "$f" "$tmp_obs/$(basename "$f")"
done

echo "fault matrix: all checks passed"

#!/usr/bin/env sh
# Fault-scenario determinism gate: runs the fault matrix (`--bin faults`)
# at VOLCAST_THREADS=1 and =4 and asserts the outputs — the FNV-1a hashes
# of every scenario's SessionOutcome plus the headline stats — are byte
# for byte identical to each other AND to the committed reference in
# results/faults.txt. The matrix covers both delivery modes: the
# single-stream ladder AND the layered (base + enhancements + XOR-parity
# FEC) rerun of every scenario, so layered scheduling divergence across
# worker counts fails this gate too. With tracing on, the per-scenario
# deterministic obs snapshots (fault activations, ladder reactions,
# retransmits, FEC recoveries) must also match
# results/obs_faults_<scenario>.json at both thread counts.
#
# Usage: scripts/fault_matrix.sh  (from the repository root)

set -eu

export CARGO_NET_OFFLINE=true

tmp_out="$(mktemp)"
tmp_obs="$(mktemp -d)"
trap 'rm -rf "$tmp_out" "$tmp_obs"' EXIT

echo "==> fault matrix reproduces byte-identically at both thread counts"
VOLCAST_THREADS=1 cargo run -q --release -p volcast-bench --bin faults > "$tmp_out"
diff results/faults.txt "$tmp_out"
VOLCAST_THREADS=4 cargo run -q --release -p volcast-bench --bin faults > "$tmp_out"
diff results/faults.txt "$tmp_out"

echo "==> layered-delivery fault scenarios present with pinned outcomes"
# Two sentinel layered scenarios (a loss burst absorbed by the FEC rung
# and the all-faults-combined run) must appear with their pinned hashes:
# catches a regeneration of results/faults.txt that silently dropped or
# drifted the layered half of the matrix.
grep -q "Layered delivery + proactive FEC" results/faults.txt
grep -q "^loss             0xb3deb110b88c71fa" "$tmp_out"
grep -q "^combined         0x31d6fe1ceada53dd" "$tmp_out"

echo "==> per-scenario obs snapshots match the committed copies"
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=1 \
    cargo run -q --release -p volcast-bench --bin faults > /dev/null
for f in results/obs_faults_*.json; do
    diff "$f" "$tmp_obs/$(basename "$f")"
done
VOLCAST_TRACE=1 VOLCAST_OBS_DIR="$tmp_obs" VOLCAST_THREADS=4 \
    cargo run -q --release -p volcast-bench --bin faults > /dev/null
for f in results/obs_faults_*.json; do
    diff "$f" "$tmp_obs/$(basename "$f")"
done

echo "fault matrix: all checks passed"

//! Cross-crate integration tests exercising the public facade end to end.

use volcast::core::{
    max_sustainable_fps, quick_session, quick_session_with_device, AbrPolicy, GroupPlanner,
    GroupingInputs, MitigationMode, PlayerKind, SystemConfig,
};
use volcast::geom::Vec3;
use volcast::mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};
use volcast::net::{AdMac, MacModel};
use volcast::pointcloud::{codec, CellGrid, DecodeModel, Ladder, QualityLevel, SyntheticBody};
use volcast::viewport::{iou, DeviceClass, UserStudy, VisibilityComputer, VisibilityOptions};

/// The full data path: generate geometry -> encode -> decode -> partition
/// -> visibility -> similarity, all through the facade.
#[test]
fn content_pipeline_end_to_end() {
    let body = SyntheticBody::default();
    let cloud = body.frame(0, 12_000);

    // Codec round trip.
    let (enc, stats) = codec::encode(&cloud, &codec::CodecConfig::default());
    let decoded = codec::decode(&enc).expect("decode");
    assert_eq!(decoded.len(), stats.voxels);
    assert!(stats.bits_per_point < 40.0);

    // Cells + visibility for two users.
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    assert!(!partition.is_empty());
    let study = UserStudy::generate(9, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let m0 = vc.compute(&study.traces[16].pose(10), &grid, &partition);
    let m1 = vc.compute(&study.traces[17].pose(10), &grid, &partition);
    assert!(!m0.is_empty() && !m1.is_empty());
    let similarity = iou(&m0, &m1);
    assert!((0.0..=1.0).contains(&similarity));
}

/// The network path: positions -> beams -> RSS -> MCS -> airtime.
#[test]
fn radio_pipeline_end_to_end() {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let mcs = McsTable::dmg();
    let mac = AdMac::default();

    let users = [Vec3::new(-1.5, 1.5, 0.0), Vec3::new(1.5, 1.5, 0.0)];
    let beam = designer.design(&users, &[]);
    let rate = mcs.multicast_rate_mbps(&beam.member_rss_dbm);
    assert!(rate > 0.0, "group in outage");
    let airtime = mac.airtime_s(500_000.0, rate, 2);
    assert!(airtime.is_finite() && airtime > 0.0);
}

/// Table-1 style modeling through the facade.
#[test]
fn table1_model_reproduces_anchor_rows() {
    let ad = AdMac::default();
    let decode = DecodeModel::default();
    // ad, 1 user, all qualities: 30 FPS.
    let rate1 = ad.per_user_rate_mbps(2502.5, 1);
    for level in QualityLevel::ALL {
        let q = Ladder::paper().quality(level);
        let fps = max_sustainable_fps(
            rate1,
            q.full_frame_bytes(),
            q.points_per_frame,
            &decode,
            30.0,
        );
        assert_eq!(fps, 30.0, "{level:?}");
    }
    // ad, 7 users, high quality vanilla: ~11-12 FPS in the paper.
    let rate7 = ad.per_user_rate_mbps(2502.5, 7);
    let q = Ladder::paper().quality(QualityLevel::High);
    let fps7 = max_sustainable_fps(
        rate7,
        q.full_frame_bytes(),
        q.points_per_frame,
        &decode,
        30.0,
    );
    assert!((9.0..15.0).contains(&fps7), "7-user high fps {fps7}");
}

/// Grouping through the facade with hand-built maps.
#[test]
fn grouping_api_is_usable_standalone() {
    use volcast::pointcloud::{CellId, CellInfo};
    use volcast::viewport::VisibilityMap;

    let mut m1 = VisibilityMap::new();
    let mut m2 = VisibilityMap::new();
    for x in 0..4 {
        m1.cells.insert(CellId::new(x, 0, 0), 1.0);
        m2.cells.insert(CellId::new(x + 1, 0, 0), 1.0);
    }
    let partition: Vec<CellInfo> = (0..5)
        .map(|x| CellInfo {
            id: CellId::new(x, 0, 0),
            point_count: 10,
            point_indices: vec![],
        })
        .collect();
    let sizes = vec![50_000.0; 5];
    let maps = vec![m1, m2];
    let rates = vec![2000.0, 2000.0];
    let mc = |_: &[usize]| 1500.0;
    let plan = GroupPlanner::new(SystemConfig::default()).plan(&GroupingInputs {
        maps: &maps,
        partition: &partition,
        cell_sizes: &sizes,
        unicast_rate_mbps: &rates,
        multicast_rate_mbps: &mc,
    });
    assert_eq!(
        plan.groups.len(),
        1,
        "3/5 overlap at high rate should merge"
    );
    assert!(plan.feasible);
}

/// Full sessions across players, deterministic and ordered as expected.
#[test]
fn sessions_rank_players_correctly() {
    let run = |player: PlayerKind| {
        let mut s = quick_session_with_device(player, 4, 45, 42, DeviceClass::Phone);
        s.params.analysis_points = 6_000;
        s.params.fixed_quality = Some(QualityLevel::High);
        s.run().unwrap()
    };
    let vanilla = run(PlayerKind::Vanilla);
    let vivo = run(PlayerKind::Vivo);
    let volcast = run(PlayerKind::Volcast);

    // Airtime ordering: volcast <= vivo <= vanilla.
    assert!(vivo.mean_frame_time_s <= vanilla.mean_frame_time_s + 1e-9);
    assert!(volcast.mean_frame_time_s <= vivo.mean_frame_time_s + 1e-9);
    // QoE ordering at this load.
    assert!(volcast.qoe.mean_fps() >= vivo.qoe.mean_fps() - 0.5);
    assert!(volcast.multicast_byte_fraction > 0.0);
}

/// ABR policies are all runnable and adaptive sessions pick qualities.
#[test]
fn abr_policies_run() {
    for abr in [
        AbrPolicy::BufferOnly,
        AbrPolicy::ThroughputOnly,
        AbrPolicy::CrossLayer,
    ] {
        let mut s = quick_session(PlayerKind::Volcast, 2, 30, 5);
        s.params.abr = abr;
        s.params.analysis_points = 4_000;
        let out = s.run().unwrap();
        assert_eq!(out.qoe.users.len(), 2);
        assert!(out.qoe.mean_fps() > 0.0, "{abr:?}");
    }
}

/// Mitigation modes are both runnable with walkers.
#[test]
fn mitigation_modes_run_with_walker() {
    use volcast::geom::Pose;
    use volcast::viewport::Trace;
    let walker = Trace {
        user_id: usize::MAX,
        device: DeviceClass::Headset,
        rate_hz: 30.0,
        poses: (0..45)
            .map(|f| {
                Pose::new(
                    Vec3::new(-3.0 + f as f64 * 0.15, 1.7, 2.0),
                    Default::default(),
                )
            })
            .collect(),
    };
    for mode in [MitigationMode::Reactive, MitigationMode::Proactive] {
        let mut s = quick_session_with_device(PlayerKind::Volcast, 3, 45, 42, DeviceClass::Phone);
        s.params.mitigation = mode;
        s.params.analysis_points = 4_000;
        s.params.fixed_quality = Some(QualityLevel::Low);
        s.walkers.push(walker.clone());
        let out = s.run().unwrap();
        assert!(out.blocked_user_frames > 0, "walker never blocked anyone");
    }
}

//! `volcast` command-line interface.
//!
//! Thin front end over the library for running sessions and generating
//! trace studies without writing Rust:
//!
//! ```text
//! volcast session --player volcast --users 4 --frames 120 --device phone
//! volcast study --seed 42 --frames 300 --out study.json
//! volcast info
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use volcast::core::session::DeliveryMode;
use volcast::core::{quick_session_with_device, AbrPolicy, MitigationMode, PlayerKind};
use volcast::net::FaultConfig;
use volcast::pointcloud::QualityLevel;
use volcast::viewport::{save_study, DeviceClass, UserStudy};

fn usage() -> &'static str {
    "volcast — multi-user volumetric video streaming simulator (HotNets'21)

USAGE:
  volcast session [--player vanilla|vivo|volcast] [--users N] [--frames N]
                  [--device phone|headset] [--quality low|medium|high|auto]
                  [--abr buffer|throughput|crosslayer]
                  [--delivery single|layered]
                  [--mitigation reactive|proactive] [--seed N]
                  [--faults SPEC]
  volcast study   [--seed N] [--frames N] [--phones N] [--headsets N]
                  --out FILE.json
  volcast info

Fault injection: --faults (or the VOLCAST_FAULTS env var) takes a spec like
  seed=7,outage=0.02:6,loss=0.03,blackout=30:10
The full grammar (every class, defaults, error behaviour) is documented on
the `volcast_net::faults` module (`cargo doc --open`).

Run the paper's experiments with `cargo run -p volcast-bench --bin <name>`
(table1, fig2a, fig2b, fig3b, fig3d, fig3e, ext_*, faults, campus)."
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: '{v}'")),
    }
}

fn cmd_session(flags: HashMap<String, String>) -> Result<(), String> {
    let player = match flags.get("player").map(String::as_str).unwrap_or("volcast") {
        "vanilla" => PlayerKind::Vanilla,
        "vivo" => PlayerKind::Vivo,
        "volcast" => PlayerKind::Volcast,
        other => return Err(format!("unknown player '{other}'")),
    };
    let device = match flags.get("device").map(String::as_str).unwrap_or("headset") {
        "phone" => DeviceClass::Phone,
        "headset" => DeviceClass::Headset,
        other => return Err(format!("unknown device '{other}'")),
    };
    let quality = match flags.get("quality").map(String::as_str).unwrap_or("auto") {
        "low" => Some(QualityLevel::Low),
        "medium" => Some(QualityLevel::Medium),
        "high" => Some(QualityLevel::High),
        "auto" => None,
        other => return Err(format!("unknown quality '{other}'")),
    };
    let abr = match flags.get("abr").map(String::as_str).unwrap_or("crosslayer") {
        "buffer" => AbrPolicy::BufferOnly,
        "throughput" => AbrPolicy::ThroughputOnly,
        "crosslayer" => AbrPolicy::CrossLayer,
        other => return Err(format!("unknown abr '{other}'")),
    };
    // Layered delivery: multicast base layer + per-user unicast
    // enhancements + the proactive XOR-parity FEC rung (DESIGN.md §16).
    let delivery = match flags
        .get("delivery")
        .map(String::as_str)
        .unwrap_or("single")
    {
        "single" => DeliveryMode::Single,
        "layered" => DeliveryMode::Layered,
        other => return Err(format!("unknown delivery '{other}'")),
    };
    let mitigation = match flags
        .get("mitigation")
        .map(String::as_str)
        .unwrap_or("proactive")
    {
        "reactive" => MitigationMode::Reactive,
        "proactive" => MitigationMode::Proactive,
        other => return Err(format!("unknown mitigation '{other}'")),
    };
    let users: usize = get_parse(&flags, "users", 3)?;
    let frames: usize = get_parse(&flags, "frames", 90)?;
    let seed: u64 = get_parse(&flags, "seed", 42)?;
    // --faults wins over the VOLCAST_FAULTS environment variable.
    let fault_spec = flags
        .get("faults")
        .cloned()
        .or_else(|| std::env::var("VOLCAST_FAULTS").ok());
    let faults = match fault_spec {
        Some(spec) if !spec.trim().is_empty() => {
            Some(FaultConfig::from_spec(&spec).map_err(|e| e.to_string())?)
        }
        _ => None,
    };

    let mut session = quick_session_with_device(player, users, frames, seed, device);
    session.params.fixed_quality = quality;
    session.params.abr = abr;
    session.params.delivery = delivery;
    session.params.mitigation = mitigation;
    session.params.faults = faults;
    let out = session.run().map_err(|e| e.to_string())?;

    println!(
        "{} | {} {:?} users, {} frames, seed {}",
        player.label(),
        users,
        device,
        frames,
        seed
    );
    println!("  mean FPS          {:>8.1}", out.qoe.mean_fps());
    println!("  stall ratio       {:>8.3}", out.qoe.mean_stall_ratio());
    println!(
        "  mean quality      {:>8.2}  (0=Low .. 2=High)",
        out.qoe.mean_quality_score()
    );
    println!("  fairness (FPS)    {:>8.3}", out.qoe.fps_fairness());
    println!(
        "  frame airtime     {:>8.2} ms",
        out.mean_frame_time_s * 1e3
    );
    println!(
        "  multicast bytes   {:>7.0}%",
        out.multicast_byte_fraction * 100.0
    );
    println!("  mean group size   {:>8.2}", out.mean_group_size);
    println!("  blocked frames    {:>8}", out.blocked_user_frames);
    println!("  pred. error       {:>8.3} m", out.mean_prediction_error_m);
    if out.fault_user_frames > 0 {
        println!(
            "  faults absorbed   {:>5}/{:<5} (recovered/injected user-frames)",
            out.recovered_user_frames, out.fault_user_frames
        );
    }
    Ok(())
}

fn cmd_study(flags: HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get_parse(&flags, "seed", 42)?;
    let frames: usize = get_parse(&flags, "frames", 300)?;
    let phones: usize = get_parse(&flags, "phones", 16)?;
    let headsets: usize = get_parse(&flags, "headsets", 16)?;
    let out = flags
        .get("out")
        .ok_or_else(|| "--out FILE.json is required".to_string())?;
    let study = UserStudy::generate_with(seed, frames, phones, headsets);
    save_study(&study, out).map_err(|e| e.to_string())?;
    println!("wrote {} users x {} frames to {}", study.len(), frames, out);
    Ok(())
}

fn cmd_info() {
    println!("volcast {}", env!("CARGO_PKG_VERSION"));
    println!("{}", env!("CARGO_PKG_DESCRIPTION"));
    println!();
    println!("calibration anchors:");
    println!("  802.11ac 1-user rate   374 Mbps   (paper Table 1)");
    println!("  802.11ad 1-user rate   1270 Mbps  (paper Table 1)");
    println!("  -68 dBm               385 Mbps   (DMG MCS1; paper §4.2)");
    println!("  beam re-search         5-20 ms    (paper §4.1)");
    println!("  quality ladder         330K/430K/550K pts, 235-364 Mbps");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("session") => parse_flags(&args[1..]).and_then(cmd_session),
        Some("study") => parse_flags(&args[1..]).and_then(cmd_study),
        Some("info") => {
            cmd_info();
            Ok(())
        }
        Some("--help") | Some("-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

//! # volcast
//!
//! A from-scratch Rust reproduction of *"Innovating Multi-user Volumetric
//! Video Streaming through Cross-layer Design"* (HotNets 2021): a
//! multi-user volumetric video streaming system over simulated 802.11ad
//! mmWave WLANs, with
//!
//! - viewport-similarity multicast grouping (the `T_m(k)` model),
//! - customized multi-lobe beam design for mmWave multicast,
//! - joint multi-user viewport prediction with proactive blockage
//!   mitigation,
//! - cross-layer (PHY + application) bandwidth prediction and video rate
//!   adaptation,
//! - vanilla and multi-user-ViVo baseline players,
//! - and every substrate built from scratch: point-cloud codec, synthetic
//!   volumetric video, 6DoF trace generation, visibility culling, phased
//!   arrays, a 60 GHz geometric channel, and MAC airtime models.
//!
//! ## Quickstart
//!
//! ```
//! use volcast::core::{quick_session, PlayerKind};
//!
//! // Three headset users streaming 30 frames of volumetric video.
//! let mut session = quick_session(PlayerKind::Volcast, 3, 30, 42);
//! session.params.analysis_points = 4_000; // doc-test speed
//! let outcome = session.run().unwrap();
//! assert_eq!(outcome.qoe.users.len(), 3);
//! assert!(outcome.qoe.mean_fps() > 0.0);
//! ```
//!
//! The crates re-exported below can each be used standalone; see
//! `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-reproduction results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// 3D math: vectors, quaternions, poses, frusta, complex numbers.
pub use volcast_geom as geom;

/// Point clouds: synthetic volumetric video, cells, octree codec.
pub use volcast_pointcloud as pointcloud;

/// Viewports: traces, visibility, similarity, prediction.
pub use volcast_viewport as viewport;

/// mmWave: arrays, codebooks, channel, MCS, multi-lobe beams.
pub use volcast_mmwave as mmwave;

/// Network simulation: event queue, MAC models, transmission plans.
pub use volcast_net as net;

/// The streaming system: grouping, adaptation, sessions, QoE.
pub mod core {
    pub use volcast_core::session::{quick_session, quick_session_with_device};
    pub use volcast_core::*;
}

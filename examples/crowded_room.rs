//! Crowded room: blockage forecasting and proactive mitigation in action.
//!
//! Three phone viewers watch the subject while another person paces across
//! the room. The example prints which links the forecaster predicts will be
//! blocked (and when), then compares end-to-end session QoE under reactive
//! vs proactive mitigation.
//!
//! Run: `cargo run --release --example crowded_room`

use volcast::core::{quick_session_with_device, BlockageMitigator, MitigationMode, PlayerKind};
use volcast::geom::{Pose, Vec3};
use volcast::pointcloud::QualityLevel;
use volcast::viewport::{BlockageForecaster, DeviceClass, JointPredictor, Trace};

fn walker(frames: usize) -> Trace {
    let poses = (0..frames)
        .map(|f| {
            let t = f as f64 / 30.0;
            let phase = (t * 1.2 / 12.0).fract();
            let x = if phase < 0.5 {
                -3.0 + 12.0 * phase
            } else {
                9.0 - 12.0 * phase
            };
            Pose::new(Vec3::new(x, 1.7, 2.0), Default::default())
        })
        .collect();
    Trace {
        user_id: usize::MAX,
        device: DeviceClass::Headset,
        rate_hz: 30.0,
        poses,
    }
}

fn main() {
    let frames = 240usize;
    let users = 3usize;

    // --- 1. forecast demo: who gets blocked, and when ------------------
    let session =
        quick_session_with_device(PlayerKind::Volcast, users, frames, 42, DeviceClass::Phone);
    let forecaster = BlockageForecaster::new(session.channel.array.position);
    let mitigator = BlockageMitigator::new(MitigationMode::Proactive);
    let w = walker(frames);
    let mut joint = JointPredictor::new(users, 15, Default::default());

    println!("Blockage forecast timeline (proactive horizon = 10 frames):");
    // One report per victim per crossing (15-frame cooldown).
    let mut last_report = vec![-100i64; users];
    for f in 0..frames {
        let poses: Vec<Pose> = (0..users).map(|u| session.traces[u].pose(f)).collect();
        joint.observe_frame(&poses);
        // Forecast over the next 10 frames; the walker is extrapolated
        // from its trace (its motion is linear).
        let series: Vec<Vec<Pose>> = (0..=10)
            .map(|h| {
                let mut frame_poses = match joint.predict_frame(h) {
                    Some(p) if h > 0 => p,
                    _ => poses.clone(),
                };
                frame_poses.push(w.pose((f + h).min(frames - 1)));
                frame_poses
            })
            .collect();
        let events: Vec<_> = forecaster
            .forecast(&series)
            .into_iter()
            .filter(|e| e.blocker == users) // walker-caused only
            .collect();
        for e in &events {
            if e.onset_frames > 0 && f as i64 - last_report[e.victim] > 15 {
                let actions = mitigator.plan(&[*e]);
                println!(
                    "  frame {f:>3}: user {} will be blocked in {} frames -> prefetch {} frames, pre-steer beam ({:.1} ms switch)",
                    e.victim,
                    e.onset_frames,
                    actions[0].prefetch_frames,
                    actions[0].beam_outage_s * 1e3
                );
                last_report[e.victim] = f as i64;
            }
        }
    }

    // --- 2. end-to-end comparison ---------------------------------------
    println!("\nEnd-to-end effect (3 viewers + walker, Medium quality):");
    println!(
        "{:<26} {:>9} {:>12} {:>12}",
        "mitigation", "mean FPS", "stall ratio", "blk-frames"
    );
    for (label, mode) in [
        ("reactive re-search", MitigationMode::Reactive),
        ("proactive (prediction)", MitigationMode::Proactive),
    ] {
        let mut s =
            quick_session_with_device(PlayerKind::Volcast, users, frames, 42, DeviceClass::Phone);
        s.params.mitigation = mode;
        s.params.fixed_quality = Some(QualityLevel::Medium);
        s.params.analysis_points = 10_000;
        s.walkers.push(walker(frames));
        let out = s.run().unwrap();
        println!(
            "{:<26} {:>9.1} {:>12.3} {:>12}",
            label,
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio(),
            out.blocked_user_frames
        );
    }
}

//! Beam designer: inspect the customized multi-lobe beams directly.
//!
//! Places two users in the default room, prints the RSS each would get
//! from (a) their own dedicated beams, (b) the best common default sector
//! and (c) the paper's combined multi-lobe beam, then sweeps user 2 across
//! the room to show where the custom beam pays off.
//!
//! Run: `cargo run --release --example beam_designer`

use volcast::geom::Vec3;
use volcast::mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};

fn main() {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let mcs = McsTable::dmg();

    let u1 = Vec3::new(-2.0, 1.5, 0.5);
    let u2 = Vec3::new(2.0, 1.5, -0.5);
    println!("AP at {}, users at {u1} and {u2}\n", channel.array.position);

    // Dedicated beams (what each user gets alone).
    for (i, &u) in [u1, u2].iter().enumerate() {
        let rss = channel.rss_dedicated_beam(u, &[]);
        println!(
            "user {} dedicated beam: {:>6.1} dBm -> {:>6.0} Mbps",
            i + 1,
            rss,
            mcs.phy_rate_mbps(rss)
        );
    }

    // Best common default sector.
    let (sector, rss) = designer.best_common_sector(&[u1, u2], &[]);
    let common_default = rss.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nbest common default sector #{sector}: per-user RSS {:.1} / {:.1} dBm",
        rss[0], rss[1]
    );
    println!(
        "  -> common (min) RSS {:>6.1} dBm -> multicast {:>6.0} Mbps",
        common_default,
        mcs.phy_rate_mbps(common_default)
    );

    // Customized multi-lobe beam.
    let beam = designer.design(&[u1, u2], &[]);
    println!(
        "\ncustomized beam ({}): per-user RSS {:.1} / {:.1} dBm",
        if beam.customized {
            "multi-lobe"
        } else {
            "default kept"
        },
        beam.member_rss_dbm[0],
        beam.member_rss_dbm[1]
    );
    println!(
        "  -> common RSS {:>6.1} dBm -> multicast {:>6.0} Mbps",
        beam.common_rss_dbm(),
        mcs.phy_rate_mbps(beam.common_rss_dbm())
    );

    // Sweep user 2 across the room.
    println!("\nsweep: user 2 moves along x (z=-0.5); multicast rate (Mbps):");
    println!(
        "{:>6} {:>16} {:>16} {:>12}",
        "x", "default sector", "custom beam", "customized?"
    );
    let mut x = -3.0;
    while x <= 3.01 {
        let v2 = Vec3::new(x, 1.5, -0.5);
        let (_, d) = designer.best_common_sector(&[u1, v2], &[]);
        let d_min = d.into_iter().fold(f64::INFINITY, f64::min);
        let b = designer.design(&[u1, v2], &[]);
        println!(
            "{:>6.1} {:>16.0} {:>16.0} {:>12}",
            x,
            mcs.phy_rate_mbps(d_min),
            mcs.phy_rate_mbps(b.common_rss_dbm()),
            if b.customized { "yes" } else { "no" }
        );
        x += 0.5;
    }
    println!("\nShape: near user 1 the default sector suffices; as the users");
    println!("spread, the default's common MCS collapses while the two-lobe");
    println!("beam holds a usable rate.");
}

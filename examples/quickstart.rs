//! Quickstart: stream volumetric video to three co-located users.
//!
//! Builds a default end-to-end session — synthetic soldier video, three
//! headset users orbiting it, the simulated 802.11ad room — runs it with
//! the full volcast pipeline, and prints the QoE report next to the two
//! baselines.
//!
//! Run: `cargo run --release --example quickstart`

use volcast::core::{quick_session, PlayerKind};

fn main() {
    let users = 3;
    let frames = 90; // 3 seconds at 30 FPS

    println!("volcast quickstart: {users} users, {frames} frames\n");
    println!(
        "{:<18} {:>9} {:>12} {:>9} {:>12} {:>11}",
        "player", "mean FPS", "stall ratio", "quality", "mcast bytes", "group size"
    );
    println!("{}", "-".repeat(76));

    for player in [PlayerKind::Vanilla, PlayerKind::Vivo, PlayerKind::Volcast] {
        let mut session = quick_session(player, users, frames, 42);
        let outcome = session.run().unwrap();
        println!(
            "{:<18} {:>9.1} {:>12.3} {:>9.2} {:>11.0}% {:>11.2}",
            player.label(),
            outcome.qoe.mean_fps(),
            outcome.qoe.mean_stall_ratio(),
            outcome.qoe.mean_quality_score(),
            outcome.multicast_byte_fraction * 100.0,
            outcome.mean_group_size,
        );
    }

    println!("\nWhat just happened, per frame:");
    println!(" 1. each user's 6DoF pose was observed and predicted 10 frames ahead,");
    println!(" 2. the point-cloud frame was partitioned into 50 cm cells and each");
    println!("    user's visible cells were computed (frustum+distance+occlusion),");
    println!(" 3. users with overlapping viewports were grouped (T_m(k) model) and");
    println!("    a multicast beam was designed for each group,");
    println!(" 4. the schedule ran on a calibrated 802.11ad MAC model, and client");
    println!("    buffers/decoders determined stalls and QoE.");
}

//! Codec tour: encode/decode synthetic volumetric frames at the paper's
//! three quality versions and report rate statistics.
//!
//! Shows the octree codec (the Draco substitute) working on real geometry:
//! compression ratio by quantization depth, the bitrates of the quality
//! ladder, and the decode-model FPS ceilings that cap Table 1.
//!
//! Run: `cargo run --release --example codec_tour`

use volcast::pointcloud::codec::{decode, encode, CodecConfig};
use volcast::pointcloud::{DecodeModel, Ladder, QualityLevel, SyntheticBody};

fn main() {
    let body = SyntheticBody::default();

    println!("Octree codec on a 100K-point synthetic-body frame:\n");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "depth", "voxels", "bytes", "bits/point", "max err (mm)"
    );
    let cloud = body.frame(0, 100_000);
    let extent = cloud.bounds().extent().max_component();
    for depth in [7u32, 8, 9, 10, 11] {
        let cfg = CodecConfig {
            depth,
            color_bits: 6,
        };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).expect("round trip");
        assert_eq!(dec.len(), stats.voxels);
        let voxel_mm = extent / (1u64 << depth) as f64 * 1e3;
        println!(
            "{:>6} {:>12} {:>12} {:>14.2} {:>12.2}",
            depth,
            stats.voxels,
            stats.bytes,
            stats.bits_per_point,
            voxel_mm * 3f64.sqrt() / 2.0,
        );
    }

    println!("\nThe paper's quality ladder (calibrated to its 235-364 Mbps range):\n");
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12}",
        "level", "points/frame", "Mbps@30", "MB/frame", "decode FPS"
    );
    let decode_model = DecodeModel::default();
    for level in QualityLevel::ALL {
        let q = Ladder::paper().quality(level);
        println!(
            "{:>8} {:>14} {:>12.0} {:>14.2} {:>12.1}",
            format!("{level:?}"),
            q.points_per_frame,
            q.full_frame_mbps,
            q.full_frame_bytes() / 1e6,
            decode_model.max_fps(q.points_per_frame),
        );
    }
    println!("\n550K points decodes at just over 30 FPS — the ladder's top level is");
    println!("pinned to the client decoder exactly as in the paper's setup.");
}

//! Classroom scenario: many phone viewers watching one volumetric lecture.
//!
//! The paper's motivating use case ("AR-enhanced classroom teaching"):
//! phone users cluster in a frontal arc and share most of their viewport,
//! which is exactly where similarity multicast shines. This example sweeps
//! the class size and shows where each player stops sustaining 30 FPS.
//!
//! Run: `cargo run --release --example classroom`

use volcast::core::{quick_session_with_device, PlayerKind};
use volcast::pointcloud::QualityLevel;
use volcast::viewport::DeviceClass;

fn main() {
    println!("Classroom: phone viewers in a frontal arc, High quality (550K pts)\n");
    println!(
        "{:<6} {:>16} {:>16} {:>16}",
        "class", "Vanilla FPS", "ViVo FPS", "volcast FPS"
    );
    println!("{}", "-".repeat(58));

    for n in [2usize, 3, 4, 5, 6] {
        let fps: Vec<f64> = [PlayerKind::Vanilla, PlayerKind::Vivo, PlayerKind::Volcast]
            .into_iter()
            .map(|player| {
                let mut s = quick_session_with_device(player, n, 90, 42, DeviceClass::Phone);
                s.params.fixed_quality = Some(QualityLevel::High);
                s.params.analysis_points = 10_000;
                s.run().unwrap().qoe.mean_fps()
            })
            .collect();
        println!(
            "{:<6} {:>16.1} {:>16.1} {:>16.1}",
            n, fps[0], fps[1], fps[2]
        );
    }

    println!("\nPhone viewports overlap heavily (IoU ~0.95+), so most bytes ride a");
    println!("single multicast burst: the class outgrows vanilla and ViVo first.");
}

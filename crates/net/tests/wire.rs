//! Wire-format robustness suite: round-trip properties, a truncation
//! sweep cutting the stream at every chunk boundary, and a seeded fuzz
//! smoke (N = 1000 random mutations). The contract under test is the
//! server's: malformed input may be rejected, never panicked on, and
//! corrupt payloads must not be served as valid.

use volcast_net::wire::{CHUNK_HEADER_LEN, STREAM_HEADER_LEN};
use volcast_net::{StreamReader, StreamWriter, WireCursor, WireError, WireEvent};
use volcast_util::prop::prelude::*;
use volcast_util::rng::Rng;

/// Builds a stream with `n` frames of seeded pseudo-random payloads
/// (sizes vary per frame, including empty ones).
fn build_stream(seed: u64, n: usize, max_payload: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut w = StreamWriter::new(10, 6, 30);
    let mut payloads = Vec::with_capacity(n);
    for _ in 0..n {
        let len = rng.gen_range(0..(max_payload as u64 + 1)) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        w.push_frame(&payload);
        payloads.push(payload);
    }
    (w.finish(), payloads)
}

proptest! {
    #[test]
    fn round_trips_byte_identical(seed in 0u64..10_000, n in 0usize..40) {
        let (bytes, payloads) = build_stream(seed, n, 600);
        let reader = StreamReader::parse(&bytes).unwrap();
        prop_assert_eq!(reader.manifest().frame_count as usize, n);
        reader.validate_all().unwrap();
        for (f, expect) in payloads.iter().enumerate() {
            prop_assert_eq!(reader.chunk_payload(f as u32).unwrap(), &expect[..]);
        }
        // Re-encoding the same payloads is byte-identical: the writer is
        // a pure function of (params, payloads).
        let mut again = StreamWriter::new(10, 6, 30);
        for p in &payloads {
            again.push_frame(p);
        }
        prop_assert_eq!(again.finish(), bytes);
    }

    #[test]
    fn cursor_yields_same_events_under_any_chunking(seed in 0u64..5_000, n in 1usize..16) {
        // Stream the bytes through a WireCursor in random-sized pieces;
        // the event sequence must match the random-access reader exactly.
        let (bytes, payloads) = build_stream(seed, n, 300);
        let mut rng = Rng::seed_from_u64(seed ^ 0xfeed);
        let mut cursor = WireCursor::new();
        let mut fed = 0usize;
        let mut events = Vec::new();
        loop {
            match cursor.poll() {
                Ok(Some(ev)) => events.push(ev),
                Ok(None) => {
                    if fed == bytes.len() {
                        break;
                    }
                    let piece = rng.gen_range(1..64u64) as usize;
                    let end = (fed + piece).min(bytes.len());
                    cursor.feed(&bytes[fed..end]);
                    fed = end;
                }
                Err(e) => prop_assert!(false, "cursor failed on valid stream: {e}"),
            }
        }
        prop_assert!(cursor.is_complete());
        prop_assert_eq!(events.len(), n + 1, "manifest + one event per frame");
        match &events[0] {
            WireEvent::Manifest(m) => prop_assert_eq!(m.frame_count as usize, n),
            other => prop_assert!(false, "first event was {other:?}"),
        }
        for (i, ev) in events[1..].iter().enumerate() {
            match ev {
                WireEvent::Chunk { frame, payload } => {
                    prop_assert_eq!(*frame as usize, i);
                    prop_assert_eq!(payload, &payloads[i]);
                }
                other => prop_assert!(false, "event {i} was {other:?}"),
            }
        }
    }
}

#[test]
fn truncation_sweep_cuts_every_boundary() {
    let (bytes, payloads) = build_stream(99, 12, 200);

    // Every chunk boundary, chunk-header boundary, and mid-payload cut.
    let mut cuts = vec![
        0,
        1,
        STREAM_HEADER_LEN - 1,
        STREAM_HEADER_LEN,
        STREAM_HEADER_LEN + 1,
        bytes.len() - 1,
    ];
    let reader = StreamReader::parse(&bytes).unwrap();
    let manifest_end = bytes.len() - reader.manifest().chunk_area_len() as usize;
    cuts.push(manifest_end - 1);
    cuts.push(manifest_end);
    let mut offset = manifest_end;
    for p in &payloads {
        cuts.push(offset); // chunk start
        cuts.push(offset + CHUNK_HEADER_LEN); // header/payload boundary
        cuts.push(offset + CHUNK_HEADER_LEN + p.len() / 2); // mid payload
        offset += CHUNK_HEADER_LEN + p.len();
        cuts.push(offset - 1); // one byte short of the boundary
    }

    for cut in cuts {
        let cut = cut.min(bytes.len() - 1);
        let err = StreamReader::parse(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("cut at {cut}/{} parsed", bytes.len()));
        // Every cut is a graceful structural error, not a payload error:
        // the reader must know the stream is short before serving chunks.
        assert!(
            matches!(
                err,
                WireError::Truncated { .. } | WireError::Inconsistent(_)
            ),
            "cut at {cut}: unexpected error {err:?}"
        );

        // The incremental cursor treats the same prefix as incomplete
        // (more bytes may arrive), never as a crash.
        let mut cursor = WireCursor::new();
        cursor.feed(&bytes[..cut]);
        loop {
            match cursor.poll() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => panic!("cursor errored on truncated prefix at {cut}: {e}"),
            }
        }
        assert!(!cursor.is_complete(), "cut at {cut} reported complete");
    }
}

#[test]
fn fuzz_smoke_random_mutations_never_panic() {
    // N = 1000 seeded random mutations over a valid stream: bit flips,
    // byte splats, truncations, duplications, and length perturbations.
    // The parser may accept or reject, but it must never panic, and a
    // chunk payload it *does* serve must hash to its declared checksum
    // (i.e. mutated payload bytes are never served as valid).
    let (bytes, _) = build_stream(4242, 10, 400);
    let mut rng = Rng::seed_from_u64(0x57EA_17F0);
    let mut accepted = 0u32;
    for case in 0..1_000 {
        let mut data = bytes.clone();
        match rng.gen_range(0..5u32) {
            0 => {
                // Single bit flip.
                let i = rng.gen_range(0..data.len() as u64) as usize;
                data[i] ^= 1 << rng.gen_range(0..8u32);
            }
            1 => {
                // Byte splat.
                let i = rng.gen_range(0..data.len() as u64) as usize;
                data[i] = rng.gen_range(0..256u32) as u8;
            }
            2 => {
                // Truncate to a random prefix.
                let keep = rng.gen_range(0..data.len() as u64) as usize;
                data.truncate(keep);
            }
            3 => {
                // Append random trailing garbage.
                let extra = rng.gen_range(1..64u64) as usize;
                for _ in 0..extra {
                    data.push(rng.gen_range(0..256u32) as u8);
                }
            }
            _ => {
                // Duplicate a random slice over another position.
                let a = rng.gen_range(0..data.len() as u64) as usize;
                let b = rng.gen_range(0..data.len() as u64) as usize;
                let len = rng.gen_range(1..32u64) as usize;
                let len = len.min(data.len() - a).min(data.len() - b);
                let slice = data[a..a + len].to_vec();
                data[b..b + len].copy_from_slice(&slice);
            }
        }

        // Random-access parse path.
        if let Ok(reader) = StreamReader::parse(&data) {
            let frames = reader.manifest().frame_count;
            let _ = reader.validate_all();
            for f in 0..frames {
                if let Ok(payload) = reader.chunk_payload(f) {
                    let declared = reader.manifest().entries[f as usize].checksum;
                    assert_eq!(
                        volcast_util::hash::fnv1a(payload),
                        declared,
                        "case {case}: served a payload that fails its checksum"
                    );
                }
            }
            accepted += 1;
        }

        // Incremental cursor path, fed in pieces.
        let mut cursor = WireCursor::new();
        let mut fed = 0usize;
        loop {
            match cursor.poll() {
                Ok(Some(_)) => continue,
                Ok(None) => {
                    if fed == data.len() {
                        break;
                    }
                    let piece = rng.gen_range(1..128u64) as usize;
                    let end = (fed + piece).min(data.len());
                    cursor.feed(&data[fed..end]);
                    fed = end;
                }
                Err(_) => break, // graceful rejection
            }
        }
    }
    // Sanity: the suite actually exercised the accept path too (payload
    // bit flips parse structurally and fail only chunk validation).
    assert!(accepted > 0, "no mutation survived structural parsing");
}

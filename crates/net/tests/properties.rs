//! Property tests for the network substrate.

use volcast_net::{
    AdMac, BacklogPolicy, EventQueue, MacModel, SimTime, Simulator, TransmissionPlan, TxItem,
};
use volcast_util::prop::prelude::*;

fn arb_plan(max_items: usize) -> impl Strategy<Value = TransmissionPlan> {
    prop::collection::vec(
        (0usize..4, 1.0f64..2e6, 100.0f64..4000.0, 0.0f64..0.01),
        0..max_items,
    )
    .prop_map(|items| {
        let mut p = TransmissionPlan::new();
        for (user, bytes, phy, switch) in items {
            let mut item = TxItem::unicast(user, bytes, phy);
            item.beam_switch_s = switch;
            p.items.push(item);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn plan_completions_are_monotone(plan in arb_plan(20)) {
        let mac = AdMac::default();
        let timing = plan.execute(&mac, 4, 4);
        let mut prev = 0.0;
        for &t in &timing.item_completion_s {
            prop_assert!(t >= prev);
            prev = t;
        }
        prop_assert!((timing.total_s - prev).abs() < 1e-9 || plan.items.is_empty());
    }

    #[test]
    fn plan_total_equals_sum_of_parts(plan in arb_plan(20)) {
        let mac = AdMac::default();
        let timing = plan.execute(&mac, 4, 4);
        let sum: f64 = plan
            .items
            .iter()
            .map(|i| i.beam_switch_s + mac.airtime_s(i.bytes, i.phy_mbps, 4))
            .sum();
        prop_assert!((timing.total_s - sum).abs() < 1e-9 * (1.0 + sum));
    }

    #[test]
    fn goodput_monotone_in_phy(phy_a in 10.0f64..5000.0, phy_b in 10.0f64..5000.0,
                               n in 1usize..10) {
        let mac = AdMac::default();
        let (lo, hi) = if phy_a < phy_b { (phy_a, phy_b) } else { (phy_b, phy_a) };
        prop_assert!(mac.goodput_mbps(lo, n) <= mac.goodput_mbps(hi, n) + 1e-9);
    }

    #[test]
    fn simulator_queue_completions_never_before_per_slot(plans in prop::collection::vec(arb_plan(6), 1..8)) {
        // Pipelined (queued) completion of frame f can never be EARLIER
        // than executing f's plan alone starting at its release time.
        let mac = AdMac::default();
        let interval = SimTime::from_millis(33.333);
        let sim = Simulator::new(&mac, 4, 4, interval, BacklogPolicy::Queue).unwrap();
        let outcomes = sim.run(&plans);
        for (f, o) in outcomes.iter().enumerate() {
            let iso = plans[f].execute(&mac, 4, 4);
            for u in 0..4 {
                if let (Some(abs), Some(rel)) = (o.user_completion[u], iso.user_completion_s[u]) {
                    if rel.is_finite() {
                        let earliest = o.start + SimTime::from_secs(rel);
                        prop_assert!(
                            abs + SimTime(1_000) >= earliest,
                            "frame {} user {} finished before physically possible", f, u
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simulator_is_deterministic(plans in prop::collection::vec(arb_plan(5), 1..6)) {
        let mac = AdMac::default();
        let interval = SimTime::from_millis(33.333);
        let sim = Simulator::new(&mac, 4, 4, interval, BacklogPolicy::Drop).unwrap();
        let a = sim.run(&plans);
        let b = sim.run(&plans);
        prop_assert_eq!(a, b);
    }
}

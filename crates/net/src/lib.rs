//! Deterministic discrete-event WLAN simulator for volcast.
//!
//! Event-driven in the smoltcp tradition: explicit integer-nanosecond time,
//! a deterministic event queue, and poll-style state machines — no async
//! runtime, no wall-clock dependence, bit-identical runs for a fixed seed.
//!
//! - [`SimTime`] / [`EventQueue`]: the simulation clock and ordered event
//!   dispatch,
//! - [`AdMac`] / [`AcMac`]: calibrated airtime models for 802.11ad
//!   service-period scheduling and 802.11ac contention (Table 1's two
//!   networks),
//! - [`TransmissionPlan`]: per-video-frame schedules mixing multicast and
//!   unicast items, executed on the MAC models,
//! - [`LinkState`]: per-user link tracker (RSS/MCS EWMA, outage detection)
//!   feeding the cross-layer rate adaptation,
//! - [`FaultPlan`]: seeded, deterministic fault schedules (link-outage
//!   bursts, blockage episodes, AP stalls, transmission-item loss,
//!   decode-deadline overruns) injected into the simulator and the
//!   session layer, with invalid inputs surfaced as [`NetError`],
//! - [`fec`]: proactive XOR-parity chunks over payload chunk groups — the
//!   degradation ladder's forward-protection rung; any single erasure in
//!   a group is rebuilt from the survivors without retransmit airtime,
//! - [`wire`]: the versioned, length-prefixed stream container (a
//!   manifest plus per-frame payload chunks) the session server speaks;
//!   every read path is bounds-checked and returns [`wire::WireError`]
//!   instead of panicking on malformed or hostile input.
//!
//! ```
//! use volcast_net::{EventQueue, SimTime};
//!
//! // Events pop in time order regardless of insertion order.
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(2.0), "later");
//! q.schedule(SimTime::from_millis(1.0), "sooner");
//! assert_eq!(q.pop(), Some((SimTime::from_millis(1.0), "sooner")));
//! assert_eq!(q.pop(), Some((SimTime::from_millis(2.0), "later")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod fec;
pub mod link;
pub mod mac;
pub mod plan;
pub mod queue;
pub mod sim;
pub mod time;
pub mod wifi5;
pub mod wire;

pub use error::NetError;
pub use faults::{FaultConfig, FaultPlan, FrameFaults};
pub use link::LinkState;
pub use mac::{AcMac, AdMac, MacModel};
pub use plan::{PlanTiming, TransmissionPlan, TxItem, TxKind};
pub use queue::EventQueue;
pub use sim::{BacklogPolicy, FrameOutcome, SimScratch, Simulator};
pub use time::SimTime;
pub use wifi5::Wifi5Channel;
pub use wire::{StreamManifest, StreamReader, StreamWriter, WireCursor, WireError, WireEvent};

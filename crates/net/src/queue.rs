//! Deterministic event queue.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking:
/// events scheduled for the same instant pop in insertion order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — the simulation must never rewind.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), 1);
        q.pop();
        q.schedule_in(SimTime::from_secs(1.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}

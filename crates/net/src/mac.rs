//! Calibrated MAC airtime models for the two networks of Table 1.
//!
//! Both models turn PHY rates into goodput and airtime. Their constants are
//! fitted to the paper's measured per-user data-rate column (Table 1):
//!
//! - **802.11ad** (`AdMac`): service-period TDMA under a beacon interval.
//!   Anchors: 1 user ≈ 1270 Mbps TCP; 7 users ≈ 144 Mbps/user (aggregate
//!   ≈ 1008 Mbps). Efficiency loss per extra user models SP guard times,
//!   beam-tracking BRP frames, and per-STA scheduling overhead.
//! - **802.11ac** (`AcMac`): EDCA contention. Anchors: 1 user ≈ 374 Mbps;
//!   3 users ≈ 112 Mbps/user (aggregate ≈ 336 Mbps), the gentle aggregate
//!   decline coming from contention collisions.

/// Common MAC-model interface used by the streaming scheduler.
pub trait MacModel {
    /// Goodput (application-layer Mbps) of a single transmission running at
    /// `phy_mbps`, when `n_active` stations share the medium.
    fn goodput_mbps(&self, phy_mbps: f64, n_active: usize) -> f64;

    /// Airtime (seconds) to deliver `bytes` at `phy_mbps` with `n_active`
    /// stations sharing the medium.
    fn airtime_s(&self, bytes: f64, phy_mbps: f64, n_active: usize) -> f64 {
        self.airtime_from_goodput_s(bytes, self.goodput_mbps(phy_mbps, n_active))
    }

    /// The [`MacModel::airtime_s`] tail over an already-computed goodput,
    /// for callers that hoist `goodput_mbps` out of per-item loops —
    /// goodput depends only on `(phy_mbps, n_active)`, both invariant
    /// across a scheduling epoch. Bit-identical to `airtime_s` when fed
    /// `goodput_mbps(phy_mbps, n_active)`.
    fn airtime_from_goodput_s(&self, bytes: f64, goodput_mbps: f64) -> f64 {
        if goodput_mbps <= 0.0 {
            f64::INFINITY
        } else {
            bytes * 8.0 / (goodput_mbps * 1e6)
        }
    }

    /// Aggregate network capacity when `n` stations run at `phy_mbps` each
    /// with fair time sharing.
    fn aggregate_capacity_mbps(&self, phy_mbps: f64, n: usize) -> f64 {
        self.goodput_mbps(phy_mbps, n)
    }

    /// Fair-share per-user rate.
    fn per_user_rate_mbps(&self, phy_mbps: f64, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.aggregate_capacity_mbps(phy_mbps, n) / n as f64
        }
    }
}

/// 802.11ad DMG service-period MAC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdMac {
    /// PHY-to-MAC efficiency for a single flow (aggregation, ACKs, TCP).
    pub base_efficiency: f64,
    /// Fraction of the beacon interval consumed by the beacon header
    /// interval (BTI/A-BFT/ATI).
    pub bhi_fraction: f64,
    /// Extra overhead fraction per additional station (SP guards, beam
    /// tracking/BRP, scheduling).
    pub per_sta_overhead: f64,
}

impl Default for AdMac {
    fn default() -> Self {
        AdMac {
            base_efficiency: 0.55,
            bhi_fraction: 0.08,
            per_sta_overhead: 0.035,
        }
    }
}

impl MacModel for AdMac {
    fn goodput_mbps(&self, phy_mbps: f64, n_active: usize) -> f64 {
        if n_active == 0 {
            return 0.0;
        }
        let airtime_share =
            (1.0 - self.bhi_fraction - self.per_sta_overhead * (n_active as f64 - 1.0)).max(0.05);
        phy_mbps * self.base_efficiency * airtime_share
    }
}

/// 802.11ac EDCA contention MAC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcMac {
    /// PHY-to-MAC efficiency for a single flow.
    pub base_efficiency: f64,
    /// Aggregate-efficiency loss per additional contender (collisions,
    /// backoff).
    pub contention_overhead: f64,
}

impl Default for AcMac {
    fn default() -> Self {
        AcMac {
            base_efficiency: 0.431,
            contention_overhead: 0.05,
        }
    }
}

impl MacModel for AcMac {
    fn goodput_mbps(&self, phy_mbps: f64, n_active: usize) -> f64 {
        if n_active == 0 {
            return 0.0;
        }
        let share = (1.0 - self.contention_overhead * (n_active as f64 - 1.0)).max(0.05);
        phy_mbps * self.base_efficiency * share
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(AdMac {
    base_efficiency,
    bhi_fraction,
    per_sta_overhead
});
volcast_util::impl_json_struct!(AcMac {
    base_efficiency,
    contention_overhead
});

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured per-user rates (Table 1, "Per user data rate").
    const PAPER_AD: [(usize, f64); 7] = [
        (1, 1270.0),
        (2, 575.0),
        (3, 382.0),
        (4, 298.0),
        (5, 231.0),
        (6, 175.0),
        (7, 144.0),
    ];
    const PAPER_AC: [(usize, f64); 3] = [(1, 374.0), (2, 180.0), (3, 112.0)];

    #[test]
    fn ad_calibration_tracks_table1() {
        // All users near the room center run at DMG MCS 9 (2502.5 Mbps).
        let mac = AdMac::default();
        let phy = 2502.5;
        for (n, paper) in PAPER_AD {
            let ours = mac.per_user_rate_mbps(phy, n);
            let err = (ours - paper).abs() / paper;
            assert!(
                err < 0.12,
                "ad {n} users: model {ours:.0} vs paper {paper} ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn ac_calibration_tracks_table1() {
        // VHT80 2SS MCS9 = 866.7 Mbps PHY.
        let mac = AcMac::default();
        let phy = 866.7;
        for (n, paper) in PAPER_AC {
            let ours = mac.per_user_rate_mbps(phy, n);
            let err = (ours - paper).abs() / paper;
            assert!(
                err < 0.12,
                "ac {n} users: model {ours:.0} vs paper {paper} ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn goodput_monotone_in_phy_rate() {
        let mac = AdMac::default();
        assert!(mac.goodput_mbps(4620.0, 3) > mac.goodput_mbps(2502.5, 3));
        let ac = AcMac::default();
        assert!(ac.goodput_mbps(866.7, 2) > ac.goodput_mbps(433.3, 2));
    }

    #[test]
    fn aggregate_declines_with_users() {
        let mac = AdMac::default();
        let phy = 2502.5;
        let mut prev = f64::INFINITY;
        for n in 1..=8 {
            let agg = mac.aggregate_capacity_mbps(phy, n);
            assert!(agg < prev, "aggregate should decline at n={n}");
            prev = agg;
        }
    }

    #[test]
    fn airtime_matches_goodput() {
        let mac = AdMac::default();
        let bytes = 1_000_000.0; // 1 MB
        let t = mac.airtime_s(bytes, 2502.5, 1);
        let rate = mac.goodput_mbps(2502.5, 1);
        assert!((t - bytes * 8.0 / (rate * 1e6)).abs() < 1e-12);
        // Outage -> infinite airtime.
        assert!(mac.airtime_s(bytes, 0.0, 1).is_infinite());
    }

    #[test]
    fn zero_users_zero_goodput() {
        assert_eq!(AdMac::default().goodput_mbps(2502.5, 0), 0.0);
        assert_eq!(AcMac::default().goodput_mbps(866.7, 0), 0.0);
        assert_eq!(AdMac::default().per_user_rate_mbps(2502.5, 0), 0.0);
        assert_eq!(AcMac::default().per_user_rate_mbps(866.7, 0), 0.0);
    }

    #[test]
    fn overhead_floor_prevents_negative_capacity() {
        let mac = AdMac::default();
        // Absurd user count: capacity floors at 5% airtime, stays positive.
        assert!(mac.aggregate_capacity_mbps(2502.5, 100) > 0.0);
    }
}

//! Proactive XOR-parity forward error correction over payload chunks.
//!
//! The PR-5 degradation ladder reacts to loss with budgeted retransmits —
//! airtime spent *after* the erasure. This module adds the proactive rung:
//! the sender groups a frame's payload chunks into groups of `k` and
//! appends one parity chunk per group, the byte-wise XOR of the group's
//! (zero-padded) chunks. A receiver missing **any single chunk** of a
//! group rebuilds it from the parity plus the `k-1` survivors — no
//! retransmit round trip, at a fixed `1/k` airtime overhead chosen by the
//! scheduler's distress level.
//!
//! XOR parity is deliberately minimal (single-erasure, like RAID-4 /
//! WiFi's block-ack-era FEC hacks): volumetric frames ride many chunks,
//! per-chunk loss is roughly independent, and the ladder only engages FEC
//! at distress levels where one loss per group dominates. Double losses in
//! one group still fall through to the retransmit rung.

use volcast_util::obs;

/// Computes the parity chunk of `group` (byte-wise XOR, chunks
/// right-padded with zeros to the longest length) into `out`.
///
/// `out` is cleared first and sized to the longest chunk; an empty group
/// yields an empty parity chunk.
pub fn parity_into(group: &[impl AsRef<[u8]>], out: &mut Vec<u8>) {
    out.clear();
    let max_len = group.iter().map(|c| c.as_ref().len()).max().unwrap_or(0);
    out.resize(max_len, 0);
    for chunk in group {
        for (o, &b) in out.iter_mut().zip(chunk.as_ref()) {
            *o ^= b;
        }
    }
    if obs::enabled() {
        obs::inc("net.fec.parity_chunks_built");
        obs::add("net.fec.parity_bytes", max_len as u64);
    }
}

/// Recovers the single missing chunk of a group into `out`.
///
/// `survivors` holds the group's `k-1` received chunks (any order),
/// `parity` the group's parity chunk, and `lost_len` the original length
/// of the missing chunk (chunks are zero-padded to the parity length
/// before XOR, so the recovered prefix of `lost_len` bytes is exact).
///
/// Returns `false` (leaving `out` empty) when the inputs cannot be
/// consistent: a survivor longer than the parity, or `lost_len` longer
/// than the parity. This recovers **one** erasure; with two or more chunks
/// missing the caller must not call this (the XOR would silently blend
/// them — the scheduler falls back to the retransmit rung instead).
pub fn recover_into(
    survivors: &[impl AsRef<[u8]>],
    parity: &[u8],
    lost_len: usize,
    out: &mut Vec<u8>,
) -> bool {
    out.clear();
    if lost_len > parity.len() || survivors.iter().any(|s| s.as_ref().len() > parity.len()) {
        return false;
    }
    out.extend_from_slice(parity);
    for chunk in survivors {
        for (o, &b) in out.iter_mut().zip(chunk.as_ref()) {
            *o ^= b;
        }
    }
    out.truncate(lost_len);
    obs::inc("net.fec.chunks_recovered");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcast_util::rng::Rng;

    fn random_chunks(rng: &mut Rng, k: usize, max_len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|_| {
                let len = rng.gen_range(0..(max_len as u64 + 1)) as usize;
                (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect()
            })
            .collect()
    }

    /// Property: for random groups of random-length chunks, erasing any
    /// single chunk and recovering it from the survivors + parity returns
    /// the original bytes exactly.
    #[test]
    fn single_erasure_recovery_is_identity() {
        let mut rng = Rng::seed_from_u64(0x000F_EC1D);
        let mut parity = Vec::new();
        let mut recovered = Vec::new();
        for trial in 0..200 {
            let k = rng.gen_range(1..9u64) as usize;
            let chunks = random_chunks(&mut rng, k, 300);
            parity_into(&chunks, &mut parity);
            let lost = rng.gen_range(0..k as u64) as usize;
            let survivors: Vec<&[u8]> = chunks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, c)| c.as_slice())
                .collect();
            assert!(
                recover_into(&survivors, &parity, chunks[lost].len(), &mut recovered),
                "trial {trial}"
            );
            assert_eq!(recovered, chunks[lost], "trial {trial} k {k} lost {lost}");
        }
    }

    /// Parity of a group XORed with all its chunks is zero (the defining
    /// invariant), including ragged lengths.
    #[test]
    fn parity_xors_group_to_zero() {
        let mut rng = Rng::seed_from_u64(7);
        let mut parity = Vec::new();
        for _ in 0..50 {
            let chunks = random_chunks(&mut rng, 5, 64);
            parity_into(&chunks, &mut parity);
            for c in &chunks {
                for (o, &b) in parity.iter_mut().zip(c.iter()) {
                    *o ^= b;
                }
            }
            assert!(parity.iter().all(|&b| b == 0));
        }
    }

    /// Corrupted inputs (truncated parity, oversized survivors, bad
    /// lost_len, bit flips) never panic; recovery either fails cleanly or
    /// returns plausible bytes for the wire layer's checksums to reject.
    #[test]
    fn truncation_and_bit_flips_never_panic() {
        let mut rng = Rng::seed_from_u64(0xBAD);
        let mut parity = Vec::new();
        let mut out = Vec::new();
        let chunks = random_chunks(&mut rng, 4, 128);
        parity_into(&chunks, &mut parity);
        let survivors: Vec<&[u8]> = chunks[1..].iter().map(|c| c.as_slice()).collect();

        // Truncated parity: fails when inconsistent with survivor lengths.
        for cut in 0..parity.len() {
            let ok = recover_into(&survivors, &parity[..cut], chunks[0].len(), &mut out);
            if ok {
                assert!(out.len() == chunks[0].len());
            } else {
                assert!(out.is_empty());
            }
        }
        // lost_len beyond parity is refused.
        assert!(!recover_into(
            &survivors,
            &parity,
            parity.len() + 1,
            &mut out
        ));
        // Bit flips in parity or survivors: recovery "succeeds" with wrong
        // bytes (integrity is the wire checksum's job), but never panics.
        for _ in 0..100 {
            let mut p = parity.clone();
            if !p.is_empty() {
                let i = rng.gen_range(0..p.len() as u64) as usize;
                p[i] ^= 1 << rng.gen_range(0..8u32);
            }
            let _ = recover_into(&survivors, &p, chunks[0].len(), &mut out);
        }
    }

    #[test]
    fn empty_and_degenerate_groups() {
        let mut parity = Vec::new();
        let mut out = Vec::new();
        let empty: &[&[u8]] = &[];
        parity_into(empty, &mut parity);
        assert!(parity.is_empty());
        // k = 1: parity IS the chunk; recovery from zero survivors.
        let solo = [b"hello".as_slice()];
        parity_into(&solo, &mut parity);
        assert_eq!(parity, b"hello");
        assert!(recover_into(empty, &parity, 5, &mut out));
        assert_eq!(out, b"hello");
        // Zero-length lost chunk.
        assert!(recover_into(&solo, &parity, 0, &mut out));
        assert!(out.is_empty());
    }
}

//! Per-video-frame transmission plans.
//!
//! The multicast scheduler (volcast-core) emits, for each video frame, a
//! plan of items: multicast bursts carrying the overlapped cells of a group
//! and unicast bursts carrying each user's residual cells. The plan
//! executes sequentially on the medium (802.11ad service periods are TDMA),
//! realizing exactly the paper's frame-time model
//! `T_m(k) = S_m/r_m + Σ_i (S_i - S_m)/r_i`, plus optional per-item beam
//! switching overhead.

use crate::mac::MacModel;
use volcast_util::obs;

/// Who a transmission item is for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxKind {
    /// One receiver.
    Unicast {
        /// Receiving user id.
        user: usize,
    },
    /// A multicast group (the overlapped-cell payload).
    Multicast {
        /// Receiving user ids.
        members: Vec<usize>,
    },
}

/// One scheduled burst.
#[derive(Debug, Clone, PartialEq)]
pub struct TxItem {
    /// Receiver(s).
    pub kind: TxKind,
    /// Payload size in bytes.
    pub bytes: f64,
    /// XOR-parity bytes riding with the payload (see [`crate::fec`]): the
    /// proactive-FEC overhead the scheduler chose for this burst. Counted
    /// in airtime; a receiver losing one payload chunk of the burst still
    /// completes the frame from the parity.
    pub parity_bytes: f64,
    /// PHY rate the burst runs at (multicast: the group's common MCS rate).
    pub phy_mbps: f64,
    /// Beam-switch overhead paid before this burst, seconds.
    pub beam_switch_s: f64,
}

impl TxItem {
    /// A unicast burst.
    pub fn unicast(user: usize, bytes: f64, phy_mbps: f64) -> Self {
        TxItem {
            kind: TxKind::Unicast { user },
            bytes,
            parity_bytes: 0.0,
            phy_mbps,
            beam_switch_s: 0.0,
        }
    }

    /// A multicast burst.
    pub fn multicast(members: Vec<usize>, bytes: f64, phy_mbps: f64) -> Self {
        TxItem {
            kind: TxKind::Multicast { members },
            bytes,
            parity_bytes: 0.0,
            phy_mbps,
            beam_switch_s: 0.0,
        }
    }

    /// Builder: attaches proactive-FEC parity overhead to the burst.
    pub fn with_parity(mut self, parity_bytes: f64) -> Self {
        self.parity_bytes = parity_bytes;
        self
    }

    /// Bytes that actually cross the medium: payload plus parity. Exactly
    /// `bytes` when no FEC rides along (`parity_bytes == 0.0`).
    pub fn wire_bytes(&self) -> f64 {
        self.bytes + self.parity_bytes
    }

    /// The users that receive this item, borrowed (no allocation: the
    /// unicast case views the single id through `slice::from_ref`).
    pub fn receivers(&self) -> &[usize] {
        match &self.kind {
            TxKind::Unicast { user } => std::slice::from_ref(user),
            TxKind::Multicast { members } => members,
        }
    }
}

/// A frame's transmission schedule.
///
/// ```
/// use volcast_net::{AdMac, TransmissionPlan, TxItem};
///
/// let mut plan = TransmissionPlan::new();
/// // Shared cells to both users at the group MCS, residuals unicast.
/// plan.items.push(TxItem::multicast(vec![0, 1], 400_000.0, 1251.25));
/// plan.items.push(TxItem::unicast(0, 150_000.0, 2502.5));
/// plan.items.push(TxItem::unicast(1, 100_000.0, 2502.5));
/// let timing = plan.execute(&AdMac::default(), 2, 2);
/// assert!(timing.total_s > 0.0 && timing.total_s.is_finite());
/// // User 0 finishes with their residual; user 1 last.
/// assert!(timing.user_completion_s[1] > timing.user_completion_s[0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransmissionPlan {
    /// Items executed in order.
    pub items: Vec<TxItem>,
}

/// The timing outcome of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTiming {
    /// Completion time (seconds from plan start) of each item.
    pub item_completion_s: Vec<f64>,
    /// Per-user completion: when the *last* item addressed to each user
    /// finishes (indexed by user id; `None` when no item addressed them).
    pub user_completion_s: Vec<Option<f64>>,
    /// Total airtime of the plan in seconds.
    pub total_s: f64,
}

impl TransmissionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes scheduled.
    pub fn total_bytes(&self) -> f64 {
        self.items.iter().map(|i| i.bytes).sum()
    }

    /// Executes the plan sequentially on `mac`. `n_active` is the number of
    /// stations sharing the medium (for per-station MAC overhead);
    /// `n_users` sizes the per-user completion vector.
    pub fn execute<M: MacModel>(&self, mac: &M, n_active: usize, n_users: usize) -> PlanTiming {
        let mut t = 0.0f64;
        let mut item_completion_s = Vec::with_capacity(self.items.len());
        let mut user_completion_s = vec![None; n_users];
        for item in &self.items {
            let air = mac.airtime_s(item.wire_bytes(), item.phy_mbps, n_active);
            if obs::enabled() {
                match &item.kind {
                    TxKind::Multicast { .. } => {
                        obs::inc("net.plan.multicast_items");
                        obs::add("net.plan.multicast_bytes", item.bytes.max(0.0) as u64);
                    }
                    TxKind::Unicast { .. } => obs::inc("net.plan.unicast_items"),
                }
                if item.parity_bytes > 0.0 {
                    obs::inc("net.plan.fec_items");
                    obs::add("net.plan.fec_parity_bytes", item.parity_bytes as u64);
                }
                if air.is_finite() {
                    obs::record("net.plan.airtime_us", (air * 1e6).round() as u64);
                } else {
                    obs::inc("net.plan.outage_items");
                }
                if item.beam_switch_s > 0.0 {
                    obs::inc("net.plan.beam_switches");
                }
            }
            t += item.beam_switch_s;
            t += air;
            item_completion_s.push(t);
            for &u in item.receivers() {
                if u < n_users {
                    user_completion_s[u] = Some(t);
                }
            }
        }
        PlanTiming {
            item_completion_s,
            user_completion_s,
            total_s: t,
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(TxKind { Unicast { user }, Multicast { members } });
volcast_util::impl_json_struct!(TxItem {
    kind,
    bytes,
    parity_bytes,
    phy_mbps,
    beam_switch_s
});
volcast_util::impl_json_struct!(TransmissionPlan { items });
volcast_util::impl_json_struct!(PlanTiming {
    item_completion_s,
    user_completion_s,
    total_s
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::AdMac;

    fn mac() -> AdMac {
        // Idealized MAC for exact arithmetic: no overheads, efficiency 1.
        AdMac {
            base_efficiency: 1.0,
            bhi_fraction: 0.0,
            per_sta_overhead: 0.0,
        }
    }

    #[test]
    fn empty_plan_takes_no_time() {
        let plan = TransmissionPlan::new();
        let timing = plan.execute(&mac(), 2, 2);
        assert_eq!(timing.total_s, 0.0);
        assert_eq!(timing.user_completion_s, vec![None, None]);
        assert_eq!(plan.total_bytes(), 0.0);
    }

    #[test]
    fn sequential_airtime_adds_up() {
        // 1 Mb at 1000 Mbps = 1 ms each.
        let bytes = 1e6 / 8.0;
        let mut plan = TransmissionPlan::new();
        plan.items.push(TxItem::unicast(0, bytes, 1000.0));
        plan.items.push(TxItem::unicast(1, bytes, 1000.0));
        let t = plan.execute(&mac(), 2, 2);
        assert!((t.item_completion_s[0] - 1e-3).abs() < 1e-12);
        assert!((t.item_completion_s[1] - 2e-3).abs() < 1e-12);
        assert!((t.total_s - 2e-3).abs() < 1e-12);
        assert_eq!(t.user_completion_s[0], Some(t.item_completion_s[0]));
        assert_eq!(t.user_completion_s[1], Some(t.item_completion_s[1]));
    }

    #[test]
    fn paper_frame_time_model() {
        // T_m(k) = S_m/r_m + sum_i (S_i - S_m)/r_i with two users.
        let s_m = 4e5; // overlapped bytes
        let s_1 = 6e5;
        let s_2 = 5e5;
        let r_m = 800.0; // multicast (min-MCS) Mbps
        let r_1 = 2000.0;
        let r_2 = 1500.0;
        let mut plan = TransmissionPlan::new();
        plan.items.push(TxItem::multicast(vec![0, 1], s_m, r_m));
        plan.items.push(TxItem::unicast(0, s_1 - s_m, r_1));
        plan.items.push(TxItem::unicast(1, s_2 - s_m, r_2));
        let t = plan.execute(&mac(), 2, 2);
        let expect = s_m * 8.0 / (r_m * 1e6)
            + (s_1 - s_m) * 8.0 / (r_1 * 1e6)
            + (s_2 - s_m) * 8.0 / (r_2 * 1e6);
        assert!((t.total_s - expect).abs() < 1e-12);
    }

    #[test]
    fn multicast_completes_all_members_at_once() {
        let mut plan = TransmissionPlan::new();
        plan.items
            .push(TxItem::multicast(vec![0, 1, 2], 1e5, 1000.0));
        let t = plan.execute(&mac(), 3, 4);
        assert_eq!(t.user_completion_s[0], t.user_completion_s[1]);
        assert_eq!(t.user_completion_s[1], t.user_completion_s[2]);
        assert_eq!(t.user_completion_s[3], None);
    }

    #[test]
    fn beam_switch_overhead_counts() {
        let bytes = 1e6 / 8.0;
        let mut plan = TransmissionPlan::new();
        let mut item = TxItem::unicast(0, bytes, 1000.0);
        item.beam_switch_s = 5e-3;
        plan.items.push(item);
        let t = plan.execute(&mac(), 1, 1);
        assert!((t.total_s - 6e-3).abs() < 1e-12);
    }

    #[test]
    fn outage_makes_plan_infinite() {
        let mut plan = TransmissionPlan::new();
        plan.items.push(TxItem::unicast(0, 1e5, 0.0));
        let t = plan.execute(&mac(), 1, 1);
        assert!(t.total_s.is_infinite());
    }

    #[test]
    fn parity_bytes_count_toward_airtime_only() {
        let bytes = 1e6 / 8.0;
        let mut plan = TransmissionPlan::new();
        plan.items
            .push(TxItem::unicast(0, bytes, 1000.0).with_parity(bytes / 4.0));
        let t = plan.execute(&mac(), 1, 1);
        // 1.25 Mb at 1000 Mbps = 1.25 ms on the air...
        assert!((t.total_s - 1.25e-3).abs() < 1e-12);
        // ...but goodput accounting still sees the payload only.
        assert_eq!(plan.total_bytes(), bytes);
        // Zero parity is exactly the legacy airtime.
        assert_eq!(
            TxItem::unicast(0, bytes, 1000.0).wire_bytes(),
            TxItem::unicast(0, bytes, 1000.0).bytes
        );
    }

    #[test]
    fn receivers_listing() {
        assert_eq!(TxItem::unicast(3, 1.0, 1.0).receivers(), &[3]);
        assert_eq!(TxItem::multicast(vec![1, 4], 1.0, 1.0).receivers(), &[1, 4]);
    }
}

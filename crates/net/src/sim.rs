//! Event-driven multi-frame transmission simulation.
//!
//! [`TransmissionPlan::execute`](crate::plan::TransmissionPlan::execute)
//! times one frame's schedule in isolation. Real streaming is pipelined:
//! frame `f+1`'s bursts queue behind whatever is still on the air from
//! frame `f`. [`Simulator`] runs a sequence of per-frame plans through the
//! deterministic event queue and reports absolute completion times, with a
//! choice of backlog policies:
//!
//! - [`BacklogPolicy::Queue`]: late items keep transmitting (progressive
//!   download semantics); backlog accumulates when the network is
//!   overloaded.
//! - [`BacklogPolicy::Drop`]: at each frame boundary, unfinished items of
//!   older frames are abandoned (live semantics — a late volumetric frame
//!   is useless once its display slot passed).

use crate::error::NetError;
use crate::faults::{FaultPlan, FrameFaults};
use crate::mac::MacModel;
use crate::plan::TransmissionPlan;
use crate::time::SimTime;
use volcast_util::obs;

/// What happens to unfinished items at a frame boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacklogPolicy {
    /// Keep transmitting old frames' items before newer ones.
    Queue,
    /// Drop unfinished items of previous frames at each new frame start.
    Drop,
}

/// Per-frame outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// Frame index.
    pub frame: usize,
    /// When this frame's slot began.
    pub start: SimTime,
    /// Absolute completion time of each user's last item in this frame
    /// (`None`: nothing addressed to them, or their items were dropped).
    pub user_completion: Vec<Option<SimTime>>,
    /// Items of this frame that were dropped by [`BacklogPolicy::Drop`].
    pub dropped_items: usize,
}

impl FrameOutcome {
    /// `true` when `user`'s payload finished within `deadline` of the
    /// frame start.
    pub fn on_time(&self, user: usize, deadline: SimTime) -> bool {
        match self.user_completion.get(user).copied().flatten() {
            Some(t) => t <= self.start + deadline,
            None => false,
        }
    }
}

/// Reusable buffers for [`Simulator::run_into`]: the flattened pending
/// queue. Steady-state reuse allocates nothing once the high-watermark
/// capacity is reached.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Pending bursts as `(frame, item index, airtime)`, referencing the
    /// caller's plans instead of cloning receiver lists. Consumed by a
    /// head cursor — frames start in time order, so the `Drop` policy's
    /// stale-frame purge is a prefix advance, never a `retain`.
    pending: Vec<(usize, usize, SimTime)>,
}

/// Event-driven pipelined executor over per-frame plans.
#[derive(Debug)]
pub struct Simulator<'a, M: MacModel> {
    mac: &'a M,
    /// Stations sharing the medium (for MAC overhead).
    pub n_active: usize,
    /// Users (sizes the per-user completion vectors).
    pub n_users: usize,
    /// Frame interval.
    pub interval: SimTime,
    /// Backlog policy.
    pub policy: BacklogPolicy,
    /// Injected fault schedule, if any.
    faults: Option<&'a FaultPlan>,
}

impl<'a, M: MacModel> Simulator<'a, M> {
    /// Creates a simulator. Errors on degenerate setups that used to panic
    /// (or hang) deep inside the event loop: a zero frame interval (every
    /// frame released at t=0) or zero active stations (the MAC overhead
    /// model divides by the station count).
    pub fn new(
        mac: &'a M,
        n_active: usize,
        n_users: usize,
        interval: SimTime,
        policy: BacklogPolicy,
    ) -> Result<Self, NetError> {
        if interval.0 == 0 {
            return Err(NetError::InvalidSim("zero frame interval".into()));
        }
        if n_active == 0 {
            return Err(NetError::InvalidSim("zero active stations".into()));
        }
        Ok(Simulator {
            mac,
            n_active,
            n_users,
            interval,
            policy,
            faults: None,
        })
    }

    /// Attaches a deterministic fault schedule: AP stalls suspend
    /// transmission for the stalled frames' slots, and receivers flagged
    /// with loss or outage burn airtime without completing.
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    fn faults_at(&self, frame: usize) -> &'a FrameFaults {
        self.faults
            .map(|p| p.at(frame))
            .unwrap_or(FrameFaults::quiet())
    }

    /// Runs one plan per frame, frame `f` released at `f * interval`.
    /// Items with infinite airtime (outage) are dropped immediately.
    pub fn run(&self, plans: &[TransmissionPlan]) -> Vec<FrameOutcome> {
        let mut scratch = SimScratch::default();
        let mut outcomes = Vec::new();
        self.run_into(plans, &mut scratch, &mut outcomes);
        outcomes
    }

    /// [`Simulator::run`] into caller-owned buffers.
    ///
    /// The event loop is flattened: at most three future events can exist
    /// at once — the next frame release, the in-flight burst's completion,
    /// and the pending stall-resume — so the scheduler is a 3-way minimum
    /// instead of a binary heap, and the pending queue is a cursor over an
    /// append-only vector. Results are identical to the historical
    /// heap-based loop: on time ties, frame starts (scheduled upfront with
    /// the lowest sequence numbers) precede completions and resumes, and
    /// completion/resume order is interchangeable (a resume while a burst
    /// is on the air is a no-op; a completion at the resume instant starts
    /// the next burst itself).
    pub fn run_into(
        &self,
        plans: &[TransmissionPlan],
        scratch: &mut SimScratch,
        outcomes: &mut Vec<FrameOutcome>,
    ) {
        outcomes.truncate(plans.len());
        for (frame, o) in outcomes.iter_mut().enumerate() {
            o.frame = frame;
            o.start = SimTime(self.interval.0 * frame as u64);
            o.user_completion.clear();
            o.user_completion.resize(self.n_users, None);
            o.dropped_items = 0;
        }
        for frame in outcomes.len()..plans.len() {
            outcomes.push(FrameOutcome {
                frame,
                start: SimTime(self.interval.0 * frame as u64),
                user_completion: vec![None; self.n_users],
                dropped_items: 0,
            });
        }

        let pending = &mut scratch.pending;
        pending.clear();
        let mut head = 0usize;
        let mut next_frame = 0usize;
        // The in-flight burst as (frame, item index), finishing at `done_at`.
        let mut transmitting: Option<(usize, usize)> = None;
        let mut done_at = SimTime(0);
        // The AP transmits nothing before this time (injected stalls);
        // `resume_pending` marks an un-fired resume at `stalled_until`
        // (several queued resumes collapse to the latest — earlier ones
        // were no-ops against the monotone `stalled_until`).
        let mut stalled_until = SimTime(0);
        let mut resume_pending = false;

        loop {
            let t_frame =
                (next_frame < plans.len()).then(|| SimTime(self.interval.0 * next_frame as u64));
            let t_done = transmitting.map(|_| done_at);
            let t_resume = resume_pending.then_some(stalled_until);

            let is_frame = t_frame.is_some()
                && t_done.is_none_or(|t| t_frame.unwrap() <= t)
                && t_resume.is_none_or(|t| t_frame.unwrap() <= t);
            if is_frame {
                let f = next_frame;
                next_frame += 1;
                let now = t_frame.unwrap();
                obs::inc("net.sim.frames");
                obs::record("net.sim.queue_depth", (pending.len() - head) as u64);
                if self.policy == BacklogPolicy::Drop {
                    // Abandon unfinished items of older frames (the one
                    // on the air completes; preemption is not modeled).
                    let before = head;
                    while head < pending.len() && pending[head].0 < f {
                        head += 1;
                    }
                    let dropped = head - before;
                    obs::add("net.sim.dropped_items", dropped as u64);
                    if dropped > 0 {
                        // Attribution is approximate: count the drops
                        // against the newest stale frame.
                        outcomes[f.saturating_sub(1)].dropped_items += dropped;
                    }
                }
                if self.faults_at(f).ap_stall {
                    // The AP is down for this frame's slot: nothing new
                    // airs until the slot ends (the item already on the
                    // air completes — the stall hits the transmit path,
                    // not frames already serialized to the radio).
                    obs::inc("net.sim.faults.ap_stall_frames");
                    let resume = now + self.interval;
                    if resume > stalled_until {
                        stalled_until = resume;
                        resume_pending = true;
                    }
                }
                for (idx, item) in plans[f].items.iter().enumerate() {
                    let airtime_s = item.beam_switch_s
                        + self
                            .mac
                            .airtime_s(item.wire_bytes(), item.phy_mbps, self.n_active);
                    if !airtime_s.is_finite() {
                        outcomes[f].dropped_items += 1;
                        obs::inc("net.sim.dropped_items");
                        continue;
                    }
                    pending.push((f, idx, SimTime::from_secs(airtime_s)));
                }
                if transmitting.is_none() && now >= stalled_until {
                    if let Some(&(pf, pi, airtime)) = pending.get(head) {
                        head += 1;
                        transmitting = Some((pf, pi));
                        done_at = now + airtime;
                    }
                }
            } else if t_done.is_some() && t_resume.is_none_or(|t| done_at <= t) {
                let now = done_at;
                let (frame, idx) = transmitting.take().expect("in-flight burst");
                let faults = self.faults_at(frame);
                for &u in plans[frame].items[idx].receivers() {
                    if u >= self.n_users {
                        continue;
                    }
                    if faults.outage_for(u) {
                        // Airtime was burned, but this receiver got
                        // nothing usable.
                        obs::inc("net.sim.faults.lost_receptions");
                        continue;
                    }
                    if faults.loss_for(u) {
                        // A chunk-loss fault: with XOR parity riding the
                        // burst the receiver rebuilds the missing chunk in
                        // place (see crate::fec); without it the reception
                        // is lost exactly as before.
                        if plans[frame].items[idx].parity_bytes > 0.0 {
                            obs::inc("net.sim.fec_recovered_receptions");
                        } else {
                            obs::inc("net.sim.faults.lost_receptions");
                            continue;
                        }
                    }
                    outcomes[frame].user_completion[u] = Some(now);
                }
                if now >= stalled_until {
                    if let Some(&(pf, pi, airtime)) = pending.get(head) {
                        head += 1;
                        transmitting = Some((pf, pi));
                        done_at = now + airtime;
                    }
                }
            } else if resume_pending {
                let now = stalled_until;
                resume_pending = false;
                if transmitting.is_none() {
                    if let Some(&(pf, pi, airtime)) = pending.get(head) {
                        head += 1;
                        transmitting = Some((pf, pi));
                        done_at = now + airtime;
                    }
                }
            } else {
                break;
            }
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(BacklogPolicy { Queue, Drop });
volcast_util::impl_json_struct!(FrameOutcome {
    frame,
    start,
    user_completion,
    dropped_items
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::AdMac;
    use crate::plan::TxItem;

    fn ideal_mac() -> AdMac {
        AdMac {
            base_efficiency: 1.0,
            bhi_fraction: 0.0,
            per_sta_overhead: 0.0,
        }
    }

    /// A plan with one unicast item of `ms` milliseconds at 1000 Mbps.
    fn plan_ms(user: usize, ms: f64) -> TransmissionPlan {
        let bytes = 1000.0e6 / 8.0 * ms / 1e3;
        let mut p = TransmissionPlan::new();
        p.items.push(TxItem::unicast(user, bytes, 1000.0));
        p
    }

    fn sim(mac: &AdMac, policy: BacklogPolicy) -> Simulator<'_, AdMac> {
        Simulator::new(mac, 2, 2, SimTime::from_millis(33.333), policy).unwrap()
    }

    #[test]
    fn light_load_matches_per_slot_execution() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        // 10 ms per frame: always finishes inside the 33 ms slot.
        let plans: Vec<_> = (0..5).map(|_| plan_ms(0, 10.0)).collect();
        let outcomes = s.run(&plans);
        for o in &outcomes {
            let t = o.user_completion[0].unwrap();
            let offset = (t - o.start).as_millis();
            assert!(
                (offset - 10.0).abs() < 0.01,
                "frame {} offset {offset}",
                o.frame
            );
            assert!(o.on_time(0, SimTime::from_millis(33.333)));
        }
    }

    #[test]
    fn overload_accumulates_backlog_under_queue_policy() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        // 50 ms of airtime per 33 ms slot: each frame lands ~17 ms later.
        let plans: Vec<_> = (0..6).map(|_| plan_ms(0, 50.0)).collect();
        let outcomes = s.run(&plans);
        let mut prev_lateness = -1.0;
        for o in &outcomes {
            let lateness = (o.user_completion[0].unwrap() - o.start).as_millis();
            assert!(lateness > prev_lateness, "backlog must grow");
            prev_lateness = lateness;
        }
        // Final frame is ~6*50 - 5*33.3 ~ 133 ms after its start.
        assert!(prev_lateness > 100.0);
    }

    #[test]
    fn drop_policy_bounds_backlog() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Drop);
        let plans: Vec<_> = (0..6).map(|_| plan_ms(0, 50.0)).collect();
        let outcomes = s.run(&plans);
        // Some frames get dropped entirely; those that complete do so
        // within a bounded delay (one in-flight item + own airtime).
        let mut completed = 0;
        let mut dropped = 0;
        for o in &outcomes {
            if let Some(t) = o.user_completion[0] {
                completed += 1;
                assert!((t - o.start).as_millis() < 100.0);
            }
            dropped += o.dropped_items;
        }
        assert!(completed >= 2, "some frames must complete");
        assert!(dropped >= 1, "overload must drop items");
    }

    #[test]
    fn multicast_completion_reaches_all_members() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        let mut p = TransmissionPlan::new();
        p.items
            .push(TxItem::multicast(vec![0, 1], 1e6 / 8.0, 1000.0));
        let outcomes = s.run(&[p]);
        let t0 = outcomes[0].user_completion[0].unwrap();
        let t1 = outcomes[0].user_completion[1].unwrap();
        assert_eq!(t0, t1);
        assert!((t0.as_millis() - 1.0).abs() < 0.01);
    }

    #[test]
    fn outage_items_are_dropped_not_stuck() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        let mut p = TransmissionPlan::new();
        p.items.push(TxItem::unicast(0, 1e6, 0.0)); // outage
        p.items.push(TxItem::unicast(1, 1e6 / 8.0, 1000.0));
        let outcomes = s.run(&[p]);
        assert_eq!(outcomes[0].user_completion[0], None);
        assert_eq!(outcomes[0].dropped_items, 1);
        // User 1 still served.
        assert!(outcomes[0].user_completion[1].is_some());
    }

    #[test]
    fn empty_plans_produce_empty_outcomes() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        let outcomes = s.run(&[TransmissionPlan::new(), TransmissionPlan::new()]);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes
            .iter()
            .all(|o| o.user_completion.iter().all(|c| c.is_none())));
    }

    #[test]
    fn degenerate_setups_are_errors_not_hangs() {
        let mac = ideal_mac();
        let err = Simulator::new(&mac, 2, 2, SimTime(0), BacklogPolicy::Queue);
        assert!(matches!(err, Err(crate::error::NetError::InvalidSim(_))));
        let err = Simulator::new(&mac, 0, 2, SimTime::from_millis(33.3), BacklogPolicy::Queue);
        assert!(matches!(err, Err(crate::error::NetError::InvalidSim(_))));
    }

    #[test]
    fn injected_loss_burns_airtime_without_completion() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mac = ideal_mac();
        // Lose user 0's receptions in frame 0 only (scripted via blackout
        // on a 1-user mask would hit everyone; use loss at rate 1 with a
        // 1-frame plan and check frame isolation with two frames).
        let cfg = FaultConfig {
            loss_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(cfg, 1, 2).unwrap();
        let s = sim(&mac, BacklogPolicy::Queue).with_faults(&plan);
        let plans = [plan_ms(0, 10.0), plan_ms(0, 10.0)];
        let outcomes = s.run(&plans);
        // Frame 0 is inside the schedule (loss), frame 1 beyond it (quiet).
        assert_eq!(outcomes[0].user_completion[0], None);
        assert!(outcomes[1].user_completion[0].is_some());
    }

    #[test]
    fn fec_parity_survives_loss_but_not_outage() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mac = ideal_mac();
        let cfg = FaultConfig {
            loss_rate: 1.0,
            ..FaultConfig::default()
        };
        let faults = FaultPlan::generate(cfg, 1, 2).unwrap();
        // Same loss schedule; the parity-carrying item recovers in place,
        // paying its overhead in airtime.
        let bytes = 1000.0e6 / 8.0 * 10.0 / 1e3; // 10 ms payload
        let mut p = TransmissionPlan::new();
        p.items
            .push(TxItem::unicast(0, bytes, 1000.0).with_parity(bytes / 4.0));
        let s = sim(&mac, BacklogPolicy::Queue).with_faults(&faults);
        let outcomes = s.run(&[p]);
        let t = outcomes[0].user_completion[0].expect("FEC must recover the loss");
        // 12.5 ms: payload + 25% parity overhead on the air.
        assert!(((t - outcomes[0].start).as_millis() - 12.5).abs() < 0.01);

        // An outage is a dead link, not an erasure: parity cannot help.
        let cfg = FaultConfig {
            outage_rate: 1.0,
            outage_frames: 1,
            ..FaultConfig::default()
        };
        let faults = FaultPlan::generate(cfg, 1, 2).unwrap();
        let mut p = TransmissionPlan::new();
        p.items
            .push(TxItem::unicast(0, bytes, 1000.0).with_parity(bytes / 4.0));
        let s = sim(&mac, BacklogPolicy::Queue).with_faults(&faults);
        let outcomes = s.run(&[p]);
        assert_eq!(outcomes[0].user_completion[0], None);
    }

    #[test]
    fn ap_stall_defers_transmission_to_the_next_slot() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mac = ideal_mac();
        let cfg = FaultConfig {
            ap_stall_rate: 1.0,
            ap_stall_frames: 1,
            ..FaultConfig::default()
        };
        // Stall frame 0 only.
        let plan = FaultPlan::generate(cfg, 1, 2).unwrap();
        let s = sim(&mac, BacklogPolicy::Queue).with_faults(&plan);
        let plans = [plan_ms(0, 10.0), plan_ms(0, 10.0)];
        let outcomes = s.run(&plans);
        // Frame 0's item airs only once the stall lifts at the frame-1
        // boundary (33.333 ms), finishing 10 ms later.
        let t0 = outcomes[0].user_completion[0].unwrap();
        assert!((t0.as_millis() - 43.333).abs() < 0.05, "{}", t0.as_millis());
        assert!(!outcomes[0].on_time(0, SimTime::from_millis(33.333)));
        // Frame 1 queues behind it but still completes.
        assert!(outcomes[1].user_completion[0].is_some());
    }

    #[test]
    fn beam_switch_counts_into_airtime() {
        let mac = ideal_mac();
        let s = sim(&mac, BacklogPolicy::Queue);
        let mut p = TransmissionPlan::new();
        let mut item = TxItem::unicast(0, 1e6 / 8.0, 1000.0);
        item.beam_switch_s = 5e-3;
        p.items.push(item);
        let outcomes = s.run(&[p]);
        let t = outcomes[0].user_completion[0].unwrap();
        assert!((t.as_millis() - 6.0).abs() < 0.01);
    }
}

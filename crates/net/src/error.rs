//! Network-layer error type.
//!
//! Degenerate inputs to the network substrate — malformed fault specs,
//! out-of-range fault configurations, zero-interval simulators — used to
//! panic deep inside the hot path. They now surface as [`NetError`] from
//! the constructors and parsers, so callers (the session layer, the CLI)
//! can degrade gracefully instead of aborting. `volcast_core::VolcastError`
//! wraps this type for the end-to-end session API.

use std::fmt;

/// An invalid input to the network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A `VOLCAST_FAULTS`-style fault spec string failed to parse.
    InvalidFaultSpec(String),
    /// A fault configuration is out of range (rates outside `[0, 1]`,
    /// zero-length episodes, too many users for the mask width).
    InvalidFaultConfig(String),
    /// A simulator was constructed with degenerate parameters (zero frame
    /// interval, zero stations).
    InvalidSim(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidFaultSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            NetError::InvalidFaultConfig(msg) => write!(f, "invalid fault config: {msg}"),
            NetError::InvalidSim(msg) => write!(f, "invalid simulator setup: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::InvalidFaultSpec("bad key 'x'".into());
        assert!(e.to_string().contains("bad key 'x'"));
        let e = NetError::InvalidSim("zero interval".into());
        assert!(e.to_string().contains("zero interval"));
    }
}

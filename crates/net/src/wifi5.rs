//! 5 GHz (802.11ac) channel model for the baseline network of Table 1.
//!
//! Unlike the 60 GHz substrate, 5 GHz links are quasi-omnidirectional and
//! penetrate bodies with only a few dB of loss, so the model is a classic
//! log-distance path loss with a small body-shadowing term — no beams, no
//! codebooks. Multicast over 802.11ac is famously unattractive: without
//! GCR, group-addressed frames go out at a fixed legacy basic rate, which
//! is why the paper's multicast design targets mmWave in the first place.

/// Log-distance path-loss channel at 5 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wifi5Channel {
    /// Transmit power + antenna gains, dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB (FSPL at 5.25 GHz ≈ 47).
    pub ref_loss_db: f64,
    /// Path-loss exponent (indoor LoS-ish: 2.2-3.0).
    pub exponent: f64,
    /// Extra loss when a human body shadows the link, dB (5 GHz bodies are
    /// nearly transparent compared to 60 GHz).
    pub body_shadow_db: f64,
    /// Legacy basic rate used for group-addressed (multicast) frames, Mbps.
    pub multicast_basic_rate_mbps: f64,
}

impl Default for Wifi5Channel {
    /// Calibrated so room-scale links run at VHT80 2SS MCS9 (the 866.7 Mbps
    /// PHY anchor behind the paper's 374 Mbps single-user TCP measurement).
    fn default() -> Self {
        Wifi5Channel {
            tx_power_dbm: 20.0,
            ref_loss_db: 47.0,
            exponent: 2.6,
            body_shadow_db: 4.0,
            multicast_basic_rate_mbps: 24.0,
        }
    }
}

impl Wifi5Channel {
    /// RSS (dBm) at `distance_m`, with `bodies_in_path` humans shadowing.
    pub fn rss_dbm(&self, distance_m: f64, bodies_in_path: usize) -> f64 {
        let d = distance_m.max(0.5);
        self.tx_power_dbm
            - self.ref_loss_db
            - 10.0 * self.exponent * d.log10()
            - self.body_shadow_db * bodies_in_path as f64
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Wifi5Channel {
    tx_power_dbm,
    ref_loss_db,
    exponent,
    body_shadow_db,
    multicast_basic_rate_mbps
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::AcMac;
    use crate::mac::MacModel;

    #[test]
    fn room_scale_links_reach_top_mcs() {
        // VHT80 2SS MCS9 needs about -57 dBm (see volcast-mmwave's table).
        let ch = Wifi5Channel::default();
        for d in [2.0, 4.0, 6.0, 8.0] {
            let rss = ch.rss_dbm(d, 0);
            assert!(rss > -57.0, "RSS {rss} at {d} m below MCS9 sensitivity");
        }
    }

    #[test]
    fn rss_decreases_with_distance_and_bodies() {
        let ch = Wifi5Channel::default();
        assert!(ch.rss_dbm(2.0, 0) > ch.rss_dbm(6.0, 0));
        assert!(ch.rss_dbm(4.0, 0) > ch.rss_dbm(4.0, 2));
        // Two bodies cost 8 dB, not a 60 GHz-style outage.
        assert!(ch.rss_dbm(4.0, 0) - ch.rss_dbm(4.0, 2) < 10.0);
    }

    #[test]
    fn min_distance_clamp() {
        let ch = Wifi5Channel::default();
        assert_eq!(ch.rss_dbm(0.0, 0), ch.rss_dbm(0.5, 0));
    }

    #[test]
    fn calibration_single_user_throughput() {
        // MCS9 PHY 866.7 through the AcMac: ~374 Mbps (paper anchor).
        let mac = AcMac::default();
        let tput = mac.goodput_mbps(866.7, 1);
        assert!((tput - 374.0).abs() < 5.0, "{tput}");
    }

    #[test]
    fn multicast_basic_rate_is_legacy_slow() {
        let ch = Wifi5Channel::default();
        assert!(ch.multicast_basic_rate_mbps < 60.0);
    }
}

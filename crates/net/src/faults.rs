//! Deterministic fault injection.
//!
//! The paper's premise is that mmWave links are *fragile*: bodies cross the
//! LoS, users walk, APs hiccup — and the cross-layer design has to absorb
//! all of it (§3.3 proactive blockage mitigation, §3.4 rate adaptation).
//! The channel model produces *organic* blockage from user geometry, but
//! organic faults cannot be dialed up, pinned to a frame, or repeated
//! across configurations. This module provides the missing stressor: a
//! seeded, deterministic [`FaultPlan`] that schedules fault events over a
//! session's frames, independent of thread count and identical on every
//! platform.
//!
//! Five fault classes are modeled:
//!
//! - **link outage bursts** — a user's PHY collapses completely for a few
//!   consecutive frames (deep fade, hand over the module),
//! - **blockage episodes** — a phantom body parks on a user's LoS for a
//!   few frames (injected at the *channel* level: the session drops a
//!   synthetic blocker onto the path, and the channel model attenuates and
//!   re-steers exactly as it would for a real body),
//! - **AP stalls** — the AP transmits nothing for a stretch of frames
//!   (firmware hiccup, channel-access loss, restart),
//! - **transmission-item loss** — a scheduled burst transmits (airtime is
//!   burned) but a receiver never gets it (corrupted MPDUs past the MAC's
//!   retry budget),
//! - **decode-deadline overruns** — a client misses its decode slot even
//!   though bytes arrived on time (thermal throttling, background work).
//!
//! Schedules are materialized once at generation time into per-frame
//! per-user bit sets ([`FrameFaults`], backed by the growable
//! [`BitSet`]), so queries in the hot loop
//! are word-indexed bit tests and the schedule cannot drift with
//! evaluation order. Each fault class and user draws from its own
//! [`Rng::for_stream`] stream, so enabling one class never perturbs
//! another's schedule, and plans scale to campus-sized populations —
//! there is no fixed user ceiling.
//!
//! ```
//! use volcast_net::{FaultConfig, FaultPlan};
//!
//! let cfg = FaultConfig::from_spec("seed=7,outage=0.1:4,loss=0.2").unwrap();
//! let plan = FaultPlan::generate(cfg, 60, 4).unwrap();
//! let again = FaultPlan::generate(cfg, 60, 4).unwrap();
//! assert_eq!(plan, again); // same seed + config => same schedule, always
//! ```
//!
//! # The `--faults` spec grammar
//!
//! Fault schedules are configured from a compact one-line spec — the
//! argument of the CLI's `--faults` flag and of the `VOLCAST_FAULTS`
//! environment variable, parsed by [`FaultConfig::from_spec`]:
//!
//! ```text
//! spec     := part ("," part)*
//! part     := "seed=" u64
//!           | "outage="   rate [":" frames]     # episodic, default 6 frames
//!           | "blockage=" rate [":" frames]     # episodic, default 4 frames
//!           | "stall="    rate [":" frames]     # episodic, default 3 frames
//!           | "loss="     rate                  # single-frame events
//!           | "decode="   rate                  # single-frame events
//!           | "blackout=" start ":" frames      # scripted all-user outage
//! rate     := f64 in [0, 1]                    # per-frame onset probability
//! frames   := usize >= 1                       # episode length
//! ```
//!
//! Whitespace around parts is ignored; the empty spec is the quiet
//! configuration. Unknown keys, duplicate keys, malformed numbers,
//! out-of-range rates, and zero-length episodes are hard errors — a typo
//! cannot silently disable a stress scenario:
//!
//! ```
//! use volcast_net::FaultConfig;
//!
//! let cfg = FaultConfig::from_spec(
//!     "seed=7,outage=0.02:6,blockage=0.05:4,stall=0.01:3,loss=0.03,decode=0.02,blackout=30:10",
//! )
//! .unwrap();
//! assert_eq!(cfg.seed, 7);
//! assert_eq!((cfg.outage_rate, cfg.outage_frames), (0.02, 6));
//! assert_eq!((cfg.blackout_start, cfg.blackout_frames), (30, 10));
//!
//! // Episode lengths are optional and default per class.
//! assert_eq!(FaultConfig::from_spec("outage=0.1").unwrap().outage_frames, 6);
//!
//! // Malformed specs fail loudly instead of running an unstressed session.
//! assert!(FaultConfig::from_spec("outage=1.5").is_err()); // rate out of [0, 1]
//! assert!(FaultConfig::from_spec("nosuch=1").is_err()); // unknown key
//! assert!(FaultConfig::from_spec("loss=0.5:3").is_err()); // loss takes no duration
//! assert!(FaultConfig::from_spec("loss=0.5,loss=0.1").is_err()); // duplicate key
//! ```

use crate::error::NetError;
use volcast_util::bitset::BitSet;
use volcast_util::obs;
use volcast_util::rng::Rng;

/// Configuration for one deterministic fault schedule.
///
/// Rates are per-frame onset probabilities in `[0, 1]`; `*_frames` fields
/// are episode lengths in frames (how long an onset lasts). `loss_rate`
/// and `decode_overrun_rate` describe single-frame events and carry no
/// duration. The `blackout_*` window is a *scripted* (non-random) 100%
/// outage for every user — the reproducible worst case the degradation
/// ladder must survive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule (independent of the content seed).
    pub seed: u64,
    /// Per-frame, per-user probability that a link-outage burst starts.
    pub outage_rate: f64,
    /// Length of a link-outage burst, frames.
    pub outage_frames: usize,
    /// Per-frame, per-user probability that a blockage episode starts.
    pub blockage_rate: f64,
    /// Length of a blockage episode, frames.
    pub blockage_frames: usize,
    /// Per-frame probability that an AP stall starts.
    pub ap_stall_rate: f64,
    /// Length of an AP stall, frames.
    pub ap_stall_frames: usize,
    /// Per-frame, per-user probability that the user's scheduled items are
    /// transmitted but lost (airtime burned, nothing received).
    pub loss_rate: f64,
    /// Per-frame, per-user probability of a decode-deadline overrun.
    pub decode_overrun_rate: f64,
    /// First frame of the scripted all-user outage window (with
    /// `blackout_frames > 0`).
    pub blackout_start: usize,
    /// Length of the scripted all-user outage window; 0 disables it.
    pub blackout_frames: usize,
}

impl Default for FaultConfig {
    /// A quiet plan: every rate zero, episode lengths at their defaults so
    /// that turning a single rate on gives sensible bursts.
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            outage_rate: 0.0,
            outage_frames: 6,
            blockage_rate: 0.0,
            blockage_frames: 4,
            ap_stall_rate: 0.0,
            ap_stall_frames: 3,
            loss_rate: 0.0,
            decode_overrun_rate: 0.0,
            blackout_start: 0,
            blackout_frames: 0,
        }
    }
}

impl FaultConfig {
    /// `true` when no fault class is active (the generated plan is empty).
    pub fn is_quiet(&self) -> bool {
        self.outage_rate == 0.0
            && self.blockage_rate == 0.0
            && self.ap_stall_rate == 0.0
            && self.loss_rate == 0.0
            && self.decode_overrun_rate == 0.0
            && self.blackout_frames == 0
    }

    /// Validates ranges: rates in `[0, 1]` and finite, episode lengths at
    /// least 1 for any class with a nonzero rate.
    pub fn validate(&self) -> Result<(), NetError> {
        let rates = [
            ("outage", self.outage_rate, self.outage_frames),
            ("blockage", self.blockage_rate, self.blockage_frames),
            ("stall", self.ap_stall_rate, self.ap_stall_frames),
            ("loss", self.loss_rate, 1),
            ("decode", self.decode_overrun_rate, 1),
        ];
        for (name, rate, frames) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(NetError::InvalidFaultConfig(format!(
                    "{name} rate {rate} outside [0, 1]"
                )));
            }
            if rate > 0.0 && frames == 0 {
                return Err(NetError::InvalidFaultConfig(format!(
                    "{name} rate {rate} with zero-length episodes"
                )));
            }
        }
        Ok(())
    }

    /// Parses a compact `key=value` spec, the `VOLCAST_FAULTS` syntax:
    ///
    /// ```text
    /// seed=7,outage=0.02:6,blockage=0.05:4,stall=0.01:3,loss=0.03,decode=0.02,blackout=30:10
    /// ```
    ///
    /// Episodic classes take `rate:frames` (frames optional, defaulting per
    /// class); `loss`/`decode` take a bare rate; `blackout` takes
    /// `start:frames`. Unknown keys, duplicate keys, and malformed numbers
    /// are errors, so a typo cannot silently disable a stress scenario.
    pub fn from_spec(spec: &str) -> Result<FaultConfig, NetError> {
        let bad = |msg: String| NetError::InvalidFaultSpec(msg);
        let mut cfg = FaultConfig::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key=value, got '{part}'")))?;
            // Duplicate keys are a hard error: silently letting the last
            // occurrence win would turn `outage=0.5,outage=0.0` into an
            // unstressed run that *looks* stressed in the logs.
            if seen.contains(&key) {
                return Err(bad(format!("duplicate key '{key}'")));
            }
            seen.push(key);
            let (head, tail) = match value.split_once(':') {
                Some((h, t)) => (h, Some(t)),
                None => (value, None),
            };
            let rate = |s: &str| -> Result<f64, NetError> {
                s.parse::<f64>()
                    .map_err(|_| bad(format!("bad number '{s}' for '{key}'")))
            };
            let count = |s: &str| -> Result<usize, NetError> {
                s.parse::<usize>()
                    .map_err(|_| bad(format!("bad count '{s}' for '{key}'")))
            };
            match key {
                "seed" => {
                    if tail.is_some() {
                        return Err(bad(format!("'{key}' takes a single integer")));
                    }
                    cfg.seed = value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("bad seed '{value}'")))?;
                }
                "outage" => {
                    cfg.outage_rate = rate(head)?;
                    if let Some(t) = tail {
                        cfg.outage_frames = count(t)?;
                    }
                }
                "blockage" => {
                    cfg.blockage_rate = rate(head)?;
                    if let Some(t) = tail {
                        cfg.blockage_frames = count(t)?;
                    }
                }
                "stall" => {
                    cfg.ap_stall_rate = rate(head)?;
                    if let Some(t) = tail {
                        cfg.ap_stall_frames = count(t)?;
                    }
                }
                "loss" => {
                    if tail.is_some() {
                        return Err(bad("'loss' takes a bare rate".into()));
                    }
                    cfg.loss_rate = rate(head)?;
                }
                "decode" => {
                    if tail.is_some() {
                        return Err(bad("'decode' takes a bare rate".into()));
                    }
                    cfg.decode_overrun_rate = rate(head)?;
                }
                "blackout" => {
                    cfg.blackout_start = count(head)?;
                    cfg.blackout_frames =
                        count(tail.ok_or_else(|| bad("'blackout' takes start:frames".into()))?)?;
                }
                other => return Err(bad(format!("unknown key '{other}'"))),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// The faults active during one frame: per-user bit sets plus the global
/// AP-stall flag. The default value is the quiet frame. Membership sets
/// are growable [`BitSet`]s, so a frame scales to any population size.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameFaults {
    /// Users whose link is in a total outage this frame.
    pub outage: BitSet,
    /// Users with an injected blockage on their LoS this frame.
    pub blockage: BitSet,
    /// Users whose transmitted items are lost this frame.
    pub loss: BitSet,
    /// Users whose decoder misses its deadline this frame.
    pub decode_overrun: BitSet,
    /// The AP transmits nothing this frame.
    pub ap_stall: bool,
}

/// The quiet frame, shared by out-of-schedule and fault-free queries.
/// (`BitSet::new` is `const`, so this allocates nothing.)
static QUIET_FRAME: FrameFaults = FrameFaults {
    outage: BitSet::new(),
    blockage: BitSet::new(),
    loss: BitSet::new(),
    decode_overrun: BitSet::new(),
    ap_stall: false,
};

impl FrameFaults {
    /// A `'static` reference to the quiet frame — the allocation-free
    /// answer for queries beyond a plan's schedule or without any plan.
    pub fn quiet() -> &'static FrameFaults {
        &QUIET_FRAME
    }

    /// `true` when nothing is injected this frame.
    pub fn is_quiet(&self) -> bool {
        self.outage.is_empty()
            && self.blockage.is_empty()
            && self.loss.is_empty()
            && self.decode_overrun.is_empty()
            && !self.ap_stall
    }

    /// Link outage for `user` this frame.
    pub fn outage_for(&self, user: usize) -> bool {
        self.outage.contains(user)
    }

    /// Injected blockage for `user` this frame.
    pub fn blockage_for(&self, user: usize) -> bool {
        self.blockage.contains(user)
    }

    /// Transmission loss for `user` this frame.
    pub fn loss_for(&self, user: usize) -> bool {
        self.loss.contains(user)
    }

    /// Decode-deadline overrun for `user` this frame.
    pub fn decode_overrun_for(&self, user: usize) -> bool {
        self.decode_overrun.contains(user)
    }

    /// Number of (class, user) fault activations this frame.
    pub fn active_count(&self) -> u64 {
        (self.outage.count()
            + self.blockage.count()
            + self.loss.count()
            + self.decode_overrun.count()
            + self.ap_stall as usize) as u64
    }
}

/// Seed-stream ids for the fault classes (see [`Rng::for_stream`]): each
/// class and user owns stream `CLASS_BASE + user`, so schedules are stable
/// under any evaluation order and any thread count.
const STREAM_OUTAGE: u64 = 0x0100;
const STREAM_BLOCKAGE: u64 = 0x0200;
const STREAM_AP_STALL: u64 = 0x0300;
const STREAM_LOSS: u64 = 0x0400;
const STREAM_DECODE: u64 = 0x0500;

/// A materialized fault schedule: one [`FrameFaults`] per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The configuration the plan was generated from.
    pub config: FaultConfig,
    frames: Vec<FrameFaults>,
}

impl Default for FaultPlan {
    /// Same as [`FaultPlan::quiet`].
    fn default() -> FaultPlan {
        FaultPlan::quiet()
    }
}

impl FaultPlan {
    /// An empty plan: no faults, any frame queries return the quiet frame.
    pub fn quiet() -> FaultPlan {
        FaultPlan {
            config: FaultConfig::default(),
            frames: Vec::new(),
        }
    }

    /// Generates the schedule for `frames` frames and `n_users` users.
    ///
    /// Deterministic in `(config, frames, n_users)`: per-class, per-user
    /// seed streams are drawn serially at generation time, never in the
    /// hot loop. Errors on invalid configs. Populations of any size are
    /// supported — membership sets grow with `n_users`, and for 64 or
    /// fewer users the schedule is bit-identical to the plans generated by
    /// the historical fixed-width `u64` masks (the per-class, per-user RNG
    /// streams are consumed in the same order).
    pub fn generate(
        config: FaultConfig,
        frames: usize,
        n_users: usize,
    ) -> Result<FaultPlan, NetError> {
        let mut plan = FaultPlan::quiet();
        plan.regenerate(config, frames, n_users)?;
        Ok(plan)
    }

    /// Regenerates the schedule in place for a new `(config, frames,
    /// n_users)` domain. Produces exactly the schedule
    /// [`FaultPlan::generate`] would, but reuses the frame vector and the
    /// per-frame bit-set words — steady-state regeneration over domains of
    /// similar size allocates nothing.
    pub fn regenerate(
        &mut self,
        config: FaultConfig,
        frames: usize,
        n_users: usize,
    ) -> Result<(), NetError> {
        config.validate()?;
        self.config = config;
        self.frames.truncate(frames);
        for mask in self.frames.iter_mut() {
            mask.outage.clear();
            mask.blockage.clear();
            mask.loss.clear();
            mask.decode_overrun.clear();
            mask.ap_stall = false;
        }
        self.frames.resize_with(frames, FrameFaults::default);
        let masks = &mut self.frames;

        // Episodic per-user classes: walk each user's own stream once.
        let mut episodes =
            |stream_base: u64, rate: f64, len: usize, pick: fn(&mut FrameFaults) -> &mut BitSet| {
                if rate <= 0.0 {
                    return 0u64;
                }
                let mut events = 0u64;
                for u in 0..n_users {
                    let mut rng = Rng::for_stream(config.seed, stream_base + u as u64);
                    let mut remaining = 0usize;
                    for mask in masks.iter_mut() {
                        if remaining == 0 && rng.gen_bool(rate) {
                            remaining = len;
                            events += 1;
                        }
                        if remaining > 0 {
                            pick(mask).insert(u);
                            remaining -= 1;
                        }
                    }
                }
                events
            };
        let outage_events = episodes(
            STREAM_OUTAGE,
            config.outage_rate,
            config.outage_frames,
            |m| &mut m.outage,
        );
        let blockage_events = episodes(
            STREAM_BLOCKAGE,
            config.blockage_rate,
            config.blockage_frames,
            |m| &mut m.blockage,
        );
        let loss_events = episodes(STREAM_LOSS, config.loss_rate, 1, |m| &mut m.loss);
        let decode_events = episodes(STREAM_DECODE, config.decode_overrun_rate, 1, |m| {
            &mut m.decode_overrun
        });

        // AP stalls: one global stream.
        let mut stall_events = 0u64;
        if config.ap_stall_rate > 0.0 {
            let mut rng = Rng::for_stream(config.seed, STREAM_AP_STALL);
            let mut remaining = 0usize;
            for mask in masks.iter_mut() {
                if remaining == 0 && rng.gen_bool(config.ap_stall_rate) {
                    remaining = config.ap_stall_frames;
                    stall_events += 1;
                }
                if remaining > 0 {
                    mask.ap_stall = true;
                    remaining -= 1;
                }
            }
        }

        // Scripted blackout window: a total outage for every user.
        if config.blackout_frames > 0 && n_users > 0 {
            let end = config.blackout_start.saturating_add(config.blackout_frames);
            for mask in masks
                .iter_mut()
                .take(end.min(frames))
                .skip(config.blackout_start)
            {
                mask.outage.insert_range(0..n_users);
            }
        }

        if obs::enabled() {
            obs::add("faults.plan.outage_episodes", outage_events);
            obs::add("faults.plan.blockage_episodes", blockage_events);
            obs::add("faults.plan.ap_stalls", stall_events);
            obs::add("faults.plan.loss_frames", loss_events);
            obs::add("faults.plan.decode_overruns", decode_events);
        }
        Ok(())
    }

    /// The faults active at `frame` (the quiet frame beyond the schedule).
    pub fn at(&self, frame: usize) -> &FrameFaults {
        self.frames.get(frame).unwrap_or(FrameFaults::quiet())
    }

    /// Number of scheduled frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Total (class, user) fault activations over the whole schedule.
    pub fn total_activations(&self) -> u64 {
        self.frames.iter().map(|f| f.active_count()).sum()
    }

    /// `true` when the schedule injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.frames.iter().all(FrameFaults::is_quiet)
    }
}

// JSON serialization (the config travels inside SessionParams).
volcast_util::impl_json_struct!(FaultConfig {
    seed,
    outage_rate,
    outage_frames,
    blockage_rate,
    blockage_frames,
    ap_stall_rate,
    ap_stall_frames,
    loss_rate,
    decode_overrun_rate,
    blackout_start,
    blackout_frames
});

#[cfg(test)]
mod tests {
    use super::*;

    fn stress() -> FaultConfig {
        FaultConfig::from_spec(
            "seed=9,outage=0.1:4,blockage=0.2:3,stall=0.05:2,loss=0.2,decode=0.1",
        )
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(stress(), 120, 5).unwrap();
        let b = FaultPlan::generate(stress(), 120, 5).unwrap();
        assert_eq!(a, b);
        assert!(a.total_activations() > 0, "stress config injected nothing");
    }

    #[test]
    fn regenerate_matches_generate_across_domains() {
        // One plan regenerated across shifting (seed, frames, users)
        // domains must equal a fresh generation each time — including
        // shrinking, where stale frames and set bits must not leak.
        let mut plan = FaultPlan::generate(stress(), 120, 5).unwrap();
        for (seed, frames, users) in [(11u64, 60, 9), (12, 200, 3), (11, 10, 1), (13, 120, 5)] {
            let cfg = FaultConfig { seed, ..stress() };
            plan.regenerate(cfg, frames, users).unwrap();
            let fresh = FaultPlan::generate(cfg, frames, users).unwrap();
            assert_eq!(plan, fresh, "domain ({seed}, {frames}, {users})");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = stress();
        other.seed = 10;
        let a = FaultPlan::generate(stress(), 120, 5).unwrap();
        let b = FaultPlan::generate(other, 120, 5).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn classes_have_independent_streams() {
        // Turning loss on must not move the outage schedule.
        let mut with_loss = FaultConfig {
            outage_rate: 0.1,
            ..FaultConfig::default()
        };
        let without = FaultPlan::generate(with_loss, 200, 4).unwrap();
        with_loss.loss_rate = 0.5;
        let with = FaultPlan::generate(with_loss, 200, 4).unwrap();
        for f in 0..200 {
            assert_eq!(without.at(f).outage, with.at(f).outage, "frame {f}");
        }
    }

    #[test]
    fn outage_bursts_last_their_configured_length() {
        let cfg = FaultConfig {
            outage_rate: 0.05,
            outage_frames: 4,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(cfg, 400, 1).unwrap();
        // Every run of set bits has length >= 4 (back-to-back episodes may
        // concatenate to longer runs, never shorter).
        let mut run = 0usize;
        let mut runs = Vec::new();
        for f in 0..=400 {
            if f < 400 && plan.at(f).outage_for(0) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty(), "no bursts generated");
        assert!(runs.iter().all(|&r| r >= 4), "short burst in {runs:?}");
    }

    #[test]
    fn blackout_window_hits_every_user() {
        let cfg = FaultConfig {
            blackout_start: 10,
            blackout_frames: 5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(cfg, 30, 3).unwrap();
        for f in 0..30 {
            let expect = (10..15).contains(&f);
            for u in 0..3 {
                assert_eq!(plan.at(f).outage_for(u), expect, "frame {f} user {u}");
            }
        }
        // Recovery: nothing after the window.
        assert!(plan.at(20).is_quiet());
    }

    #[test]
    fn quiet_plan_and_out_of_range_queries() {
        let plan = FaultPlan::quiet();
        assert!(plan.is_quiet());
        assert!(plan.at(1_000).is_quiet());
        assert_eq!(plan.n_frames(), 0);
        let generated = FaultPlan::generate(FaultConfig::default(), 50, 4).unwrap();
        assert!(generated.is_quiet());
        assert!(generated.at(999).is_quiet());
    }

    #[test]
    fn spec_parsing_round_trips() {
        let cfg = FaultConfig::from_spec(
            "seed=7, outage=0.02:6, blockage=0.05:4, stall=0.01:3, loss=0.03, decode=0.02, blackout=30:10",
        )
        .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.outage_rate, 0.02);
        assert_eq!(cfg.outage_frames, 6);
        assert_eq!(cfg.blockage_rate, 0.05);
        assert_eq!(cfg.blockage_frames, 4);
        assert_eq!(cfg.ap_stall_rate, 0.01);
        assert_eq!(cfg.ap_stall_frames, 3);
        assert_eq!(cfg.loss_rate, 0.03);
        assert_eq!(cfg.decode_overrun_rate, 0.02);
        assert_eq!(cfg.blackout_start, 30);
        assert_eq!(cfg.blackout_frames, 10);
        assert!(FaultConfig::from_spec("").unwrap().is_quiet());
    }

    #[test]
    fn spec_errors_are_loud() {
        for bad in [
            "outage",       // no '='
            "outage=x",     // bad number
            "outage=0.5:x", // bad count
            "nosuch=1",     // unknown key
            "loss=0.5:3",   // loss takes no duration
            "decode=0.1:2", // decode takes no duration
            "blackout=5",   // blackout needs start:frames
            "seed=1:2",     // seed takes a single integer
            "outage=1.5",   // rate out of range
            "outage=-0.1",  // rate out of range
            "outage=inf",   // non-finite rate
            "outage=NaN",   // non-finite rate
            "outage=0.5:0", // zero-length episodes
            // Duplicate keys must fail loudly, not last-write-win: the
            // second value would silently decide the whole stress run.
            "outage=0.5,outage=0.1",
            "seed=1,seed=2",
            "loss=0.1, loss=0.1", // even identical duplicates are errors
        ] {
            assert!(
                matches!(
                    FaultConfig::from_spec(bad),
                    Err(NetError::InvalidFaultSpec(_)) | Err(NetError::InvalidFaultConfig(_))
                ),
                "spec '{bad}' should fail"
            );
        }
    }

    #[test]
    fn large_populations_are_supported() {
        // The historical u64 masks capped plans at 64 users; the growable
        // BitSet removes the ceiling. A campus-scale population generates,
        // the blackout window covers every user, and the schedule for the
        // first 64 users is unchanged by the extra population (each user
        // owns its own RNG stream).
        let cfg = FaultConfig {
            outage_rate: 0.1,
            outage_frames: 2,
            blackout_start: 0,
            blackout_frames: 1,
            ..FaultConfig::default()
        };
        let big = FaultPlan::generate(cfg, 40, 500).unwrap();
        assert!(big.at(0).outage_for(499), "blackout must hit user 499");
        assert!(!big.at(0).outage_for(500), "user 500 does not exist");
        let small = FaultPlan::generate(cfg, 40, 64).unwrap();
        for f in 0..40 {
            for u in 0..64 {
                assert_eq!(
                    small.at(f).outage_for(u),
                    big.at(f).outage_for(u),
                    "frame {f} user {u}: schedule must not depend on population"
                );
            }
        }
    }

    #[test]
    fn config_json_round_trip() {
        use volcast_util::json::{FromJson, ToJson};
        let cfg = stress();
        let back = FaultConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }
}

//! Simulation time: integer nanoseconds since simulation start.

use std::ops::{Add, AddAssign, Sub};
use volcast_util::json::{FromJson, JsonError, JsonValue, ToJson};

/// A point in simulated time. Integer nanoseconds: exact, total-ordered,
/// overflow-checked in debug builds; no floating-point drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

// Serializes transparently as its nanosecond count, like a serde newtype.
impl ToJson for SimTime {
    fn to_json(&self) -> JsonValue {
        self.0.to_json()
    }
}

impl FromJson for SimTime {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        u64::from_json(v).map(SimTime)
    }
}

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From seconds (fractional allowed).
    pub fn from_secs(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: f64) -> SimTime {
        Self::from_secs(ms / 1e3)
    }

    /// From microseconds.
    pub fn from_micros(us: f64) -> SimTime {
        Self::from_secs(us / 1e6)
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_millis(33.333).as_millis() - 33.333).abs() < 1e-6);
        assert_eq!(SimTime::from_micros(1.0).0, 1_000);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.5);
        assert_eq!((a + b).as_secs(), 3.5);
        assert_eq!((b - a).as_secs(), 1.5);
        assert!(a < b);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += a;
        assert_eq!(c.as_secs(), 2.0);
    }

    #[test]
    #[should_panic]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}

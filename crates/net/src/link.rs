//! Per-user link state tracking.
//!
//! The cross-layer rate adaptation (paper §4.3) combines PHY indicators —
//! RSS trend, blockage — with application indicators. [`LinkState`] is the
//! PHY half: it tracks RSS with an EWMA, estimates the short-term trend,
//! and flags outages.

/// EWMA-tracked link quality for one station.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkState {
    /// Smoothed RSS (dBm); `None` until the first sample.
    ewma_rss: Option<f64>,
    /// Previous smoothed value (for the trend).
    prev_ewma: Option<f64>,
    /// EWMA weight of the newest sample.
    pub alpha: f64,
    /// Consecutive samples below the outage threshold.
    outage_run: usize,
    /// RSS below which a sample counts toward an outage (dBm).
    pub outage_threshold_dbm: f64,
    /// Samples observed.
    samples: u64,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            ewma_rss: None,
            prev_ewma: None,
            alpha: 0.3,
            outage_run: 0,
            // Below DMG MCS1 sensitivity: the link cannot carry data.
            outage_threshold_dbm: -68.0,
            samples: 0,
        }
    }
}

impl LinkState {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the tracker to its pristine state while keeping the tuned
    /// `alpha` / threshold knobs — the reuse idiom for pooled per-user
    /// trackers that are re-bound to a new link at an epoch boundary.
    pub fn reset(&mut self) {
        self.ewma_rss = None;
        self.prev_ewma = None;
        self.outage_run = 0;
        self.samples = 0;
    }

    /// Feeds one RSS sample (dBm).
    pub fn observe(&mut self, rss_dbm: f64) {
        self.prev_ewma = self.ewma_rss;
        self.ewma_rss = Some(match self.ewma_rss {
            None => rss_dbm,
            Some(prev) => prev * (1.0 - self.alpha) + rss_dbm * self.alpha,
        });
        if rss_dbm < self.outage_threshold_dbm {
            self.outage_run += 1;
        } else {
            self.outage_run = 0;
        }
        self.samples += 1;
    }

    /// Smoothed RSS; `None` before the first sample.
    pub fn rss_dbm(&self) -> Option<f64> {
        self.ewma_rss
    }

    /// Short-term RSS trend in dB per sample (positive = improving).
    pub fn trend_db(&self) -> f64 {
        match (self.prev_ewma, self.ewma_rss) {
            (Some(p), Some(c)) => c - p,
            _ => 0.0,
        }
    }

    /// `true` after `k` consecutive below-threshold samples.
    pub fn in_outage(&self, k: usize) -> bool {
        self.outage_run >= k.max(1)
    }

    /// Samples observed so far.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Predicts RSS `horizon` samples ahead by linear extrapolation of the
    /// EWMA trend, floored to physical plausibility.
    pub fn predicted_rss_dbm(&self, horizon: usize) -> Option<f64> {
        self.ewma_rss
            .map(|r| (r + self.trend_db() * horizon as f64).clamp(-100.0, -20.0))
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(LinkState {
    ewma_rss,
    prev_ewma,
    alpha,
    outage_run,
    outage_threshold_dbm,
    samples
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut l = LinkState::new();
        assert_eq!(l.rss_dbm(), None);
        l.observe(-55.0);
        assert_eq!(l.rss_dbm(), Some(-55.0));
        assert_eq!(l.trend_db(), 0.0);
        assert_eq!(l.sample_count(), 1);
    }

    #[test]
    fn reset_restores_pristine_tracking_but_keeps_knobs() {
        let mut l = LinkState {
            alpha: 0.5,
            outage_threshold_dbm: -60.0,
            ..LinkState::new()
        };
        l.observe(-70.0);
        l.observe(-72.0);
        assert!(l.in_outage(2));
        l.reset();
        assert_eq!(l.rss_dbm(), None);
        assert_eq!(l.trend_db(), 0.0);
        assert_eq!(l.sample_count(), 0);
        assert!(!l.in_outage(1));
        assert_eq!(l.alpha, 0.5);
        assert_eq!(l.outage_threshold_dbm, -60.0);
    }

    #[test]
    fn ewma_smooths_jumps() {
        let mut l = LinkState::new();
        l.observe(-55.0);
        l.observe(-65.0);
        let r = l.rss_dbm().unwrap();
        assert!(r > -65.0 && r < -55.0, "{r}");
        // alpha = 0.3 -> -58.
        assert!((r + 58.0).abs() < 1e-9);
    }

    #[test]
    fn trend_tracks_direction() {
        let mut l = LinkState::new();
        for rss in [-60.0, -59.0, -58.0, -57.0] {
            l.observe(rss);
        }
        assert!(l.trend_db() > 0.0);
        let mut d = LinkState::new();
        for rss in [-55.0, -58.0, -61.0] {
            d.observe(rss);
        }
        assert!(d.trend_db() < 0.0);
    }

    #[test]
    fn outage_detection_needs_consecutive_samples() {
        let mut l = LinkState::new();
        l.observe(-70.0);
        assert!(!l.in_outage(2));
        l.observe(-72.0);
        assert!(l.in_outage(2));
        l.observe(-60.0); // recovery resets the run
        assert!(!l.in_outage(1));
    }

    #[test]
    fn prediction_extrapolates_trend() {
        let mut l = LinkState::new();
        for rss in [-60.0, -62.0, -64.0] {
            l.observe(rss);
        }
        let now = l.rss_dbm().unwrap();
        let future = l.predicted_rss_dbm(5).unwrap();
        assert!(future < now, "worsening trend must predict lower RSS");
        // Clamped to plausibility.
        let mut deep = LinkState::new();
        deep.observe(-99.0);
        deep.observe(-99.5);
        assert!(deep.predicted_rss_dbm(100).unwrap() >= -100.0);
    }

    #[test]
    fn prediction_none_before_samples() {
        assert_eq!(LinkState::new().predicted_rss_dbm(3), None);
    }

    #[test]
    fn zero_samples_is_fully_quiescent() {
        let l = LinkState::new();
        assert_eq!(l.sample_count(), 0);
        assert_eq!(l.rss_dbm(), None);
        assert_eq!(l.trend_db(), 0.0);
        // No samples -> no outage, whatever the window (including the
        // degenerate k = 0, which in_outage clamps to 1).
        assert!(!l.in_outage(0));
        assert!(!l.in_outage(1));
        assert!(!l.in_outage(100));
        assert_eq!(l.predicted_rss_dbm(0), None);
    }

    #[test]
    fn single_sample_has_flat_trend_and_flat_prediction() {
        let mut l = LinkState::new();
        l.observe(-50.0);
        // One sample cannot define a trend; prediction at any horizon is
        // the sample itself.
        assert_eq!(l.trend_db(), 0.0);
        assert_eq!(l.predicted_rss_dbm(0), Some(-50.0));
        assert_eq!(l.predicted_rss_dbm(50), Some(-50.0));
        // A single below-threshold sample: outage with window 1 (and the
        // clamped window 0), not with larger windows.
        let mut deep = LinkState::new();
        deep.observe(-90.0);
        assert!(deep.in_outage(1));
        assert!(deep.in_outage(0));
        assert!(!deep.in_outage(2));
    }

    #[test]
    fn monotone_trend_saturates_at_the_clamp() {
        // A relentless downward trend extrapolates through the floor; the
        // prediction must saturate at -100 dBm, not run off to -inf.
        let mut down = LinkState::new();
        for i in 0..20 {
            down.observe(-60.0 - 2.0 * i as f64);
        }
        assert!(down.trend_db() < 0.0);
        assert_eq!(down.predicted_rss_dbm(1_000), Some(-100.0));
        // And symmetrically upward: saturates at -20 dBm.
        let mut up = LinkState::new();
        for i in 0..20 {
            up.observe(-80.0 + 2.0 * i as f64);
        }
        assert!(up.trend_db() > 0.0);
        assert_eq!(up.predicted_rss_dbm(1_000), Some(-20.0));
        // The clamp applies to the prediction only, never the tracker.
        assert!(down.rss_dbm().unwrap() < -60.0);
    }
}

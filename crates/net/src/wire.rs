//! The volcast wire format: a streamable container for encoded octree
//! frames (ROADMAP item 2).
//!
//! A serving story needs more than in-memory `EncodedCloud`s: clients join
//! mid-stream, links truncate transfers, and a hostile peer can hand the
//! parser anything. This module defines a **versioned, length-prefixed
//! container** in the spirit of Universal Volumetric's `.uvol`/manifest
//! split and DASH segmentation:
//!
//! ```text
//! stream   := "VWSM" version:u16 flags:u16 manifest_len:u32 manifest chunks
//! manifest := depth:u8 color_bits:u8 gop_size:u32 frame_count:u32
//!             [layers_per_frame:u8 if flags & LAYERED]
//!             frame_count * entry
//! entry    := offset:u64 len:u32 checksum:u64     # offset into chunk area
//! chunk    := "VCHK" frame_idx:u32 payload_len:u32 checksum:u64 payload
//! ```
//!
//! All integers are little-endian. The manifest is self-contained (chunk
//! offsets are relative to the end of the manifest), so a client that has
//! only the stream head can plan fetches; each chunk repeats its frame
//! index, length, and FNV-1a checksum, so a client that has only a chunk
//! can validate it. The only defined `flags` bit is
//! [`STREAM_FLAG_LAYERED`] (progressive layered frames: each video frame
//! is `layers_per_frame` consecutive chunks, base layer first); all other
//! bits must be zero, so pre-layering readers reject layered streams
//! cleanly instead of misreading them.
//!
//! **Every read path is bounds-checked and returns
//! `Result<_, WireError>`.** Truncated, oversized, version-mismatched, or
//! bit-flipped input must never panic — the `wire_fuzz` smoke test in
//! `tests/wire.rs` feeds thousands of mutated streams through
//! [`StreamReader::parse`] to hold that line.
//!
//! Three access styles:
//!
//! - [`StreamWriter`]: builds a stream from per-frame payloads,
//! - [`StreamReader`]: zero-copy random access over a complete byte slice
//!   (the server's in-memory source),
//! - [`WireCursor`]: incremental parsing of a byte stream that arrives in
//!   arbitrary slices (the client side of a connection) — feed bytes, poll
//!   events.
//!
//! ```
//! use volcast_net::wire::{StreamWriter, StreamReader};
//!
//! let mut w = StreamWriter::new(8, 6, 30);
//! w.push_frame(b"frame-0");
//! w.push_frame(b"frame-1");
//! let bytes = w.finish();
//! let r = StreamReader::parse(&bytes).unwrap();
//! assert_eq!(r.manifest().frame_count, 2);
//! assert_eq!(r.chunk_payload(1).unwrap(), b"frame-1");
//! // Truncation is an error, not a panic.
//! assert!(StreamReader::parse(&bytes[..bytes.len() - 1]).is_err());
//! ```

use std::fmt;

use volcast_util::hash::fnv1a;

/// Stream magic: the first four bytes of every volcast wire stream.
pub const STREAM_MAGIC: [u8; 4] = *b"VWSM";
/// Chunk magic: the first four bytes of every payload chunk.
pub const CHUNK_MAGIC: [u8; 4] = *b"VCHK";
/// The wire format version this build writes and accepts.
pub const WIRE_VERSION: u16 = 1;
/// Stream flag: the payload chunks are **layered** — each video frame is
/// `layers_per_frame` consecutive chunks (base layer first, then
/// enhancements), and the manifest carries the extra `layers_per_frame`
/// byte. Readers that predate this flag reject such streams at the flags
/// check rather than misreading chunk indices as frame numbers.
pub const STREAM_FLAG_LAYERED: u16 = 0x1;

/// Fixed stream header size: magic + version + flags + manifest_len.
pub const STREAM_HEADER_LEN: usize = 4 + 2 + 2 + 4;
/// Fixed per-chunk header size: magic + frame_idx + payload_len + checksum.
pub const CHUNK_HEADER_LEN: usize = 4 + 4 + 4 + 8;
/// Fixed manifest prefix: depth + color_bits + gop_size + frame_count.
const MANIFEST_FIXED_LEN: usize = 1 + 1 + 4 + 4;
/// Serialized size of one manifest chunk entry.
const ENTRY_LEN: usize = 8 + 4 + 8;

/// Upper bound on `frame_count` a parser will accept. Hostile manifests
/// must not be able to drive a multi-gigabyte allocation from a 14-byte
/// header; at 30 FPS this cap is still over nine hours of video.
pub const MAX_FRAMES: u32 = 1 << 20;
/// Upper bound on a single chunk payload (64 MiB). Real encoded frames at
/// paper scale are ~100 KiB; anything near this cap is corrupt or hostile.
pub const MAX_CHUNK_LEN: u32 = 1 << 26;

/// Why a wire stream failed to parse or validate.
///
/// Every variant is a *graceful* outcome: parsers return these instead of
/// panicking, so a server can drop one bad connection (or one bad file)
/// and keep serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ends before a required field or payload.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required to finish the read.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The stream or a chunk does not start with its magic bytes.
    BadMagic {
        /// Which magic was expected ("stream" or "chunk").
        what: &'static str,
    },
    /// The stream's version is not one this build understands.
    VersionMismatch {
        /// Version found in the header.
        got: u16,
        /// Version this build speaks.
        expected: u16,
    },
    /// A declared size exceeds the format's hard caps.
    Oversized {
        /// Which field was oversized.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The cap it violates.
        max: u64,
    },
    /// Fields are internally inconsistent (offsets out of order, entry
    /// table not matching `manifest_len`, nonzero reserved flags, ...).
    Inconsistent(&'static str),
    /// A chunk's payload bytes do not hash to the declared checksum.
    ChecksumMismatch {
        /// The frame whose chunk failed validation.
        frame: u32,
    },
    /// A chunk header's frame index, length, or checksum disagrees with
    /// the manifest entry for that slot.
    ManifestMismatch {
        /// The frame slot that disagreed.
        frame: u32,
    },
    /// A frame index beyond the manifest's `frame_count` was requested.
    NoSuchFrame {
        /// The requested frame.
        frame: u32,
        /// Frames in the stream.
        frame_count: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            WireError::BadMagic { what } => write!(f, "bad {what} magic"),
            WireError::VersionMismatch { got, expected } => {
                write!(
                    f,
                    "wire version {got} not supported (this build speaks {expected})"
                )
            }
            WireError::Oversized { what, got, max } => {
                write!(f, "{what} {got} exceeds wire cap {max}")
            }
            WireError::Inconsistent(why) => write!(f, "inconsistent stream: {why}"),
            WireError::ChecksumMismatch { frame } => {
                write!(f, "chunk checksum mismatch at frame {frame}")
            }
            WireError::ManifestMismatch { frame } => {
                write!(f, "chunk header disagrees with manifest at frame {frame}")
            }
            WireError::NoSuchFrame { frame, frame_count } => {
                write!(f, "frame {frame} out of range (stream has {frame_count})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One frame's location in the chunk area, as recorded by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk (including its header) from the start of
    /// the chunk area (= end of the manifest).
    pub offset: u64,
    /// Payload length in bytes (the chunk on the wire additionally carries
    /// [`CHUNK_HEADER_LEN`] bytes of header).
    pub len: u32,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// The stream manifest: codec parameters plus the per-frame chunk table.
///
/// Everything a client needs to plan playback before any payload arrives:
/// how deep the octrees are, how frames group into GOPs, how many frames
/// exist, and where each frame's chunk lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamManifest {
    /// Octree codec depth (bits per axis) of the payload bitstreams.
    pub depth: u8,
    /// Color quantization (bits per channel) of the payload bitstreams.
    pub color_bits: u8,
    /// Frames per group-of-pictures (scheduling granularity).
    pub gop_size: u32,
    /// Number of chunks in the stream. For a legacy stream this is the
    /// frame count; for a layered stream each video frame occupies
    /// `layers_per_frame` consecutive chunks.
    pub frame_count: u32,
    /// Layer bitstreams per video frame: 1 for a legacy single-stream
    /// container, 2+ when [`STREAM_FLAG_LAYERED`] is set (base layer, then
    /// enhancements, stored as consecutive chunks).
    pub layers_per_frame: u8,
    /// Per-frame chunk locations, `frame_count` entries in frame order.
    pub entries: Vec<ChunkEntry>,
}

impl StreamManifest {
    /// `true` when the stream carries layered frames (and its header has
    /// [`STREAM_FLAG_LAYERED`] set).
    pub fn is_layered(&self) -> bool {
        self.layers_per_frame > 1
    }

    /// Number of *video* frames: chunk slots divided by layers per frame.
    pub fn video_frame_count(&self) -> u32 {
        self.frame_count / self.layers_per_frame.max(1) as u32
    }

    /// Chunk slot holding layer `layer` of video frame `frame`.
    pub fn chunk_index(&self, frame: u32, layer: u8) -> u32 {
        frame * self.layers_per_frame.max(1) as u32 + layer as u32
    }

    /// Serialized size of this manifest in bytes.
    pub fn encoded_len(&self) -> usize {
        MANIFEST_FIXED_LEN + if self.is_layered() { 1 } else { 0 } + self.entries.len() * ENTRY_LEN
    }

    /// Serializes the manifest body (the bytes `manifest_len` brackets).
    /// The `layers_per_frame` byte is present exactly when the stream
    /// header carries [`STREAM_FLAG_LAYERED`] (i.e. [`Self::is_layered`]);
    /// legacy manifests are byte-identical to before the flag existed.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.depth);
        out.push(self.color_bits);
        out.extend_from_slice(&self.gop_size.to_le_bytes());
        out.extend_from_slice(&self.frame_count.to_le_bytes());
        if self.is_layered() {
            out.push(self.layers_per_frame);
        }
        for e in &self.entries {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.checksum.to_le_bytes());
        }
    }

    /// Parses a legacy (flagless) manifest body — see
    /// [`Self::decode_with_flags`].
    pub fn decode(bytes: &[u8]) -> Result<StreamManifest, WireError> {
        Self::decode_with_flags(bytes, 0)
    }

    /// Parses a manifest body under the stream header's `flags`. `bytes`
    /// must be exactly the manifest slice (as delimited by the stream
    /// header's `manifest_len`).
    pub fn decode_with_flags(bytes: &[u8], flags: u16) -> Result<StreamManifest, WireError> {
        let mut r = Reader::new(bytes);
        let depth = r.u8("manifest depth")?;
        let color_bits = r.u8("manifest color_bits")?;
        let gop_size = r.u32("manifest gop_size")?;
        let frame_count = r.u32("manifest frame_count")?;
        if frame_count > MAX_FRAMES {
            return Err(WireError::Oversized {
                what: "frame_count",
                got: frame_count as u64,
                max: MAX_FRAMES as u64,
            });
        }
        let layers_per_frame = if flags & STREAM_FLAG_LAYERED != 0 {
            let l = r.u8("manifest layers_per_frame")?;
            if l < 2 {
                return Err(WireError::Inconsistent(
                    "layered stream must carry at least 2 layers per frame",
                ));
            }
            if frame_count % l as u32 != 0 {
                return Err(WireError::Inconsistent(
                    "chunk count not a multiple of layers_per_frame",
                ));
            }
            l
        } else {
            1
        };
        let table = frame_count as usize * ENTRY_LEN;
        if r.remaining() != table {
            // The entry table must account for every remaining byte: a
            // manifest_len that disagrees with frame_count is corrupt.
            return Err(WireError::Inconsistent(
                "manifest length does not match frame_count",
            ));
        }
        let mut entries = Vec::with_capacity(frame_count as usize);
        let mut expected_offset = 0u64;
        for i in 0..frame_count {
            let offset = r.u64("manifest entry offset")?;
            let len = r.u32("manifest entry len")?;
            let checksum = r.u64("manifest entry checksum")?;
            if len > MAX_CHUNK_LEN {
                return Err(WireError::Oversized {
                    what: "chunk len",
                    got: len as u64,
                    max: MAX_CHUNK_LEN as u64,
                });
            }
            if offset != expected_offset {
                // Chunks are written back to back in frame order; any gap
                // or overlap means the table and the chunk area disagree.
                return Err(WireError::Inconsistent("chunk offsets not contiguous"));
            }
            expected_offset = expected_offset
                .checked_add(CHUNK_HEADER_LEN as u64 + len as u64)
                .ok_or(WireError::Inconsistent("chunk offsets overflow"))?;
            entries.push(ChunkEntry {
                offset,
                len,
                checksum,
            });
            let _ = i;
        }
        Ok(StreamManifest {
            depth,
            color_bits,
            gop_size,
            frame_count,
            layers_per_frame,
            entries,
        })
    }

    /// Total size of the chunk area the manifest describes.
    pub fn chunk_area_len(&self) -> u64 {
        self.entries
            .last()
            .map(|e| e.offset + CHUNK_HEADER_LEN as u64 + e.len as u64)
            .unwrap_or(0)
    }
}

/// Bounds-checked little-endian reads over a byte slice. Every accessor
/// returns [`WireError::Truncated`] instead of slicing out of range — this
/// is the only way wire parsing touches raw bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Builds a wire stream from per-frame payloads.
///
/// Payload bytes are owned until [`StreamWriter::finish`] assembles the
/// final stream (header, manifest with offsets/checksums, then chunks back
/// to back).
#[derive(Debug, Clone)]
pub struct StreamWriter {
    depth: u8,
    color_bits: u8,
    gop_size: u32,
    layers_per_frame: u8,
    frames: Vec<Vec<u8>>,
}

impl StreamWriter {
    /// Starts a stream with the given codec parameters.
    pub fn new(depth: u8, color_bits: u8, gop_size: u32) -> StreamWriter {
        StreamWriter {
            depth,
            color_bits,
            gop_size,
            layers_per_frame: 1,
            frames: Vec::new(),
        }
    }

    /// Starts a **layered** stream: every video frame is
    /// `layers_per_frame` consecutive chunks (base first). The finished
    /// stream carries [`STREAM_FLAG_LAYERED`].
    ///
    /// # Panics
    /// If `layers_per_frame < 2` (a 1-layer stream is just a legacy
    /// stream — use [`StreamWriter::new`]).
    pub fn new_layered(
        depth: u8,
        color_bits: u8,
        gop_size: u32,
        layers_per_frame: u8,
    ) -> StreamWriter {
        assert!(
            layers_per_frame >= 2,
            "a layered stream needs at least 2 layers per frame"
        );
        StreamWriter {
            depth,
            color_bits,
            gop_size,
            layers_per_frame,
            frames: Vec::new(),
        }
    }

    /// Appends one video frame's layer payloads (base first). The chunk
    /// count must match the writer's `layers_per_frame`.
    ///
    /// # Panics
    /// If `layers.len() != layers_per_frame` (writer-side misuse).
    pub fn push_layered_frame(&mut self, layers: &[impl AsRef<[u8]>]) {
        assert_eq!(
            layers.len(),
            self.layers_per_frame as usize,
            "layer count must match layers_per_frame"
        );
        for l in layers {
            self.push_frame(l.as_ref());
        }
    }

    /// Appends one frame's payload (an encoded octree bitstream).
    ///
    /// # Panics
    /// If the stream already holds [`MAX_FRAMES`] frames or the payload
    /// exceeds [`MAX_CHUNK_LEN`] — writer-side misuse, not wire input.
    pub fn push_frame(&mut self, payload: &[u8]) {
        assert!(
            (self.frames.len() as u32) < MAX_FRAMES,
            "stream frame cap exceeded"
        );
        assert!(
            payload.len() as u64 <= MAX_CHUNK_LEN as u64,
            "chunk payload exceeds MAX_CHUNK_LEN"
        );
        self.frames.push(payload.to_vec());
    }

    /// Number of frames pushed so far.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The manifest the finished stream will carry.
    pub fn manifest(&self) -> StreamManifest {
        let mut entries = Vec::with_capacity(self.frames.len());
        let mut offset = 0u64;
        for payload in &self.frames {
            entries.push(ChunkEntry {
                offset,
                len: payload.len() as u32,
                checksum: fnv1a(payload),
            });
            offset += (CHUNK_HEADER_LEN + payload.len()) as u64;
        }
        StreamManifest {
            depth: self.depth,
            color_bits: self.color_bits,
            gop_size: self.gop_size,
            frame_count: self.frames.len() as u32,
            layers_per_frame: self.layers_per_frame,
            entries,
        }
    }

    /// Assembles the complete stream bytes.
    ///
    /// # Panics
    /// For a layered writer, if the pushed chunk count is not a whole
    /// number of video frames.
    pub fn finish(self) -> Vec<u8> {
        assert_eq!(
            self.frames.len() % self.layers_per_frame as usize,
            0,
            "layered stream ended mid-frame"
        );
        let manifest = self.manifest();
        let flags = if manifest.is_layered() {
            STREAM_FLAG_LAYERED
        } else {
            0
        };
        let manifest_len = manifest.encoded_len();
        let total = STREAM_HEADER_LEN as u64 + manifest_len as u64 + manifest.chunk_area_len();
        let mut out = Vec::with_capacity(total as usize);
        out.extend_from_slice(&STREAM_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&(manifest_len as u32).to_le_bytes());
        manifest.encode_into(&mut out);
        for (i, payload) in self.frames.iter().enumerate() {
            out.extend_from_slice(&CHUNK_MAGIC);
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len() as u64, total);
        out
    }
}

/// Zero-copy random access over a complete in-memory wire stream.
///
/// [`StreamReader::parse`] validates the header and manifest up front;
/// chunk payloads are validated (header cross-check + checksum) on access,
/// so a reader over a stream with one corrupt chunk still serves the rest.
#[derive(Debug)]
pub struct StreamReader<'a> {
    manifest: StreamManifest,
    /// The chunk area (everything after the manifest).
    chunks: &'a [u8],
}

impl<'a> StreamReader<'a> {
    /// Parses the stream head (header + manifest) and brackets the chunk
    /// area. Fails on truncated, oversized, or version-mismatched input —
    /// never panics.
    pub fn parse(bytes: &'a [u8]) -> Result<StreamReader<'a>, WireError> {
        let mut r = Reader::new(bytes);
        if r.take(4, "stream magic")? != STREAM_MAGIC {
            return Err(WireError::BadMagic { what: "stream" });
        }
        let version = r.u16("stream version")?;
        if version != WIRE_VERSION {
            return Err(WireError::VersionMismatch {
                got: version,
                expected: WIRE_VERSION,
            });
        }
        let flags = r.u16("stream flags")?;
        if flags & !STREAM_FLAG_LAYERED != 0 {
            return Err(WireError::Inconsistent("unknown stream flags"));
        }
        let manifest_len = r.u32("manifest_len")? as usize;
        let manifest_bytes = r.take(manifest_len, "manifest")?;
        let manifest = StreamManifest::decode_with_flags(manifest_bytes, flags)?;
        let chunks = &bytes[STREAM_HEADER_LEN + manifest_len..];
        if (chunks.len() as u64) < manifest.chunk_area_len() {
            return Err(WireError::Truncated {
                what: "chunk area",
                need: manifest.chunk_area_len() as usize,
                have: chunks.len(),
            });
        }
        if chunks.len() as u64 > manifest.chunk_area_len() {
            return Err(WireError::Inconsistent("trailing bytes after chunk area"));
        }
        Ok(StreamReader { manifest, chunks })
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &StreamManifest {
        &self.manifest
    }

    /// The raw bytes of frame `i`'s chunk (header + payload) — what a
    /// server enqueues on a client's connection.
    pub fn chunk_bytes(&self, frame: u32) -> Result<&'a [u8], WireError> {
        let e = self.entry(frame)?;
        // Entry table offsets were validated contiguous and in range at
        // parse time, so this slice cannot overrun; recheck anyway to keep
        // the no-panic contract independent of parse-time invariants.
        let start = e.offset as usize;
        let len = CHUNK_HEADER_LEN + e.len as usize;
        if start + len > self.chunks.len() {
            return Err(WireError::Truncated {
                what: "chunk",
                need: start + len,
                have: self.chunks.len(),
            });
        }
        Ok(&self.chunks[start..start + len])
    }

    /// The validated payload of frame `i`: checks the chunk header against
    /// the manifest entry and the payload bytes against the checksum.
    pub fn chunk_payload(&self, frame: u32) -> Result<&'a [u8], WireError> {
        let e = self.entry(frame)?;
        let bytes = self.chunk_bytes(frame)?;
        let mut r = Reader::new(bytes);
        if r.take(4, "chunk magic")? != CHUNK_MAGIC {
            return Err(WireError::BadMagic { what: "chunk" });
        }
        let idx = r.u32("chunk frame_idx")?;
        let len = r.u32("chunk payload_len")?;
        let checksum = r.u64("chunk checksum")?;
        if idx != frame || len != e.len || checksum != e.checksum {
            return Err(WireError::ManifestMismatch { frame });
        }
        let payload = r.take(len as usize, "chunk payload")?;
        if fnv1a(payload) != checksum {
            return Err(WireError::ChecksumMismatch { frame });
        }
        Ok(payload)
    }

    /// Validates every chunk in the stream (a server does this once at
    /// load time so per-connection sends can skip re-hashing).
    pub fn validate_all(&self) -> Result<(), WireError> {
        for i in 0..self.manifest.frame_count {
            self.chunk_payload(i)?;
        }
        Ok(())
    }

    fn entry(&self, frame: u32) -> Result<&ChunkEntry, WireError> {
        self.manifest
            .entries
            .get(frame as usize)
            .ok_or(WireError::NoSuchFrame {
                frame,
                frame_count: self.manifest.frame_count,
            })
    }
}

/// An event produced by the incremental [`WireCursor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// The stream head parsed: codec parameters and chunk table are known.
    Manifest(StreamManifest),
    /// One complete, checksum-validated chunk arrived.
    Chunk {
        /// The frame index the chunk carries.
        frame: u32,
        /// The validated payload bytes.
        payload: Vec<u8>,
    },
}

/// Incremental wire parser for bytes that arrive in arbitrary slices —
/// the receive side of a connection.
///
/// Feed bytes with [`WireCursor::feed`], then drain events with
/// [`WireCursor::poll`]. The cursor buffers only the unparsed tail, so a
/// client streaming a multi-gigabyte stream holds one chunk at a time. A
/// malformed prefix puts the cursor into a terminal error state: all
/// further polls return the same error (a transport should drop the
/// connection).
#[derive(Debug)]
pub struct WireCursor {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by parsed events.
    consumed: usize,
    manifest: Option<StreamManifest>,
    next_frame: u32,
    failed: Option<WireError>,
}

impl Default for WireCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl WireCursor {
    /// A cursor expecting the start of a stream.
    pub fn new() -> WireCursor {
        WireCursor {
            buf: Vec::new(),
            consumed: 0,
            manifest: None,
            next_frame: 0,
            failed: None,
        }
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix so the buffer
        // tracks the unparsed tail, not the whole stream.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The manifest, once the stream head has parsed.
    pub fn manifest(&self) -> Option<&StreamManifest> {
        self.manifest.as_ref()
    }

    /// `true` once every chunk the manifest promised has been produced.
    pub fn is_complete(&self) -> bool {
        self.manifest
            .as_ref()
            .is_some_and(|m| self.next_frame >= m.frame_count)
    }

    /// Parses the next event out of the buffered bytes.
    ///
    /// Returns `Ok(None)` when more bytes are needed (or the stream is
    /// complete); `Err` is terminal for this cursor.
    pub fn poll(&mut self) -> Result<Option<WireEvent>, WireError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.try_poll() {
            Ok(ev) => Ok(ev),
            Err(e) => {
                // Incomplete input is not failure — wait for more bytes.
                if let WireError::Truncated { .. } = e {
                    return Ok(None);
                }
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_poll(&mut self) -> Result<Option<WireEvent>, WireError> {
        let tail = &self.buf[self.consumed..];
        if self.manifest.is_none() {
            let mut r = Reader::new(tail);
            if r.take(4, "stream magic")? != STREAM_MAGIC {
                return Err(WireError::BadMagic { what: "stream" });
            }
            let version = r.u16("stream version")?;
            if version != WIRE_VERSION {
                return Err(WireError::VersionMismatch {
                    got: version,
                    expected: WIRE_VERSION,
                });
            }
            let flags = r.u16("stream flags")?;
            if flags & !STREAM_FLAG_LAYERED != 0 {
                return Err(WireError::Inconsistent("unknown stream flags"));
            }
            let manifest_len = r.u32("manifest_len")? as usize;
            if manifest_len > MANIFEST_FIXED_LEN + 1 + MAX_FRAMES as usize * ENTRY_LEN {
                return Err(WireError::Oversized {
                    what: "manifest_len",
                    got: manifest_len as u64,
                    max: (MANIFEST_FIXED_LEN + 1 + MAX_FRAMES as usize * ENTRY_LEN) as u64,
                });
            }
            let manifest_bytes = r.take(manifest_len, "manifest")?;
            let manifest = StreamManifest::decode_with_flags(manifest_bytes, flags)?;
            self.consumed += STREAM_HEADER_LEN + manifest_len;
            self.manifest = Some(manifest.clone());
            return Ok(Some(WireEvent::Manifest(manifest)));
        }
        let manifest = self.manifest.as_ref().unwrap();
        if self.next_frame >= manifest.frame_count {
            if !tail.is_empty() {
                return Err(WireError::Inconsistent("trailing bytes after chunk area"));
            }
            return Ok(None);
        }
        let expect = manifest.entries[self.next_frame as usize];
        let mut r = Reader::new(tail);
        if r.take(4, "chunk magic")? != CHUNK_MAGIC {
            return Err(WireError::BadMagic { what: "chunk" });
        }
        let idx = r.u32("chunk frame_idx")?;
        let len = r.u32("chunk payload_len")?;
        let checksum = r.u64("chunk checksum")?;
        if idx != self.next_frame || len != expect.len || checksum != expect.checksum {
            return Err(WireError::ManifestMismatch {
                frame: self.next_frame,
            });
        }
        let payload = r.take(len as usize, "chunk payload")?.to_vec();
        if fnv1a(&payload) != checksum {
            return Err(WireError::ChecksumMismatch {
                frame: self.next_frame,
            });
        }
        self.consumed += CHUNK_HEADER_LEN + len as usize;
        let frame = self.next_frame;
        self.next_frame += 1;
        Ok(Some(WireEvent::Chunk { frame, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream(frames: usize) -> Vec<u8> {
        let mut w = StreamWriter::new(8, 6, 30);
        for i in 0..frames {
            let payload: Vec<u8> = (0..(40 + 13 * i)).map(|b| (b * 7 + i) as u8).collect();
            w.push_frame(&payload);
        }
        w.finish()
    }

    #[test]
    fn round_trip_reader() {
        let bytes = sample_stream(5);
        let r = StreamReader::parse(&bytes).unwrap();
        assert_eq!(r.manifest().frame_count, 5);
        assert_eq!(r.manifest().depth, 8);
        assert_eq!(r.manifest().gop_size, 30);
        r.validate_all().unwrap();
        for i in 0..5u32 {
            let p = r.chunk_payload(i).unwrap();
            assert_eq!(p.len(), 40 + 13 * i as usize);
        }
        assert!(matches!(
            r.chunk_payload(5),
            Err(WireError::NoSuchFrame { frame: 5, .. })
        ));
    }

    #[test]
    fn empty_stream_round_trips() {
        let bytes = StreamWriter::new(10, 6, 30).finish();
        let r = StreamReader::parse(&bytes).unwrap();
        assert_eq!(r.manifest().frame_count, 0);
        r.validate_all().unwrap();
    }

    #[test]
    fn cursor_handles_byte_at_a_time_delivery() {
        let bytes = sample_stream(3);
        let mut c = WireCursor::new();
        let mut events = Vec::new();
        for b in &bytes {
            c.feed(std::slice::from_ref(b));
            while let Some(ev) = c.poll().unwrap() {
                events.push(ev);
            }
        }
        assert_eq!(events.len(), 4); // manifest + 3 chunks
        assert!(matches!(&events[0], WireEvent::Manifest(m) if m.frame_count == 3));
        assert!(c.is_complete());
        assert_eq!(c.poll().unwrap(), None);
    }

    #[test]
    fn cursor_rejects_tampered_chunk() {
        let mut bytes = sample_stream(2);
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // flip a payload bit in the last chunk
        let mut c = WireCursor::new();
        c.feed(&bytes);
        assert!(matches!(c.poll(), Ok(Some(WireEvent::Manifest(_)))));
        assert!(matches!(
            c.poll(),
            Ok(Some(WireEvent::Chunk { frame: 0, .. }))
        ));
        assert_eq!(c.poll(), Err(WireError::ChecksumMismatch { frame: 1 }));
        // The error is terminal.
        assert_eq!(c.poll(), Err(WireError::ChecksumMismatch { frame: 1 }));
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let bytes = sample_stream(1);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            StreamReader::parse(&bad).unwrap_err(),
            WireError::BadMagic { what: "stream" }
        );
        let mut bad = bytes.clone();
        bad[4] = 99; // version
        assert!(matches!(
            StreamReader::parse(&bad).unwrap_err(),
            WireError::VersionMismatch { got: 99, .. }
        ));
        let mut bad = bytes;
        bad[6] = 1; // reserved flags
        assert!(matches!(
            StreamReader::parse(&bad).unwrap_err(),
            WireError::Inconsistent(_)
        ));
    }

    #[test]
    fn layered_stream_round_trips_with_flagged_manifest() {
        let mut w = StreamWriter::new_layered(10, 6, 30, 3);
        for f in 0..4usize {
            let layers: Vec<Vec<u8>> = (0..3)
                .map(|l| (0..(20 + 5 * l + f)).map(|b| (b * 3 + l) as u8).collect())
                .collect();
            w.push_layered_frame(&layers);
        }
        let bytes = w.finish();
        // The header carries the layered flag.
        assert_eq!(
            u16::from_le_bytes(bytes[6..8].try_into().unwrap()),
            STREAM_FLAG_LAYERED
        );
        let r = StreamReader::parse(&bytes).unwrap();
        let m = r.manifest();
        assert!(m.is_layered());
        assert_eq!(m.layers_per_frame, 3);
        assert_eq!(m.frame_count, 12);
        assert_eq!(m.video_frame_count(), 4);
        r.validate_all().unwrap();
        // Chunk addressing: frame 2, layer 1 lives at slot 7.
        assert_eq!(m.chunk_index(2, 1), 7);
        assert_eq!(r.chunk_payload(m.chunk_index(2, 1)).unwrap().len(), 27);
        // The incremental cursor accepts it too.
        let mut c = WireCursor::new();
        c.feed(&bytes);
        let mut chunks = 0;
        while let Some(ev) = c.poll().unwrap() {
            if matches!(ev, WireEvent::Chunk { .. }) {
                chunks += 1;
            }
        }
        assert_eq!(chunks, 12);
        assert!(c.is_complete());
    }

    #[test]
    fn legacy_streams_are_byte_identical_and_flagless() {
        let bytes = sample_stream(3);
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), 0);
        let r = StreamReader::parse(&bytes).unwrap();
        assert!(!r.manifest().is_layered());
        assert_eq!(r.manifest().layers_per_frame, 1);
        assert_eq!(r.manifest().video_frame_count(), 3);
        // Unknown flag bits (beyond LAYERED) still rejected.
        let mut bad = bytes.clone();
        bad[6] = 0x2;
        assert!(matches!(
            StreamReader::parse(&bad).unwrap_err(),
            WireError::Inconsistent(_)
        ));
    }

    #[test]
    fn layered_manifest_inconsistencies_are_rejected() {
        let mut w = StreamWriter::new_layered(10, 6, 30, 2);
        w.push_layered_frame(&[b"base".as_slice(), b"enh".as_slice()]);
        let good = w.finish();
        // Flip the layered flag off: the reader now sees a manifest one
        // byte too long for its frame_count — inconsistent, not a panic.
        let mut bad = good.clone();
        bad[6] = 0;
        assert!(StreamReader::parse(&bad).is_err());
        // Corrupt layers_per_frame to 0/1: rejected outright.
        for l in [0u8, 1] {
            let mut bad = good.clone();
            // layers byte sits right after the fixed manifest prefix.
            bad[STREAM_HEADER_LEN + MANIFEST_FIXED_LEN] = l;
            assert!(matches!(
                StreamReader::parse(&bad).unwrap_err(),
                WireError::Inconsistent(_)
            ));
        }
    }

    #[test]
    fn hostile_frame_count_cannot_drive_allocation() {
        // A 14-byte head claiming 2^32-1 frames must fail fast on the
        // frame cap, not attempt a gigabyte entry-table allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STREAM_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        let manifest_len = (MANIFEST_FIXED_LEN) as u32;
        bytes.extend_from_slice(&manifest_len.to_le_bytes());
        bytes.push(8); // depth
        bytes.push(6); // color_bits
        bytes.extend_from_slice(&30u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // frame_count
        assert!(matches!(
            StreamReader::parse(&bytes).unwrap_err(),
            WireError::Oversized {
                what: "frame_count",
                ..
            }
        ));
    }

    #[test]
    fn every_truncation_of_the_head_is_graceful() {
        let bytes = sample_stream(2);
        for cut in 0..bytes.len() {
            let r = StreamReader::parse(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} parsed");
        }
    }
}

//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §3 for the index). This library holds
//! the pieces they share: the standard experiment context (user study,
//! channel, codebook), CDF helpers, and table formatting.
//!
//! ```
//! use volcast_bench::{cdf, quantile};
//!
//! let c = cdf(vec![3.0, 1.0, 2.0]);
//! assert_eq!(c.first(), Some(&(1.0, 1.0 / 3.0)));
//! assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 1.0), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use volcast_mmwave::{Channel, Codebook};
use volcast_util::json::ToJson;
use volcast_util::obs;
use volcast_viewport::UserStudy;

/// The standard experiment context used by all figure binaries: the
/// 32-participant synthetic study, the default room/AP channel and the
/// default sector codebook.
pub struct Context {
    /// Synthetic user study (16 PH + 16 HM).
    pub study: UserStudy,
    /// The room + AP channel.
    pub channel: Channel,
    /// Default sector codebook.
    pub codebook: Codebook,
    /// Number of trace frames generated.
    pub frames: usize,
}

impl Context {
    /// Builds the standard context. `frames` trace samples at 30 Hz.
    pub fn standard(seed: u64, frames: usize) -> Context {
        let study = UserStudy::generate(seed, frames);
        let channel = Channel::default_setup();
        let codebook = Codebook::default_for(&channel.array);
        Context {
            study,
            channel,
            codebook,
            frames,
        }
    }
}

/// Dumps the deterministic observability snapshot to
/// `results/obs_<name>.json` when tracing is on; a no-op otherwise.
///
/// Every figure binary calls this last, so running any experiment under
/// `VOLCAST_TRACE=1` leaves a machine-readable record of what the run did
/// (frames simulated, cells encoded, sweeps performed, ...). Only the
/// [`obs::MetricsSnapshot::deterministic`] projection is written — the
/// file is byte-identical across `VOLCAST_THREADS` settings, so CI can
/// diff it against a committed copy. The output directory is the
/// workspace `results/` (anchored via `CARGO_MANIFEST_DIR`, as cargo runs
/// binaries from the package dir); set `VOLCAST_OBS_DIR` to redirect,
/// e.g. to regenerate into a temp dir for comparison.
pub fn dump_obs(name: &str) {
    if !obs::enabled() {
        return;
    }
    let dir = std::env::var("VOLCAST_OBS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/obs_{name}.json");
    let json = obs::snapshot().deterministic().to_json().to_json_string();
    std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("# obs snapshot written to {path}");
}

/// Empirical CDF: returns sorted samples paired with cumulative fractions.
pub fn cdf(mut samples: Vec<f64>) -> Vec<(f64, f64)> {
    samples.retain(|s| s.is_finite());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    samples
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, (i + 1) as f64 / n as f64))
        .collect()
}

/// The CDF value at `x`: fraction of samples <= x.
pub fn cdf_at(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

/// Quantile (`q` in `[0, 1]`) of a sample set.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut s: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if s.is_empty() {
        return f64::NAN;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((s.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    s[idx]
}

/// Mean of a sample set (NaN for empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Prints a CDF as fixed quantile rows (for plotting or eyeballing).
pub fn print_cdf(label: &str, samples: &[f64]) {
    print!("{label:<24}");
    for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        print!(" p{:<2}={:>7.3}", (q * 100.0) as u32, quantile(samples, q));
    }
    println!(" mean={:>7.3}", mean(samples));
}

/// All k-combinations of `0..n` (small n only).
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone() {
        let c = cdf(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c[2], (3.0, 1.0));
    }

    #[test]
    fn cdf_at_values() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(cdf_at(&s, 0.5), 0.0);
        assert_eq!(cdf_at(&s, 2.0), 0.5);
        assert_eq!(cdf_at(&s, 10.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 100.0);
        assert!((quantile(&s, 0.5) - 50.0).abs() <= 1.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(5, 2).len(), 10);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 3).len(), 1);
        assert!(combinations(2, 3).is_empty());
        // Each combination is sorted and unique.
        let c = combinations(6, 2);
        for pair in &c {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn context_builds() {
        let ctx = Context::standard(1, 10);
        assert_eq!(ctx.study.len(), 32);
        assert_eq!(ctx.codebook.len(), 48);
        assert_eq!(ctx.frames, 10);
    }
}

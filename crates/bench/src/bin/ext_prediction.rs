//! Extension C: viewport-prediction accuracy by method and horizon.
//!
//! Compares linear regression, the online MLP and the joint multi-user
//! predictor (proximity + occlusion corrections) on the synthetic traces,
//! at horizons 1, 3, 10 and 30 frames (33 ms .. 1 s at 30 Hz) — the same
//! axes the CoNEXT'19 study the paper cites uses.
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_prediction`

use volcast_bench::Context;
use volcast_geom::SixDof;
use volcast_viewport::predict::evaluate_predictor;
use volcast_viewport::{DeviceClass, JointPredictor, LinearPredictor, MlpPredictor};

fn main() {
    let frames = 300usize;
    let ctx = Context::standard(42, frames);
    let hm = ctx.study.users_of(DeviceClass::Headset);
    let users: Vec<usize> = hm.into_iter().take(6).collect();

    println!("Ext C: 6DoF viewport prediction error (translation m / rotation rad)\n");
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>14}",
        "method", "h=1 (33ms)", "h=3 (100ms)", "h=10 (333ms)", "h=30 (1s)"
    );
    println!("{}", "-".repeat(84));

    // Single-user predictors, averaged over users.
    type PredictorFactory = Box<dyn Fn() -> Box<dyn volcast_viewport::Predictor>>;
    let methods: Vec<(&str, PredictorFactory)> = vec![
        (
            "linear regression",
            Box::new(|| Box::new(LinearPredictor::new(15)) as Box<dyn volcast_viewport::Predictor>),
        ),
        (
            "MLP (online)",
            Box::new(|| Box::new(MlpPredictor::new(3, 7)) as Box<dyn volcast_viewport::Predictor>),
        ),
    ];
    for (name, make) in &methods {
        print!("{name:<22}");
        for h in [1usize, 3, 10, 30] {
            let mut t_sum = 0.0;
            let mut r_sum = 0.0;
            for &u in &users {
                let series: Vec<SixDof> = ctx.study.traces[u]
                    .poses
                    .iter()
                    .map(|p| p.to_sixdof())
                    .collect();
                let mut p = make();
                let (t, r) = evaluate_predictor(p.as_mut(), &series, h);
                t_sum += t;
                r_sum += r;
            }
            print!(
                " {:>6.3}/{:<6.3}",
                t_sum / users.len() as f64,
                r_sum / users.len() as f64
            );
        }
        println!();
    }

    // Joint predictor: evaluated frame-synchronously over all users.
    print!("{:<22}", "joint multi-user");
    for h in [1usize, 3, 10, 30] {
        let mut jp = JointPredictor::new(users.len(), 15, Default::default());
        let mut t_sum = 0.0;
        let mut r_sum = 0.0;
        let mut count = 0usize;
        for f in 0..frames {
            if let Some(pred) = jp.predict_frame(h) {
                if f + h - 1 < frames {
                    for (i, &u) in users.iter().enumerate() {
                        let truth = ctx.study.traces[u].pose(f - 1 + h);
                        t_sum += (pred[i].position - truth.position).norm();
                        r_sum += pred[i].orientation.angle_to(truth.orientation);
                        count += 1;
                    }
                }
            }
            let poses: Vec<_> = users.iter().map(|&u| ctx.study.traces[u].pose(f)).collect();
            jp.observe_frame(&poses);
        }
        print!(
            " {:>6.3}/{:<6.3}",
            t_sum / count as f64,
            r_sum / count as f64
        );
    }
    println!();

    println!("\nexpected shape: errors grow with horizon; LR is strong at short");
    println!("horizons (cm-scale); the joint predictor matches LR when users are");
    println!("apart and improves on it in crowded scenes (see joint tests).");
    volcast_bench::dump_obs("ext_prediction");
}

//! Session-server benchmark (ROADMAP item 2): thousands of simulated
//! clients streaming the wire-format container.
//!
//! Builds a real stream — synthetic-body frames, octree-encoded as one
//! GOP batch, wrapped in the `volcast-net::wire` container — then drives
//! it through `volcast_core::SessionServer`: admission control over the
//! offered load, per-client send queues with backpressure, viewport-trace
//! replay as per-client link quality, and deterministic network faults
//! (mid-chunk disconnects, reorder-free loss, AP stalls, decode
//! overruns). Reports p50/p99 frame-delivery latency into
//! `BENCH_server.json` at the repository root.
//!
//! Everything printed to **stdout** is deterministic and byte-identical
//! at `VOLCAST_THREADS=1` and `=8` (or any other worker count) — the
//! outcome hash is the witness `scripts/verify.sh` diffs. Wall-clock
//! numbers go to **stderr** and the JSON report only.
//!
//! Flags (all optional):
//!
//! ```text
//! cargo run --release -p volcast-bench --bin server -- \
//!     [--clients N] [--cap N] [--frames N] [--points N] [--seed N] \
//!     [--base-rate BYTES_PER_TICK] [--faults SPEC]
//! ```
//!
//! `--faults ''` disables the default fault spec.

use std::time::Instant;
use volcast_core::{ServerParams, SessionServer};
use volcast_net::{FaultConfig, StreamWriter};
use volcast_pointcloud::codec::{CodecConfig, GopEncoder};
use volcast_pointcloud::synthetic::SyntheticBody;
use volcast_util::json::{JsonValue, ToJson};
use volcast_viewport::UserStudy;

/// Default fault spec: enough churn to exercise reconnects, loss
/// re-sends, stalls, and decode deferrals on every run.
const DEFAULT_FAULTS: &str = "seed=11,outage=0.01:3,loss=0.02,stall=0.005:2,decode=0.01";

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value for {key}: '{v}'");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients = parsed(&args, "--clients", 1_200usize);
    let cap = parsed(&args, "--cap", 1_024usize);
    let frames = parsed(&args, "--frames", 120usize);
    let points = parsed(&args, "--points", 4_000usize);
    let seed = parsed(&args, "--seed", 42u64);
    let base_rate = parsed(&args, "--base-rate", 2_048u32);
    let fault_spec = flag(&args, "--faults").unwrap_or_else(|| DEFAULT_FAULTS.into());
    let faults = if fault_spec.trim().is_empty() {
        FaultConfig::default()
    } else {
        FaultConfig::from_spec(&fault_spec).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    };

    println!(
        "Server: {clients} clients (cap {cap}), {frames} frames x {points} points, \
         base rate {base_rate} B/tick, seed {seed}"
    );
    println!(
        "faults: {}\n",
        if fault_spec.trim().is_empty() {
            "off"
        } else {
            &fault_spec
        }
    );

    // Encode the stream content: one GOP batch of synthetic-body frames,
    // wrapped into the wire container.
    let t0 = Instant::now();
    let cfg = CodecConfig::default();
    let body = SyntheticBody::default();
    let clouds: Vec<_> = (0..frames).map(|f| body.frame(f as u64, points)).collect();
    let mut gop = GopEncoder::new();
    gop.encode_gop_into(&clouds, &cfg);
    let mut writer = StreamWriter::new(cfg.depth as u8, cfg.color_bits as u8, frames as u32);
    let mut payload_bytes = 0u64;
    for f in 0..frames {
        let data = gop.frame_data(f);
        payload_bytes += data.len() as u64;
        writer.push_frame(data);
    }
    let stream = writer.finish();
    let encode_s = t0.elapsed().as_secs_f64();
    println!(
        "stream: {} frames, {} payload bytes ({} on the wire)",
        frames,
        payload_bytes,
        stream.len()
    );

    // Load generator: every client replays a viewport trace.
    let traces = UserStudy::generate_with(seed, frames, clients.div_ceil(2), clients / 2).traces;

    let params = ServerParams {
        clients,
        admit_cap: cap,
        base_bytes_per_tick: base_rate,
        seed,
        faults,
        ..ServerParams::default()
    };
    let server = SessionServer::new(params, stream, traces).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let t1 = Instant::now();
    let out = server.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let run_s = t1.elapsed().as_secs_f64();

    // Deterministic summary (the thread-invariance contract is on stdout).
    println!("  admitted            {:>10}", out.admitted);
    println!("  rejected            {:>10}", out.rejected);
    println!("  delivered frames    {:>10}", out.delivered_frames);
    println!("  dropped (backpress) {:>10}", out.dropped_frames);
    println!("  undelivered         {:>10}", out.undelivered_frames);
    println!("  reconnects          {:>10}", out.reconnects);
    println!("  bytes sent          {:>10}", out.bytes_sent);
    println!("  p50 latency         {:>10} ms", out.p50_latency_ms);
    println!("  p99 latency         {:>10} ms", out.p99_latency_ms);
    println!("  mean latency        {:>10.3} ms", out.mean_latency_ms);
    println!("\noutcome hash 0x{:016x}", out.outcome_hash);

    // Wall-clock throughput: stderr + JSON only (never stdout).
    let client_frames_per_sec = (out.admitted * frames) as f64 / run_s;
    eprintln!(
        "encoded in {encode_s:.2} s, served in {run_s:.2} s \
         ({client_frames_per_sec:.0} client-frames/sec)"
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let report = JsonValue::Obj(vec![
        ("clients".into(), (clients as u64).to_json()),
        ("admit_cap".into(), (cap as u64).to_json()),
        ("frames".into(), (frames as u64).to_json()),
        ("points".into(), (points as u64).to_json()),
        ("seed".into(), seed.to_json()),
        ("base_rate".into(), (base_rate as u64).to_json()),
        ("host_threads".into(), host_threads.to_json()),
        ("fault_spec".into(), fault_spec.to_json()),
        ("encode_s".into(), encode_s.to_json()),
        ("run_s".into(), run_s.to_json()),
        (
            "client_frames_per_sec".into(),
            client_frames_per_sec.to_json(),
        ),
        ("admitted".into(), (out.admitted as u64).to_json()),
        ("rejected".into(), (out.rejected as u64).to_json()),
        ("delivered_frames".into(), out.delivered_frames.to_json()),
        ("dropped_frames".into(), out.dropped_frames.to_json()),
        (
            "undelivered_frames".into(),
            out.undelivered_frames.to_json(),
        ),
        ("reconnects".into(), out.reconnects.to_json()),
        ("bytes_sent".into(), out.bytes_sent.to_json()),
        (
            "p50_latency_ms".into(),
            (out.p50_latency_ms as u64).to_json(),
        ),
        (
            "p99_latency_ms".into(),
            (out.p99_latency_ms as u64).to_json(),
        ),
        ("mean_latency_ms".into(), out.mean_latency_ms.to_json()),
        (
            "outcome_hash".into(),
            format!("0x{:016x}", out.outcome_hash).to_json(),
        ),
    ]);
    let path = format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, report.to_json_string()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    volcast_bench::dump_obs("server");
}

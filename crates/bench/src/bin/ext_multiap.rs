//! Extension E: multi-AP coordination (§5 open challenge).
//!
//! Two APs on opposite walls serve disjoint multicast groups concurrently
//! (mmWave directionality permits the spatial reuse). This experiment
//! compares one AP vs two coordinated APs on the same user population:
//! per-AP group common RSS, interference margins, and the aggregate
//! multicast capacity implied by the min-member MCS.
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_multiap`

use volcast_bench::{mean, Context};
use volcast_geom::Vec3;
use volcast_mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner, PlanarArray, Room};
use volcast_pointcloud::{CellGrid, SyntheticBody};
use volcast_viewport::{VisibilityComputer, VisibilityOptions};

fn main() {
    let frames = 200usize;
    let ctx = Context::standard(42, frames);
    let mcs = McsTable::dmg();

    // Second AP on the opposite wall.
    let room = Room::default();
    let pos2 = Vec3::new(0.0, 2.6, -room.depth / 2.0 + 0.1);
    let channel2 = Channel::new(
        room,
        PlanarArray::airfide(pos2, Vec3::new(0.0, 1.3, 0.0) - pos2),
    );
    let codebook2 = Codebook::default_for(&channel2.array);

    let body = SyntheticBody::default();
    let grid = CellGrid::new(0.5);
    let users: Vec<usize> = (0..8).collect();

    let mut single_rates = Vec::new();
    let mut dual_rates = Vec::new();
    let mut margins = Vec::new();
    for f in (0..frames).step_by(20) {
        let positions: Vec<Vec3> = users
            .iter()
            .map(|&u| ctx.study.traces[u].pose(f).position)
            .collect();
        let cloud = body.frame(f as u64, 15_000);
        let partition = grid.partition(&cloud);
        let maps: Vec<_> = users
            .iter()
            .map(|&u| {
                let trace = &ctx.study.traces[u];
                let vc = VisibilityComputer::new(VisibilityOptions {
                    intrinsics: trace.device.intrinsics(),
                    occlusion: false,
                    distance: false,
                    ..VisibilityOptions::default()
                });
                vc.compute(&trace.pose(f), &grid, &partition)
            })
            .collect();

        // Single AP: one multicast group of everyone.
        let d1 = MultiLobeDesigner::new(&ctx.channel, &ctx.codebook);
        let one = d1.design(&positions, &[]);
        single_rates.push(mcs.phy_rate_mbps(one.common_rss_dbm()));

        // Two APs: coordinator splits users, each AP multicasts its group;
        // both transmit concurrently (spatial reuse).
        let coord = volcast_core::MultiApCoordinator::new(
            vec![&ctx.channel, &channel2],
            vec![&ctx.codebook, &codebook2],
        );
        let assignment = coord.assign(&positions, &maps);
        let mut aggregate = 0.0;
        for (ap, rss) in assignment.ap_common_rss_dbm.iter().enumerate() {
            if let Some(r) = rss {
                let _ = ap;
                aggregate += mcs.phy_rate_mbps(*r);
            }
        }
        dual_rates.push(aggregate);
        margins.push(assignment.min_interference_margin_db);
    }

    println!("Ext E: multi-AP coordination, 8 users, multicast common-MCS capacity\n");
    println!(
        "single AP (1 group of 8):  mean multicast PHY rate {:>8.0} Mbps",
        mean(&single_rates)
    );
    println!(
        "two APs (split groups):    mean aggregate PHY rate {:>8.0} Mbps",
        mean(&dual_rates)
    );
    println!(
        "speedup: {:.2}x   min inter-AP interference margin: {:.1} dB",
        mean(&dual_rates) / mean(&single_rates).max(1.0),
        margins.iter().copied().fold(f64::INFINITY, f64::min)
    );
    println!("\nexpected shape: two coordinated APs more than double the 8-user");
    println!("multicast capacity (smaller groups -> higher common MCS, plus");
    println!("concurrent service periods), with comfortably positive margins.");
    volcast_bench::dump_obs("ext_multiap");
}

//! Fault-scenario matrix: deterministic fault injection, end to end.
//!
//! Runs a fixed matrix of fault scenarios (outage bursts, blockage storms,
//! AP stalls, transmission loss, decode overruns, a scripted blackout, and
//! all of them combined) through the full Volcast session engine and
//! prints, per scenario, the FNV-1a hash of the serialized
//! `SessionOutcome` plus the headline degradation stats. The hash rows
//! are the determinism contract: `scripts/fault_matrix.sh` re-runs the
//! matrix at `VOLCAST_THREADS=1` and `=4` and diffs the outputs byte for
//! byte, so any fault-path divergence across worker counts fails CI.
//!
//! Under `VOLCAST_TRACE=1` each scenario also dumps its deterministic obs
//! snapshot to `results/obs_faults_<name>.json` (fault activations, ladder
//! reactions, retransmits), auditable the same way.
//!
//! Run: `cargo run --release -p volcast-bench --bin faults`

use volcast_core::session::quick_session_with_device;
use volcast_core::{DeliveryMode, PlayerKind};
use volcast_net::FaultConfig;
use volcast_util::hash::fnv1a;
use volcast_util::json::ToJson;
use volcast_util::obs;
use volcast_viewport::DeviceClass;

/// The scenario matrix: name + fault spec (empty = fault-free baseline).
const SCENARIOS: &[(&str, &str)] = &[
    ("baseline", ""),
    ("outage_burst", "seed=11,outage=0.04:6"),
    ("blockage_storm", "seed=12,blockage=0.10:4"),
    ("ap_stall", "seed=13,stall=0.10:3"),
    ("loss", "seed=14,loss=0.08"),
    ("decode", "seed=15,decode=0.06"),
    ("blackout", "seed=16,blackout=16:8"),
    (
        "combined",
        "seed=17,outage=0.02:4,blockage=0.05:3,stall=0.02:2,loss=0.04,decode=0.03,blackout=30:6",
    ),
];

const USERS: usize = 4;
const FRAMES: usize = 48;

fn main() {
    println!(
        "Fault-scenario matrix: {USERS} phone users, {FRAMES} frames, adaptive quality, Volcast"
    );
    println!("(hash = FNV-1a of the serialized SessionOutcome; thread-count invariant)\n");
    println!(
        "{:<16} {:>18} | {:>6} {:>6} | {:>6} {:>7} {:>7}",
        "scenario", "outcome-fnv", "fault", "recov", "fps", "stall%", "quality"
    );
    println!("{}", "-".repeat(78));

    let mut legacy: Vec<(f64, f64)> = Vec::new(); // (stall_ratio, quality) per scenario
    for &(name, spec) in SCENARIOS {
        obs::reset();
        let cfg = FaultConfig::from_spec(spec).unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        let mut s =
            quick_session_with_device(PlayerKind::Volcast, USERS, FRAMES, 42, DeviceClass::Phone);
        s.params.analysis_points = 8_000;
        if !cfg.is_quiet() {
            s.params.faults = Some(cfg);
        }
        let out = s
            .run()
            .unwrap_or_else(|e| panic!("scenario {name} failed: {e}"));
        let hash = fnv1a(out.to_json().to_json_string().as_bytes());
        println!(
            "{:<16} 0x{:016x} | {:>6} {:>6} | {:>6.1} {:>6.1}% {:>7.2}",
            name,
            hash,
            out.fault_user_frames,
            out.recovered_user_frames,
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio() * 100.0,
            out.qoe.mean_quality_score(),
        );
        legacy.push((out.qoe.mean_stall_ratio(), out.qoe.mean_quality_score()));
        volcast_bench::dump_obs(&format!("faults_{name}"));
    }

    // The same matrix under layered delivery: multicast base + unicast
    // enhancements + the proactive XOR-parity FEC rung of the degradation
    // ladder. The Δstall column is the headline claim — parity absorbing
    // single erasures before the budgeted-retransmit rung should cut the
    // stall-rate in most faulted scenarios.
    println!("\nLayered delivery + proactive FEC (same scenarios; deltas vs single-stream):\n");
    println!(
        "{:<16} {:>18} | {:>6} {:>6} | {:>6} {:>7} {:>7} | {:>8} {:>6}",
        "scenario", "outcome-fnv", "fault", "recov", "fps", "stall%", "quality", "dstall%", "dqual"
    );
    println!("{}", "-".repeat(95));

    for (i, &(name, spec)) in SCENARIOS.iter().enumerate() {
        obs::reset();
        let cfg = FaultConfig::from_spec(spec).unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        let mut s =
            quick_session_with_device(PlayerKind::Volcast, USERS, FRAMES, 42, DeviceClass::Phone);
        s.params.analysis_points = 8_000;
        s.params.delivery = DeliveryMode::Layered;
        if !cfg.is_quiet() {
            s.params.faults = Some(cfg);
        }
        let out = s
            .run()
            .unwrap_or_else(|e| panic!("layered scenario {name} failed: {e}"));
        let hash = fnv1a(out.to_json().to_json_string().as_bytes());
        let (stall0, qual0) = legacy[i];
        println!(
            "{:<16} 0x{:016x} | {:>6} {:>6} | {:>6.1} {:>6.1}% {:>7.2} | {:>+7.1}% {:>+6.2}",
            name,
            hash,
            out.fault_user_frames,
            out.recovered_user_frames,
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio() * 100.0,
            out.qoe.mean_quality_score(),
            (out.qoe.mean_stall_ratio() - stall0) * 100.0,
            out.qoe.mean_quality_score() - qual0,
        );
        volcast_bench::dump_obs(&format!("faults_layered_{name}"));
    }

    println!("\nEvery faulted scenario must complete without panics; the blackout");
    println!("window degrades (stalls, quality clamps) and recovers once it ends.");
}

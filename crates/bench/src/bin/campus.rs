//! Campus-scale multi-AP roaming benchmark (ROADMAP item 1).
//!
//! Runs the sharded campus simulation — a grid of two-AP rooms advanced
//! in parallel per epoch, with roaming users handing off between rooms at
//! epoch barriers — at the headline 10,000-user / 100-AP / 300-frame
//! scale, and reports simulation throughput (users/sec), per-AP airtime,
//! and handoff counts into `BENCH_campus.json` at the repository root.
//!
//! Everything printed to **stdout** is deterministic: the configuration,
//! the aggregate `CampusOutcome` metrics, and the FNV-1a hash of its
//! serialized form are byte-identical at `VOLCAST_THREADS=1` and `=8` (or
//! any other worker count). Wall-clock throughput goes to **stderr** and
//! into the JSON report only.
//!
//! Flags (all optional):
//!
//! ```text
//! cargo run --release -p volcast-bench --bin campus -- \
//!     [--users N] [--aps N] [--frames N] [--epoch N] [--seed N] \
//!     [--faults SPEC] [--report PATH]
//! ```
//!
//! `--aps` must be even (two per room); the room grid is chosen as the
//! most square factorization of `aps / 2`. `--faults ''` disables the
//! default fault spec. `--report ''` skips writing the JSON report (so
//! smoke configurations don't clobber the committed full-scale baseline);
//! any other value overrides the output path.

use std::time::Instant;
use volcast_core::campus::{Campus, CampusParams};
use volcast_net::FaultConfig;
use volcast_util::hash::fnv1a;
use volcast_util::json::{JsonValue, ToJson};

/// Default fault spec: light outage/loss churn so campus-sized (>64-user)
/// fault plans are exercised on every run.
const DEFAULT_FAULTS: &str = "seed=5,outage=0.01:5,loss=0.02,stall=0.005:3";

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value for {key}: '{v}'");
            std::process::exit(2);
        }),
    }
}

/// The most square `(w, h)` with `w * h = rooms` and `w >= h`.
fn squarest_grid(rooms: usize) -> (usize, usize) {
    let mut h = (rooms as f64).sqrt() as usize;
    while h > 1 && !rooms.is_multiple_of(h) {
        h -= 1;
    }
    (rooms / h.max(1), h.max(1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let users = parsed(&args, "--users", 10_000usize);
    let aps = parsed(&args, "--aps", 100usize);
    let frames = parsed(&args, "--frames", 300usize);
    let epoch_frames = parsed(&args, "--epoch", 10usize);
    let seed = parsed(&args, "--seed", 42u64);
    let fault_spec = flag(&args, "--faults").unwrap_or_else(|| DEFAULT_FAULTS.into());
    if !aps.is_multiple_of(2) || aps == 0 {
        eprintln!("error: --aps must be a positive even number (two APs per room)");
        std::process::exit(2);
    }
    let (grid_w, grid_h) = squarest_grid(aps / 2);
    let faults = if fault_spec.trim().is_empty() {
        None
    } else {
        Some(FaultConfig::from_spec(&fault_spec).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }))
    };

    let params = CampusParams {
        grid_w,
        grid_h,
        users,
        frames,
        epoch_frames,
        seed,
        faults,
        ..CampusParams::default()
    };
    println!(
        "Campus: {users} users, {aps} APs ({grid_w}x{grid_h} rooms), {frames} frames, \
         epoch {epoch_frames}, seed {seed}"
    );
    println!(
        "faults: {}\n",
        if fault_spec.is_empty() {
            "off"
        } else {
            &fault_spec
        }
    );

    let t0 = Instant::now();
    let campus = Campus::new(params).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let build_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let out = campus.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let run_s = t1.elapsed().as_secs_f64();

    // Deterministic summary (the thread-invariance contract is on stdout).
    let airtime_mean = volcast_bench::mean(&out.per_ap_airtime_s);
    let airtime_max = out.per_ap_airtime_s.iter().cloned().fold(0.0f64, f64::max);
    let airtime_min = out
        .per_ap_airtime_s
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!("  handoffs            {:>10}", out.handoffs);
    println!("  reassociations      {:>10}", out.reassociations);
    println!("  regroup exclusions  {:>10}", out.regroup_exclusions);
    println!("  fault user-frames   {:>10}", out.fault_user_frames);
    println!("  scheduled u-frames  {:>10}", out.scheduled_user_frames);
    println!("  delivered ratio     {:>10.4}", out.delivered_ratio);
    println!("  on-time ratio       {:>10.4}", out.on_time_ratio);
    println!("  mean quality scale  {:>10.4}", out.mean_quality_scale);
    println!("  unreachable u-frames{:>10}", out.unreachable_user_frames);
    println!("  mean group size     {:>10.3}", out.mean_group_size);
    println!(
        "  multicast bytes     {:>9.1}%",
        out.multicast_byte_fraction * 100.0
    );
    println!(
        "  per-AP airtime      {:>10.3} s mean, {:.3} s max",
        airtime_mean, airtime_max
    );
    println!("  over-budget items   {:>10}", out.over_budget_items);
    println!(
        "  interference margin {:>10.1} dB",
        out.min_interference_margin_db
    );
    let hash = fnv1a(out.to_json().to_json_string().as_bytes());
    println!("\noutcome hash 0x{hash:016x}");

    // Wall-clock throughput: stderr + JSON only (never stdout).
    let user_frames_per_sec = (users * frames) as f64 / run_s;
    let users_per_sec = users as f64 / run_s;
    eprintln!(
        "built in {build_s:.2} s, ran in {run_s:.2} s \
         ({users_per_sec:.0} users/sec, {user_frames_per_sec:.0} user-frames/sec)"
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    // The full per-AP airtime array lives in `outcome` (it is part of the
    // hashed CampusOutcome); the top level carries summary stats only, so
    // a 1000-AP report does not serialize the array twice.
    let report = JsonValue::Obj(vec![
        ("users".into(), (users as u64).to_json()),
        ("aps".into(), (aps as u64).to_json()),
        ("frames".into(), (frames as u64).to_json()),
        ("epoch_frames".into(), (epoch_frames as u64).to_json()),
        ("seed".into(), seed.to_json()),
        ("fault_spec".into(), fault_spec.to_json()),
        ("host_threads".into(), host_threads.to_json()),
        ("build_s".into(), build_s.to_json()),
        ("run_s".into(), run_s.to_json()),
        ("users_per_sec".into(), users_per_sec.to_json()),
        ("user_frames_per_sec".into(), user_frames_per_sec.to_json()),
        ("handoffs".into(), out.handoffs.to_json()),
        ("per_ap_airtime_mean_s".into(), airtime_mean.to_json()),
        ("per_ap_airtime_max_s".into(), airtime_max.to_json()),
        ("per_ap_airtime_min_s".into(), airtime_min.to_json()),
        ("outcome".into(), out.to_json()),
        ("outcome_hash".into(), format!("0x{hash:016x}").to_json()),
    ]);
    let path = flag(&args, "--report")
        .unwrap_or_else(|| format!("{}/../../BENCH_campus.json", env!("CARGO_MANIFEST_DIR")));
    if path.is_empty() {
        eprintln!("report writing disabled (--report '')");
    } else {
        match std::fs::write(&path, report.to_json_string()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    volcast_bench::dump_obs("campus");
}

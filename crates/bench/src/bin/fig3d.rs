//! Fig. 3d: CDF of the common RSS for 2-user multicast with the default
//! codebook beams vs the customized multi-lobe beams.
//!
//! The paper's observation: combining the two users' individual beam
//! weights (scaled by the opposite user's RSS, total power constrained)
//! raises the *common* (minimum) RSS substantially — the "Max. Common RSS
//! improvement" circle in the figure — while pairs that already share a
//! strong default sector keep the default beam.
//!
//! Run: `cargo run --release -p volcast-bench --bin fig3d`

use volcast_bench::{mean, print_cdf, quantile, Context};
use volcast_mmwave::MultiLobeDesigner;
use volcast_util::rng::Rng;

fn main() {
    let frames = 300usize;
    let ctx = Context::standard(42, frames);
    let designer = MultiLobeDesigner::new(&ctx.channel, &ctx.codebook);
    let mut rng = Rng::seed_from_u64(1004);

    let trials = 300usize;
    // Draw every trial's pair sequentially (same RNG stream as the serial
    // version), then run the pure beam designs in parallel; results come
    // back in trial order.
    let trial_positions: Vec<[volcast_geom::Vec3; 2]> = (0..trials)
        .map(|_| {
            let f = rng.gen_range(0..frames);
            let a = rng.gen_range(0..ctx.study.len());
            let b = loop {
                let b = rng.gen_range(0..ctx.study.len());
                if b != a {
                    break b;
                }
            };
            [
                ctx.study.traces[a].pose(f).position,
                ctx.study.traces[b].pose(f).position,
            ]
        })
        .collect();
    let evaluated: Vec<(f64, f64, bool)> =
        volcast_util::par::par_map(&trial_positions, |positions| {
            let (_, rss) = designer.best_common_sector(positions, &[]);
            let d_min = rss.into_iter().fold(f64::INFINITY, f64::min);
            let beam = designer.design(positions, &[]);
            (d_min, beam.common_rss_dbm(), beam.customized)
        });
    let mut default_rss = Vec::with_capacity(trials);
    let mut custom_rss = Vec::with_capacity(trials);
    let mut improvements = Vec::with_capacity(trials);
    let mut customized = 0usize;
    for (d_min, c_min, was_custom) in evaluated {
        if was_custom {
            customized += 1;
        }
        default_rss.push(d_min);
        custom_rss.push(c_min);
        improvements.push(c_min - d_min);
    }

    println!("Fig. 3d: common RSS for 2-user multicast (dBm)\n");
    print_cdf("default beam", &default_rss);
    print_cdf("customized beams", &custom_rss);
    println!();
    println!(
        "max common-RSS improvement: mean {:.1} dB, p90 {:.1} dB, max {:.1} dB",
        mean(&improvements),
        quantile(&improvements, 0.9),
        improvements
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "custom beam chosen for {:.0}% of pairs (default kept when both users already strong)",
        customized as f64 / trials as f64 * 100.0
    );
    println!("\npaper shape: customized curve shifted right of the default curve,");
    println!("with the largest gains in the weak-common-RSS regime.");
    volcast_bench::dump_obs("fig3d");
}

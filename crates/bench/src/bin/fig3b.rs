//! Fig. 3b: CDF of the maximum common RSS the *default* sector codebook
//! can provide to multicast groups of 1, 2 and 3 users, over user
//! positions drawn from the viewport traces.
//!
//! The paper's anchor: -68 dBm (≈385 Mbps, enough for 550K-point quality)
//! is achievable at 96.5% of positions for one user but only ~79% / ~60%
//! for 2- / 3-user multicast groups — the default beams were never
//! designed for multicast.
//!
//! Run: `cargo run --release -p volcast-bench --bin fig3b`

use volcast_bench::{cdf_at, print_cdf, Context};
use volcast_mmwave::MultiLobeDesigner;
use volcast_util::rng::Rng;

fn main() {
    let frames = 300usize;
    let ctx = Context::standard(42, frames);
    let designer = MultiLobeDesigner::new(&ctx.channel, &ctx.codebook);
    let mut rng = Rng::seed_from_u64(1003);

    let trials = 400usize;
    println!("Fig. 3b: CDF of max common RSS under the default codebook\n");
    let mut results = Vec::new();
    for k in 1..=3usize {
        // Draw every trial's frame and user set sequentially (same RNG
        // stream as the serial version), then evaluate the pure codebook
        // sweeps in parallel; results come back in trial order.
        let trial_positions: Vec<Vec<_>> = (0..trials)
            .map(|_| {
                // Draw k distinct users at a random trace frame.
                let f = rng.gen_range(0..frames);
                let mut users = Vec::with_capacity(k);
                while users.len() < k {
                    let u = rng.gen_range(0..ctx.study.len());
                    if !users.contains(&u) {
                        users.push(u);
                    }
                }
                users
                    .iter()
                    .map(|&u| ctx.study.traces[u].pose(f).position)
                    .collect()
            })
            .collect();
        let samples: Vec<f64> = volcast_util::par::par_map(&trial_positions, |positions| {
            let (_, rss) = designer.best_common_sector(positions, &[]);
            rss.into_iter().fold(f64::INFINITY, f64::min)
        });
        print_cdf(&format!("{k} user(s)"), &samples);
        results.push((k, samples));
    }

    println!("\nFraction of positions with common RSS >= -68 dBm (385 Mbps):");
    for (k, samples) in &results {
        println!(
            "  {k} user(s): {:.1}%",
            (1.0 - cdf_at(samples, -68.0 - 1e-9)) * 100.0
        );
    }
    println!("\npaper anchors: 96.5% (1 user), 79% (2 users), 60% (3 users).");
    volcast_bench::dump_obs("fig3b");
}

//! Fig. 2b: CDF of viewport similarity (IoU) across users, for different
//! device types, partition granularities and group sizes:
//! HM(2)-Seg(100cm), HM(2)-Seg(50cm), PH(2)-Seg(50cm), HM(3)-Seg(50cm).
//!
//! Run: `cargo run --release -p volcast-bench --bin fig2b`

use volcast_bench::{cdf_at, combinations, print_cdf, Context};
use volcast_pointcloud::{CellGrid, SyntheticBody};
use volcast_viewport::{group_iou, DeviceClass, VisibilityComputer, VisibilityOptions};

fn iou_samples(
    ctx: &Context,
    users: &[usize],
    group_size: usize,
    cell_size: f64,
    frames: &[usize],
) -> Vec<f64> {
    let body = SyntheticBody::default();
    let grid = CellGrid::new(cell_size);
    let combos = combinations(users.len(), group_size);
    // Frames are independent; fan them out and flatten in frame order so
    // the sample sequence is identical at any VOLCAST_THREADS.
    let per_frame: Vec<Vec<f64>> = volcast_util::par::par_map(frames, |&f| {
        let cloud = body.frame(f as u64, 20_000);
        let partition = grid.partition(&cloud);
        let maps: Vec<_> = users
            .iter()
            .map(|&u| {
                let trace = &ctx.study.traces[u];
                let vc = VisibilityComputer::new(VisibilityOptions {
                    occlusion: false,
                    distance: false,
                    intrinsics: trace.device.intrinsics(),
                    ..VisibilityOptions::default()
                });
                vc.compute(&trace.pose(f), &grid, &partition)
            })
            .collect();
        combos
            .iter()
            .map(|combo| {
                let group: Vec<_> = combo.iter().map(|&i| &maps[i]).collect();
                group_iou(&group)
            })
            .collect()
    });
    per_frame.into_iter().flatten().collect()
}

fn main() {
    let frames_total = 300usize;
    let ctx = Context::standard(42, frames_total);
    let ph: Vec<usize> = ctx.study.users_of(DeviceClass::Phone);
    let hm: Vec<usize> = ctx.study.users_of(DeviceClass::Headset);
    let sample_frames: Vec<usize> = (0..frames_total).step_by(15).collect();

    println!("Fig. 2b: CDF of viewport similarity (IoU) across all users\n");
    let settings: Vec<(&str, Vec<f64>)> = vec![
        (
            "HM(2)-Seg(100cm)",
            iou_samples(&ctx, &hm, 2, 1.0, &sample_frames),
        ),
        (
            "HM(2)-Seg(50cm)",
            iou_samples(&ctx, &hm, 2, 0.5, &sample_frames),
        ),
        (
            "PH(2)-Seg(50cm)",
            iou_samples(&ctx, &ph, 2, 0.5, &sample_frames),
        ),
        (
            "HM(3)-Seg(50cm)",
            iou_samples(&ctx, &hm, 3, 0.5, &sample_frames),
        ),
    ];
    for (label, samples) in &settings {
        print_cdf(label, samples);
    }

    println!("\nFraction of groups with IoU <= 0.5 (lower = more similar):");
    for (label, samples) in &settings {
        println!("  {label:<20} {:.2}", cdf_at(samples, 0.5));
    }
    println!("\npaper shape: PH(2) most similar, then HM(2)-100cm, then");
    println!("HM(2)-50cm; HM(3) least similar.");
    volcast_bench::dump_obs("fig2b");
}

//! Extension B: component ablation of the volcast system.
//!
//! DESIGN.md calls out four design choices; this bench removes them one at
//! a time on the same 6-user High-quality workload:
//!
//! 1. full system (grouping + custom beams + cross-layer ABR + proactive
//!    mitigation),
//! 2. default beams only (no multi-lobe customization),
//! 3. buffer-only ABR (no cross-layer prediction),
//! 4. reactive blockage handling (no prediction-driven proactivity),
//! 5. no multicast at all (= multi-user ViVo).
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_ablation`

use volcast_core::session::quick_session;
use volcast_core::{AbrPolicy, MitigationMode, PlayerKind};

fn main() {
    let n = 8usize;
    let frames = 120usize;
    println!("Ext B: ablation, {n} headset users, adaptive quality, {frames} frames\n");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>11}",
        "variant", "mean FPS", "stalls", "quality", "mcast bytes"
    );
    println!("{}", "-".repeat(76));

    let run = |label: &str,
               player: PlayerKind,
               custom_beams: bool,
               abr: AbrPolicy,
               mitigation: MitigationMode| {
        let mut s = quick_session(player, n, frames, 42);
        s.params.custom_beams = custom_beams;
        s.params.abr = abr;
        s.params.mitigation = mitigation;
        s.params.analysis_points = 10_000;
        let out = s.run().unwrap();
        println!(
            "{:<34} {:>9.1} {:>9.3} {:>9.2} {:>10.0}%",
            label,
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio(),
            out.qoe.mean_quality_score(),
            out.multicast_byte_fraction * 100.0
        );
    };

    run(
        "full volcast",
        PlayerKind::Volcast,
        true,
        AbrPolicy::CrossLayer,
        MitigationMode::Proactive,
    );
    run(
        "- custom beams (default sectors)",
        PlayerKind::Volcast,
        false,
        AbrPolicy::CrossLayer,
        MitigationMode::Proactive,
    );
    run(
        "- cross-layer ABR (buffer-only)",
        PlayerKind::Volcast,
        true,
        AbrPolicy::BufferOnly,
        MitigationMode::Proactive,
    );
    run(
        "- proactive mitigation (reactive)",
        PlayerKind::Volcast,
        true,
        AbrPolicy::CrossLayer,
        MitigationMode::Reactive,
    );
    run(
        "- multicast entirely (ViVo)",
        PlayerKind::Vivo,
        false,
        AbrPolicy::CrossLayer,
        MitigationMode::Proactive,
    );

    println!("\nexpected shape: each removal costs FPS and/or quality; losing");
    println!("multicast entirely costs the most at this user count.");
    volcast_bench::dump_obs("ext_ablation");
}

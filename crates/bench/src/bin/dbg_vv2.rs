use volcast_core::session::quick_session_with_device;
use volcast_core::PlayerKind;
use volcast_pointcloud::QualityLevel;
use volcast_viewport::DeviceClass;
fn main() {
    for n in [3usize, 4, 5] {
        for player in [PlayerKind::Vivo, PlayerKind::Volcast] {
            let mut s = quick_session_with_device(player, n, 60, 42, DeviceClass::Phone);
            s.params.fixed_quality = Some(QualityLevel::High);
            s.params.analysis_points = 8_000;
            let out = s.run().unwrap();
            println!(
                "{n} {:?}: fps {:.1} stalls {:.3} frame_ms {:.1} mcast {:.0}%",
                player,
                out.qoe.mean_fps(),
                out.qoe.mean_stall_ratio(),
                out.mean_frame_time_s * 1e3,
                out.multicast_byte_fraction * 100.0
            );
        }
    }
    volcast_bench::dump_obs("dbg_vv2");
}

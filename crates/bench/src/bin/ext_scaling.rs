//! Extension A: full-system user scaling.
//!
//! The paper's Table 1 asks "how many users can we serve at 30 FPS?"
//! for vanilla and ViVo. This experiment answers the follow-on question
//! the research agenda poses: how far does the *full* volcast system
//! (visibility culling + similarity multicast + custom beams + cross-layer
//! adaptation) stretch the same network? End-to-end sessions, high
//! quality, 2..=10 users.
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_scaling`

use volcast_core::session::quick_session_with_device;
use volcast_core::PlayerKind;
use volcast_pointcloud::QualityLevel;
use volcast_viewport::DeviceClass;

fn main() {
    println!("Ext A: end-to-end user scaling at fixed High quality (550K pts)\n");
    println!(
        "{:<6} {:<18} {:>9} {:>12} {:>12} {:>12}",
        "users", "player", "mean FPS", "stall ratio", "frame ms", "mcast bytes"
    );
    println!("{}", "-".repeat(74));
    // Every (users, player) configuration is an independent seeded
    // session; replicate them across threads and print rows in config
    // order (nested parallel regions inside a session run serially).
    let sizes = [2usize, 3, 4, 5, 6, 8, 10];
    let players = [PlayerKind::Vanilla, PlayerKind::Vivo, PlayerKind::Volcast];
    let configs: Vec<(usize, PlayerKind)> = sizes
        .iter()
        .flat_map(|&n| players.iter().map(move |&p| (n, p)))
        .collect();
    let rows: Vec<String> = volcast_util::par::par_map(&configs, |&(n, player)| {
        // Classroom scenario: phone viewers clustered in a frontal
        // arc — the paper's motivating multi-user case, where viewport
        // overlap (and thus multicast opportunity) is highest.
        let mut s = quick_session_with_device(player, n, 90, 42, DeviceClass::Phone);
        s.params.fixed_quality = Some(QualityLevel::High);
        s.params.analysis_points = 10_000;
        let out = s.run().unwrap();
        format!(
            "{:<6} {:<18} {:>9.1} {:>12.3} {:>12.2} {:>11.0}%",
            n,
            player.label(),
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio(),
            out.mean_frame_time_s * 1e3,
            out.multicast_byte_fraction * 100.0
        )
    });
    for (i, row) in rows.iter().enumerate() {
        println!("{row}");
        if (i + 1) % players.len() == 0 {
            println!();
        }
    }
    println!("expected shape: volcast sustains 30 FPS for more users than ViVo,");
    println!("which beats vanilla; multicast fraction grows with co-viewing users.");
    volcast_bench::dump_obs("ext_scaling");
}

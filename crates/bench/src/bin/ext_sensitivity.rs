//! Extension F: sensitivity of the full system to its two key knobs.
//!
//! 1. **Cell size** (25/50/100 cm): finer cells cull more precisely but
//!    lower inter-user IoU (Fig. 2b) and multiply per-cell overheads;
//!    coarser cells overlap more but fetch more waste.
//! 2. **Viewport prediction**: planning on predicted poses (the deployable
//!    system) vs oracle current poses (upper bound), across horizons.
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_sensitivity`

use volcast_core::session::quick_session_with_device;
use volcast_core::PlayerKind;
use volcast_pointcloud::QualityLevel;
use volcast_viewport::DeviceClass;

fn main() {
    let users = 6usize;
    let frames = 90usize;

    println!("Ext F1: cell-size sensitivity ({users} phone users, High quality)\n");
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12}",
        "cell size", "mean FPS", "stall ratio", "mcast bytes", "frame ms"
    );
    println!("{}", "-".repeat(60));
    // Each cell size is an independent seeded session; run them across
    // threads and print rows in config order.
    let cells = [0.25f64, 0.5, 1.0];
    let cell_rows: Vec<String> = volcast_util::par::par_map(&cells, |&cell| {
        let mut s =
            quick_session_with_device(PlayerKind::Volcast, users, frames, 42, DeviceClass::Phone);
        s.params.config.cell_size = cell;
        s.params.fixed_quality = Some(QualityLevel::High);
        s.params.analysis_points = 10_000;
        let out = s.run().unwrap();
        format!(
            "{:<10} {:>9.1} {:>12.3} {:>11.0}% {:>12.2}",
            format!("{} cm", (cell * 100.0) as u32),
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio(),
            out.multicast_byte_fraction * 100.0,
            out.mean_frame_time_s * 1e3,
        )
    });
    for row in &cell_rows {
        println!("{row}");
    }

    println!("\nExt F2: prediction sensitivity (same workload)\n");
    println!(
        "{:<26} {:>9} {:>12} {:>14}",
        "planning poses", "mean FPS", "stall ratio", "pred err (m)"
    );
    println!("{}", "-".repeat(64));
    let settings = [
        ("oracle (current poses)", false, 10usize),
        ("predicted, horizon 5", true, 5),
        ("predicted, horizon 10", true, 10),
        ("predicted, horizon 20", true, 20),
    ];
    let pred_rows: Vec<String> =
        volcast_util::par::par_map(&settings, |&(label, use_prediction, horizon)| {
            let mut s = quick_session_with_device(
                PlayerKind::Volcast,
                users,
                frames,
                42,
                DeviceClass::Phone,
            );
            s.params.use_prediction = use_prediction;
            s.params.config.prediction_horizon = horizon;
            s.params.fixed_quality = Some(QualityLevel::High);
            s.params.analysis_points = 10_000;
            let out = s.run().unwrap();
            format!(
                "{:<26} {:>9.1} {:>12.3} {:>14.3}",
                label,
                out.qoe.mean_fps(),
                out.qoe.mean_stall_ratio(),
                out.mean_prediction_error_m,
            )
        });
    for row in &pred_rows {
        println!("{row}");
    }

    println!("\nexpected shape: 50 cm cells balance overlap against precision;");
    println!("longer horizons cost prediction accuracy but the system degrades");
    println!("gracefully (visibility maps absorb centimeter-level pose error).");
    volcast_bench::dump_obs("ext_sensitivity");
}

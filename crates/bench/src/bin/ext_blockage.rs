//! Extension D: proactive vs reactive blockage mitigation.
//!
//! The paper (§4.1) argues that prediction-driven proactive beam adaptation
//! avoids the 5-20 ms reactive re-search and its stalls. Persistent
//! crowd self-blockage is unfixable by any beam policy, so this experiment
//! isolates *transient* blockage — an ambient person repeatedly walking
//! across the AP-to-viewer paths — and compares:
//!
//! - no blockage (upper bound),
//! - reactive: one stale-beam frame + full sector sweep per onset,
//! - proactive: prefetch before onset + pre-steered reflected-path beam.
//!
//! Run: `cargo run --release -p volcast-bench --bin ext_blockage`

use volcast_core::session::quick_session_with_device;
use volcast_core::{MitigationMode, PlayerKind};
use volcast_geom::{Pose, Vec3};
use volcast_pointcloud::QualityLevel;
use volcast_viewport::{DeviceClass, Trace};

/// A person pacing along the x axis at `z`, crossing every viewer's LoS.
fn walker(frames: usize, z: f64, speed_mps: f64) -> Trace {
    let rate = 30.0;
    let span = 3.0; // walks x in [-3, 3]
    let poses = (0..frames)
        .map(|f| {
            let t = f as f64 / rate;
            // Triangle wave in [-span, span].
            let phase = (t * speed_mps / (2.0 * span)).fract();
            let x = if phase < 0.5 {
                -span + 4.0 * span * phase
            } else {
                3.0 * span - 4.0 * span * phase
            };
            Pose::new(Vec3::new(x, 1.7, z), Default::default())
        })
        .collect();
    Trace {
        user_id: usize::MAX,
        device: DeviceClass::Headset,
        rate_hz: rate,
        poses,
    }
}

fn main() {
    let frames = 300usize;
    println!("Ext D: transient blockage, 3 phone viewers + 1 crossing walker, Medium quality\n");
    println!(
        "{:<26} {:>9} {:>12} {:>12} {:>11}",
        "variant", "mean FPS", "stall ratio", "stall s/user", "blk-frames"
    );
    println!("{}", "-".repeat(74));

    let run = |label: &str, mitigation: MitigationMode, with_walker: bool| {
        let mut s =
            quick_session_with_device(PlayerKind::Volcast, 3, frames, 42, DeviceClass::Phone);
        s.params.mitigation = mitigation;
        s.params.fixed_quality = Some(QualityLevel::Medium);
        s.params.analysis_points = 10_000;
        if with_walker {
            // Crossing between the viewer arc (z ~ 1-2) and the AP wall.
            s.walkers.push(walker(frames, 2.0, 1.2));
        }
        let out = s.run().unwrap();
        let stall_per_user: f64 =
            out.qoe.users.iter().map(|u| u.stall_time_s).sum::<f64>() / out.qoe.users.len() as f64;
        println!(
            "{:<26} {:>9.1} {:>12.3} {:>12.3} {:>11}",
            label,
            out.qoe.mean_fps(),
            out.qoe.mean_stall_ratio(),
            stall_per_user,
            out.blocked_user_frames
        );
    };

    run("no walker (upper bound)", MitigationMode::Proactive, false);
    run("reactive re-search", MitigationMode::Reactive, true);
    run("proactive (prediction)", MitigationMode::Proactive, true);

    println!("\nexpected shape: reactive pays a stale-beam frame and a full sweep");
    println!("at every crossing onset; proactive prefetch + pre-steered reflected");
    println!("beams close most of the gap to the no-walker bound.");
    volcast_bench::dump_obs("ext_blockage");
}

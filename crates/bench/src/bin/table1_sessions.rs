//! Table 1 reproduced through *end-to-end sessions* (the analytic model is
//! `--bin table1`). Every row runs the full per-frame pipeline — traces,
//! visibility, scheduling, MAC, buffers, decoder — on the session engine,
//! for both networks:
//!
//! - `ac`: [`RadioKind::Wifi5`], log-distance 5 GHz channel + VHT MCS +
//!   contention MAC,
//! - `ad`: [`RadioKind::MmWave`], beams + DMG MCS + service-period MAC.
//!
//! Body blockage is disabled to match the paper's unobstructed measurement
//! setup (seated users, clear LoS).
//!
//! Run: `cargo run --release -p volcast-bench --bin table1_sessions`

use volcast_core::session::quick_session_with_device;
use volcast_core::{PlayerKind, RadioKind};
use volcast_pointcloud::QualityLevel;
use volcast_viewport::DeviceClass;

fn fps(radio: RadioKind, player: PlayerKind, users: usize, quality: QualityLevel) -> f64 {
    let mut s = quick_session_with_device(player, users, 60, 42, DeviceClass::Phone);
    s.params.radio = radio;
    s.params.fixed_quality = Some(quality);
    s.params.analysis_points = 8_000;
    s.params.body_blockage = false;
    s.run().unwrap().qoe.mean_fps()
}

fn main() {
    println!("Table 1 via end-to-end sessions (max achievable FPS, cap 30)\n");
    println!(
        "{:<4} {:>5} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "net", "users", "V-330K", "V-430K", "V-550K", "ViVo330", "ViVo430", "ViVo550"
    );
    println!("{}", "-".repeat(70));

    let mut rows: Vec<(&str, RadioKind, usize)> = Vec::new();
    for n in 1..=3usize {
        rows.push(("ac", RadioKind::Wifi5, n));
    }
    for n in 1..=7usize {
        rows.push(("ad", RadioKind::MmWave, n));
    }

    for (net, radio, n) in rows {
        let cell = |player: PlayerKind, q: QualityLevel| fps(radio, player, n, q);
        println!(
            "{:<4} {:>5} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}",
            net,
            n,
            cell(PlayerKind::Vanilla, QualityLevel::Low),
            cell(PlayerKind::Vanilla, QualityLevel::Medium),
            cell(PlayerKind::Vanilla, QualityLevel::High),
            cell(PlayerKind::Vivo, QualityLevel::Low),
            cell(PlayerKind::Vivo, QualityLevel::Medium),
            cell(PlayerKind::Vivo, QualityLevel::High),
        );
    }
    println!("\nCross-check against `--bin table1` (analytic) and the paper:");
    println!("same 30-FPS crossovers, with session effects (buffers, per-frame");
    println!("scheduling) smoothing the sub-30 rows.");
    volcast_bench::dump_obs("table1_sessions");
}

//! Fig. 3e: normalized throughput of unicast, multicast with default
//! beams, and multicast with customized beams, for two users.
//!
//! Workload per sample: a random frame and user pair from the traces.
//! Each user needs their visibility-culled cells (`S_1`, `S_2`); the
//! overlapped cells `S_m` can be multicast. Serving time:
//!
//! - unicast:               `S_1/r_1 + S_2/r_2`
//! - multicast (either):    `S_m/r_m + (S_1-S_m)/r_1 + (S_2-S_m)/r_2`
//!
//! where `r_m` is the min-member MCS rate under the default common sector
//! or the customized multi-lobe beam. Throughput = total delivered bytes /
//! serving time, normalized to unicast.
//!
//! Run: `cargo run --release -p volcast-bench --bin fig3e`

use volcast_bench::{mean, quantile, Context};
use volcast_mmwave::{McsTable, MultiLobeDesigner};
use volcast_pointcloud::{CellGrid, QualityLevel, SyntheticBody, VideoSequence};
use volcast_util::rng::Rng;
use volcast_viewport::{overlap_bytes, VisibilityComputer, VisibilityOptions};

fn main() {
    let frames = 300usize;
    let ctx = Context::standard(42, frames);
    let designer = MultiLobeDesigner::new(&ctx.channel, &ctx.codebook);
    let mcs = McsTable::dmg();
    let body = SyntheticBody::default();
    let grid = CellGrid::new(0.5);
    let video = VideoSequence::default();
    let quality = video.quality(QualityLevel::High);
    let analysis_points = 20_000usize;
    let byte_scale =
        quality.points_per_frame as f64 / analysis_points as f64 * quality.bytes_per_point();
    let mut rng = Rng::seed_from_u64(1005);

    let trials = 200usize;
    let mut norm_default = Vec::new();
    let mut norm_custom = Vec::new();
    for _ in 0..trials {
        let f = rng.gen_range(0..frames);
        let a = rng.gen_range(0..ctx.study.len());
        let b = loop {
            let b = rng.gen_range(0..ctx.study.len());
            if b != a {
                break b;
            }
        };
        let cloud = body.frame(f as u64, analysis_points);
        let partition = grid.partition(&cloud);
        let sizes: Vec<f64> = partition
            .iter()
            .map(|c| c.point_count as f64 * byte_scale)
            .collect();
        let maps: Vec<_> = [a, b]
            .iter()
            .map(|&u| {
                let trace = &ctx.study.traces[u];
                let vc = VisibilityComputer::new(VisibilityOptions {
                    intrinsics: trace.device.intrinsics(),
                    ..VisibilityOptions::vivo()
                });
                vc.compute(&trace.pose(f), &grid, &partition)
            })
            .collect();
        let s: Vec<f64> = maps
            .iter()
            .map(|m| m.required_bytes(&partition, &sizes))
            .collect();
        let s_m = overlap_bytes(&[&maps[0], &maps[1]], &partition, &sizes);
        let positions = [
            ctx.study.traces[a].pose(f).position,
            ctx.study.traces[b].pose(f).position,
        ];

        // Unicast rates: each user's individually-best sector.
        let r: Vec<f64> = positions
            .iter()
            .map(|&p| {
                let (_, rss) = designer.best_common_sector(&[p], &[]);
                mcs.phy_rate_mbps(rss[0])
            })
            .collect();
        if r.iter().any(|&x| x <= 0.0) {
            continue; // outage sample: skip (unicast undefined)
        }
        let t_unicast = s[0] / r[0] + s[1] / r[1];

        let serve = |r_m: f64| -> Option<f64> {
            if r_m <= 0.0 {
                return None;
            }
            Some(s_m / r_m + (s[0] - s_m).max(0.0) / r[0] + (s[1] - s_m).max(0.0) / r[1])
        };

        let (_, d_rss) = designer.best_common_sector(&positions, &[]);
        let r_default = mcs.multicast_rate_mbps(&d_rss);
        let beam = designer.design(&positions, &[]);
        let r_custom = mcs.multicast_rate_mbps(&beam.member_rss_dbm);

        let total = s[0] + s[1];
        let tput_uni = total / t_unicast;
        norm_default.push(match serve(r_default) {
            Some(t) => (total / t) / tput_uni,
            None => 0.0, // multicast infeasible at this geometry
        });
        norm_custom.push(match serve(r_custom) {
            Some(t) => (total / t) / tput_uni,
            None => 0.0,
        });
    }

    println!("Fig. 3e: normalized throughput for two users (unicast = 1.0)\n");
    println!("{:<28} {:>8} {:>8} {:>8}", "scheme", "p10", "mean", "p90");
    println!("{:<28} {:>8.2} {:>8.2} {:>8.2}", "unicast", 1.0, 1.0, 1.0);
    for (label, v) in [
        ("multicast (default beam)", &norm_default),
        ("multicast (custom beams)", &norm_custom),
    ] {
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>8.2}",
            label,
            quantile(v, 0.1),
            mean(v),
            quantile(v, 0.9)
        );
    }
    let worse = norm_default.iter().filter(|&&x| x < 1.0).count();
    println!(
        "\nmulticast w/ default beams is WORSE than unicast in {:.0}% of samples",
        worse as f64 / norm_default.len() as f64 * 100.0
    );
    let custom_better = norm_custom
        .iter()
        .zip(&norm_default)
        .filter(|(c, d)| c > d)
        .count();
    println!(
        "custom beams beat default beams in {:.0}% of samples",
        custom_better as f64 / norm_custom.len() as f64 * 100.0
    );
    println!("\npaper shape: default-beam multicast sometimes underperforms unicast");
    println!("(unbalanced RSS drags the common MCS down); customized beams restore");
    println!("and extend the multicast gain.");
    volcast_bench::dump_obs("fig3e");
}

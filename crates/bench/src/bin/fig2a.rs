//! Fig. 2a: viewport similarity (IoU) over time for two user pairs
//! watching the same volumetric video (50 cm cells).
//!
//! The paper shows one pair overlapping almost always (IoU ~1 most of the
//! time) and one pair starting low and converging to 1 toward the end of
//! the clip. We report the same two archetypes, auto-selected from the
//! synthetic study: the pair with the highest mean IoU, and the pair with
//! the largest late-minus-early IoU gain.
//!
//! Run: `cargo run --release -p volcast-bench --bin fig2a`

use volcast_bench::{combinations, mean, Context};
use volcast_pointcloud::{CellGrid, SyntheticBody};
use volcast_viewport::{iou, DeviceClass, VisibilityComputer, VisibilityOptions};

fn main() {
    let frames = 300usize;
    let ctx = Context::standard(42, frames);
    let hm = ctx.study.users_of(DeviceClass::Headset);
    let body = SyntheticBody::default();
    let grid = CellGrid::new(0.5);
    let vc = VisibilityComputer::new(VisibilityOptions {
        occlusion: false,
        distance: false,
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::default()
    });

    // IoU series for every HM pair, sampled every 5 frames. Frames are
    // independent (pure geometry per frame), so they fan out across
    // threads; per-frame results come back in frame order, keeping the
    // output identical at any VOLCAST_THREADS.
    let step = 5usize;
    let sample_frames: Vec<usize> = (0..frames).step_by(step).collect();
    let pairs = combinations(hm.len(), 2);
    let per_frame: Vec<Vec<f64>> = volcast_util::par::par_map(&sample_frames, |&f| {
        let cloud = body.frame(f as u64, 20_000);
        let partition = grid.partition(&cloud);
        let maps: Vec<_> = hm
            .iter()
            .map(|&u| vc.compute(&ctx.study.traces[u].pose(f), &grid, &partition))
            .collect();
        pairs
            .iter()
            .map(|pair| iou(&maps[pair[0]], &maps[pair[1]]))
            .collect()
    });
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(sample_frames.len()); pairs.len()];
    for frame_ious in &per_frame {
        for (pi, &v) in frame_ious.iter().enumerate() {
            series[pi].push(v);
        }
    }

    // Archetype 1: highest mean IoU.
    let stable = (0..pairs.len())
        .max_by(|&a, &b| mean(&series[a]).partial_cmp(&mean(&series[b])).unwrap())
        .unwrap();
    // Archetype 2: largest late-early gain.
    let third = series[0].len() / 3;
    let gain = |s: &[f64]| mean(&s[s.len() - third..]) - mean(&s[..third]);
    let converging = (0..pairs.len())
        .max_by(|&a, &b| gain(&series[a]).partial_cmp(&gain(&series[b])).unwrap())
        .unwrap();

    for (label, idx) in [
        ("stable-overlap pair", stable),
        ("converging pair", converging),
    ] {
        let (a, b) = (hm[pairs[idx][0]], hm[pairs[idx][1]]);
        println!("# {label}: User {a}, User {b}");
        println!("frame,iou");
        for (i, v) in series[idx].iter().enumerate() {
            println!("{},{v:.3}", sample_frames[i]);
        }
        println!();
    }
    println!("# paper shape: stable pair sits near IoU 1 most of the video;");
    println!("# converging pair starts low and rises to ~1 by the end.");
    let s = &series[converging];
    println!(
        "# converging pair: early mean {:.2} -> late mean {:.2}",
        mean(&s[..third]),
        mean(&s[s.len() - third..])
    );
    volcast_bench::dump_obs("fig2a");
}

//! Table 1: performance of multi-user volumetric video streaming with the
//! vanilla and multi-user-ViVo systems over 802.11ac and 802.11ad.
//!
//! For each network, user count and quality version, reports the per-user
//! data rate and the maximum achievable frame rate (capped at 30 FPS) for
//! both players. The ViVo rows apply the measured mean visibility fraction
//! (viewport + distance + occlusion culling) from the synthetic user study.
//!
//! Run: `cargo run --release -p volcast-bench --bin table1`

use volcast_bench::Context;
use volcast_core::max_sustainable_fps;
use volcast_net::{AcMac, AdMac, MacModel};
use volcast_pointcloud::{CellGrid, DecodeModel, Ladder, QualityLevel, SyntheticBody};
use volcast_viewport::{VisibilityComputer, VisibilityOptions};

/// Measures the mean fraction of the frame's points a ViVo player fetches
/// (LOD-weighted), averaged over users and sampled frames.
fn vivo_visibility_fraction(ctx: &Context) -> f64 {
    let body = SyntheticBody::default();
    let grid = CellGrid::new(0.5);
    let mut total = 0.0;
    let mut count = 0usize;
    for f in (0..ctx.frames).step_by(30) {
        let cloud = body.frame(f as u64, 20_000);
        let partition = grid.partition(&cloud);
        let total_points: f64 = partition.iter().map(|c| c.point_count as f64).sum();
        for trace in &ctx.study.traces {
            let vc = VisibilityComputer::new(VisibilityOptions {
                intrinsics: trace.device.intrinsics(),
                ..VisibilityOptions::vivo()
            });
            let map = vc.compute(&trace.pose(f), &grid, &partition);
            let needed: f64 = partition
                .iter()
                .filter_map(|c| map.cells.get(&c.id).map(|lod| c.point_count as f64 * lod))
                .sum();
            total += needed / total_points;
            count += 1;
        }
    }
    total / count as f64
}

fn main() {
    let ctx = Context::standard(42, 240);
    let decode = DecodeModel::default();
    let vivo_fraction = vivo_visibility_fraction(&ctx);
    println!("Measured ViVo visibility fraction: {vivo_fraction:.3}\n");

    println!("Table 1: Performance of multi-user volumetric video streaming with");
    println!("vanilla and multi-user ViVo systems (max achievable FPS, cap 30).\n");
    println!(
        "{:<4} {:>5} {:>10} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "net", "users", "rate Mbps", "V-330K", "V-430K", "V-550K", "ViVo330", "ViVo430", "ViVo550"
    );
    println!("{}", "-".repeat(88));

    let ac = AcMac::default();
    let ad = AdMac::default();
    // PHY anchors: VHT80 2SS MCS9 for ac; DMG MCS9 for well-placed ad users.
    let ac_phy = 866.7;
    let ad_phy = 2502.5;

    let mut rows: Vec<(&str, usize, f64)> = Vec::new();
    for n in 1..=3usize {
        rows.push(("ac", n, ac.per_user_rate_mbps(ac_phy, n)));
    }
    for n in 1..=7usize {
        rows.push(("ad", n, ad.per_user_rate_mbps(ad_phy, n)));
    }

    for (net, n, rate) in rows {
        let fps = |q: QualityLevel, fraction: f64| -> f64 {
            let quality = Ladder::paper().quality(q);
            max_sustainable_fps(
                rate,
                quality.full_frame_bytes() * fraction,
                quality.points_per_frame,
                &decode,
                30.0,
            )
        };
        println!(
            "{:<4} {:>5} {:>10.0} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}",
            net,
            n,
            rate,
            fps(QualityLevel::Low, 1.0),
            fps(QualityLevel::Medium, 1.0),
            fps(QualityLevel::High, 1.0),
            fps(QualityLevel::Low, vivo_fraction),
            fps(QualityLevel::Medium, vivo_fraction),
            fps(QualityLevel::High, vivo_fraction),
        );
    }

    println!();
    println!("Paper anchors: ac/1 user = 374 Mbps & 30 FPS everywhere;");
    println!("ad/1 user = 1270 Mbps; vanilla ad supports 3 users at 30 FPS (550K),");
    println!("ViVo stretches that to ~5; at 7 users vanilla high ~11 FPS, ViVo ~17.");
    volcast_bench::dump_obs("table1");
}

//! Microbenchmarks for the performance-critical kernels.
//!
//! These measure the costs a real deployment would care about: per-frame
//! visibility computation, grouping search, beam design, codec throughput,
//! channel evaluation, and the event engine. Timing uses the in-tree
//! harness (`volcast_util::timing`) — wall-clock min/median/mean over a
//! fixed sample count, no external dependencies.
//!
//! Run: `cargo bench -p volcast-bench`
//! (knobs: `VOLCAST_BENCH_SAMPLES`, default 20)
//!
//! `cargo bench -p volcast-bench -- --json` runs only the parallel-kernel
//! benches (visibility fan-out, codebook sweep) and writes
//! `BENCH_visibility.json` / `BENCH_codebook.json` machine-readable
//! reports (median ns per iteration, thread counts, git revision) for the
//! perf trajectory tracked by `scripts/bench_baseline.sh`.

use std::hint::black_box;
use volcast_core::{GroupPlanner, GroupingInputs, SystemConfig};
use volcast_geom::Vec3;
use volcast_mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};
use volcast_net::{EventQueue, SimTime};
use volcast_pointcloud::codec::{decode, encode, CodecConfig};
use volcast_pointcloud::{CellGrid, SyntheticBody};
use volcast_util::json::{JsonValue, ToJson};
use volcast_util::par;
use volcast_util::timing::Harness;
use volcast_viewport::{iou, DeviceClass, UserStudy, VisibilityComputer, VisibilityOptions};

fn bench_codec(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let cfg = CodecConfig::default();
    h.bench_function("codec/encode_50k_points", |b| {
        b.iter(|| encode(black_box(&cloud), &cfg))
    });
    let (enc, _) = encode(&cloud, &cfg);
    h.bench_function("codec/decode_50k_points", |b| {
        b.iter(|| decode(black_box(&enc)).unwrap())
    });
}

fn bench_geometry(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let grid = CellGrid::new(0.5);
    h.bench_function("cells/partition_50k_points", |b| {
        b.iter(|| grid.partition(black_box(&cloud)))
    });

    let partition = grid.partition(&cloud);
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let pose = study.traces[16].pose(10);
    h.bench_function("visibility/full_map_one_user", |b| {
        b.iter(|| vc.compute(black_box(&pose), &grid, &partition))
    });

    let m0 = vc.compute(&study.traces[16].pose(10), &grid, &partition);
    let m1 = vc.compute(&study.traces[17].pose(10), &grid, &partition);
    h.bench_function("similarity/iou_pair", |b| {
        b.iter(|| iou(black_box(&m0), black_box(&m1)))
    });
}

fn bench_mmwave(h: &mut Harness) {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let user = Vec3::new(1.0, 1.5, -1.0);
    h.bench_function("channel/rss_one_beam", |b| {
        let beam = &codebook.sectors[10];
        b.iter(|| channel.rss_dbm(black_box(beam), user, &[]))
    });
    let pair = [Vec3::new(-2.0, 1.5, 0.0), Vec3::new(2.0, 1.5, 0.0)];
    h.bench_function("beam/design_two_user_group", |b| {
        b.iter(|| designer.design(black_box(&pair), &[]))
    });
}

fn bench_grouping(h: &mut Harness) {
    // Realistic grouping instance: 6 users over a real frame partition.
    let cloud = SyntheticBody::default().frame(0, 15_000);
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    let sizes: Vec<f64> = partition
        .iter()
        .map(|c| c.point_count as f64 * 3.0)
        .collect();
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Phone.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let maps: Vec<_> = (0..6)
        .map(|u| vc.compute(&study.traces[u].pose(10), &grid, &partition))
        .collect();
    let rates = vec![2000.0; 6];
    let mcs = McsTable::dmg();
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let positions: Vec<Vec3> = (0..6).map(|u| study.traces[u].pose(10).position).collect();
    let group_rate = |members: &[usize]| -> f64 {
        let pts: Vec<_> = members.iter().map(|&u| positions[u]).collect();
        let beam = designer.design(&pts, &[]);
        mcs.multicast_rate_mbps(&beam.member_rss_dbm)
    };
    let planner = GroupPlanner::new(SystemConfig::default());
    h.bench_function("grouping/plan_6_users", |b| {
        b.iter(|| {
            planner.plan(black_box(&GroupingInputs {
                maps: &maps,
                partition: &partition,
                cell_sizes: &sizes,
                unicast_rate_mbps: &rates,
                multicast_rate_mbps: &group_rate,
            }))
        })
    });
}

fn bench_event_queue(h: &mut Harness) {
    h.bench_function("events/schedule_pop_10k", |b| {
        b.iter_batched(EventQueue::<u64>::new, |mut q| {
            for i in 0..10_000u64 {
                // Pseudo-random interleaved times.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                q.schedule(SimTime(t + 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_synthetic(h: &mut Harness) {
    let body = SyntheticBody::default();
    h.bench_function("synthetic/frame_100k_points", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            body.frame(black_box(i), 100_000)
        })
    });
}

/// Hardware threads the host offers (1 if unknown).
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True if a `threads`-worker bench is meaningful on this host; warns and
/// returns false otherwise. Recording a 4-thread datapoint on a 1-core
/// box would measure oversubscription, not scaling, and the baseline
/// comparison in `scripts/bench_baseline.sh` would chase that noise.
fn can_bench_threads(threads: usize, bench: &str) -> bool {
    let host = host_threads();
    if threads <= host {
        return true;
    }
    println!("# WARNING: skipping {bench}: requested {threads} threads but host has {host}");
    false
}

/// Per-user visibility fan-out at 1 and 4 worker threads — the session
/// hot loop this PR parallelizes. Same seeded inputs, bit-identical maps
/// at both thread counts (the determinism property tests enforce that);
/// only the wall clock differs.
fn bench_visibility_scaling(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 30_000);
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let poses: Vec<_> = (0..8).map(|u| study.traces[u].pose(10)).collect();
    let orig = par::thread_count();
    for threads in [1usize, 4] {
        let name = format!("visibility/maps_8_users_t{threads}");
        if !can_bench_threads(threads, &name) {
            continue;
        }
        par::set_thread_count(threads);
        h.bench_function(&name, |b| {
            b.iter(|| par::par_map(&poses, |p| vc.compute(black_box(p), &grid, &partition)))
        });
    }
    par::set_thread_count(orig);
}

/// Full 48-sector codebook sweep for a 3-user group: the naive per-call
/// path (re-deriving rays, blockage and steering vectors for every
/// (sector, member) pair) vs the prepared-receiver path (geometry cached
/// once per member, each sector costing one dot product per member), at
/// 1 and 4 threads. Both return the same best sector and RSS values.
fn bench_codebook_caching(h: &mut Harness) {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let members = [
        Vec3::new(-2.0, 1.5, 0.0),
        Vec3::new(2.0, 1.5, 0.0),
        Vec3::new(0.5, 1.6, -1.5),
    ];
    h.bench_function("codebook/sweep48_naive", |b| {
        b.iter(|| {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (si, sector) in codebook.sectors.iter().enumerate() {
                let min = members
                    .iter()
                    .map(|&m| channel.rss_dbm(black_box(sector), m, &[]))
                    .fold(f64::INFINITY, f64::min);
                if min > best.1 {
                    best = (si, min);
                }
            }
            best
        })
    });
    let orig = par::thread_count();
    for threads in [1usize, 4] {
        let name = format!("codebook/sweep48_prepared_t{threads}");
        if !can_bench_threads(threads, &name) {
            continue;
        }
        par::set_thread_count(threads);
        h.bench_function(&name, |b| {
            b.iter(|| designer.best_common_sector(black_box(&members), &[]))
        });
    }
    par::set_thread_count(orig);
}

/// Writes one `BENCH_<name>.json` report at the workspace root: the
/// harness records plus the git revision and host thread budget, for the
/// perf trajectory. (Cargo runs bench binaries from the package dir, so
/// the path is anchored to the manifest.)
fn write_report(name: &str, h: &Harness) {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let report = JsonValue::Obj(vec![
        ("git_rev".into(), rev.to_json()),
        ("host_threads".into(), host_threads.to_json()),
        ("benches".into(), h.json_report()),
    ]);
    std::fs::write(&path, report.to_json_string() + "\n")
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {name} (host_threads={host_threads})");
}

fn main() {
    // Scaling benches compare thread counts, so say up front how many the
    // host actually has — a reader of the report needs this to judge
    // whether a _t4 record is missing (skipped) or meaningful.
    println!("host_threads={}", host_threads());
    // `--json`: only the parallel-kernel benches, with machine-readable
    // reports (fast enough for scripts/bench_baseline.sh to run per
    // commit). Default: the full suite, human-readable.
    if std::env::args().any(|a| a == "--json") {
        let mut hv = Harness::new();
        bench_visibility_scaling(&mut hv);
        write_report("BENCH_visibility.json", &hv);
        let mut hc = Harness::new();
        bench_codebook_caching(&mut hc);
        write_report("BENCH_codebook.json", &hc);
        return;
    }
    let mut h = Harness::new();
    bench_codec(&mut h);
    bench_geometry(&mut h);
    bench_mmwave(&mut h);
    bench_grouping(&mut h);
    bench_event_queue(&mut h);
    bench_synthetic(&mut h);
    bench_visibility_scaling(&mut h);
    bench_codebook_caching(&mut h);
}

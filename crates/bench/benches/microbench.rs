//! Microbenchmarks for the performance-critical kernels.
//!
//! These measure the costs a real deployment would care about: per-frame
//! visibility computation, grouping search, beam design, codec throughput,
//! channel evaluation, and the event engine. Timing uses the in-tree
//! harness (`volcast_util::timing`) — wall-clock min/median/mean over a
//! fixed sample count, no external dependencies.
//!
//! Run: `cargo bench -p volcast-bench`
//! (knobs: `VOLCAST_BENCH_SAMPLES`, default 20)
//!
//! `cargo bench -p volcast-bench -- --json` runs only the tracked kernels
//! (visibility fan-out, codebook sweep, codec arena arms, session frame
//! loop) and writes `BENCH_visibility.json` / `BENCH_codebook.json` /
//! `BENCH_codec.json` / `BENCH_session.json` machine-readable reports
//! (median ns per iteration, thread counts, git revision) for the perf
//! trajectory tracked by `scripts/bench_baseline.sh`.

use std::hint::black_box;
use volcast_core::session::quick_session_with_device;
use volcast_core::{GroupPlanner, GroupingInputs, PlayerKind, SystemConfig};
use volcast_geom::Vec3;
use volcast_mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};
use volcast_net::{EventQueue, SimTime};
use volcast_pointcloud::codec::{
    decode, encode, CodecConfig, Decoder, EncodedCloud, Encoder, GopEncoder,
};
use volcast_pointcloud::{CellGrid, QualityLevel, SyntheticBody, VideoSequence};
use volcast_util::json::{JsonValue, ToJson};
use volcast_util::par;
use volcast_util::timing::Harness;
use volcast_viewport::{iou, DeviceClass, UserStudy, VisibilityComputer, VisibilityOptions};

fn bench_codec(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let cfg = CodecConfig::default();
    h.bench_function("codec/encode_50k_points", |b| {
        b.iter(|| encode(black_box(&cloud), &cfg))
    });
    let (enc, _) = encode(&cloud, &cfg);
    h.bench_function("codec/decode_50k_points", |b| {
        b.iter(|| decode(black_box(&enc)).unwrap())
    });
}

fn bench_geometry(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let grid = CellGrid::new(0.5);
    h.bench_function("cells/partition_50k_points", |b| {
        b.iter(|| grid.partition(black_box(&cloud)))
    });

    let partition = grid.partition(&cloud);
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let pose = study.traces[16].pose(10);
    h.bench_function("visibility/full_map_one_user", |b| {
        b.iter(|| vc.compute(black_box(&pose), &grid, &partition))
    });

    let m0 = vc.compute(&study.traces[16].pose(10), &grid, &partition);
    let m1 = vc.compute(&study.traces[17].pose(10), &grid, &partition);
    h.bench_function("similarity/iou_pair", |b| {
        b.iter(|| iou(black_box(&m0), black_box(&m1)))
    });
}

fn bench_mmwave(h: &mut Harness) {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let user = Vec3::new(1.0, 1.5, -1.0);
    h.bench_function("channel/rss_one_beam", |b| {
        let beam = &codebook.sectors[10];
        b.iter(|| channel.rss_dbm(black_box(beam), user, &[]))
    });
    let pair = [Vec3::new(-2.0, 1.5, 0.0), Vec3::new(2.0, 1.5, 0.0)];
    h.bench_function("beam/design_two_user_group", |b| {
        b.iter(|| designer.design(black_box(&pair), &[]))
    });
}

fn bench_grouping(h: &mut Harness) {
    // Realistic grouping instance: 6 users over a real frame partition.
    let cloud = SyntheticBody::default().frame(0, 15_000);
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    let sizes: Vec<f64> = partition
        .iter()
        .map(|c| c.point_count as f64 * 3.0)
        .collect();
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Phone.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let maps: Vec<_> = (0..6)
        .map(|u| vc.compute(&study.traces[u].pose(10), &grid, &partition))
        .collect();
    let rates = vec![2000.0; 6];
    let mcs = McsTable::dmg();
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let positions: Vec<Vec3> = (0..6).map(|u| study.traces[u].pose(10).position).collect();
    let group_rate = |members: &[usize]| -> f64 {
        let pts: Vec<_> = members.iter().map(|&u| positions[u]).collect();
        let beam = designer.design(&pts, &[]);
        mcs.multicast_rate_mbps(&beam.member_rss_dbm)
    };
    let planner = GroupPlanner::new(SystemConfig::default());
    h.bench_function("grouping/plan_6_users", |b| {
        b.iter(|| {
            planner.plan(black_box(&GroupingInputs {
                maps: &maps,
                partition: &partition,
                cell_sizes: &sizes,
                unicast_rate_mbps: &rates,
                multicast_rate_mbps: &group_rate,
            }))
        })
    });
}

fn bench_event_queue(h: &mut Harness) {
    h.bench_function("events/schedule_pop_10k", |b| {
        b.iter_batched(EventQueue::<u64>::new, |mut q| {
            for i in 0..10_000u64 {
                // Pseudo-random interleaved times.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                q.schedule(SimTime(t + 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_synthetic(h: &mut Harness) {
    let body = SyntheticBody::default();
    h.bench_function("synthetic/frame_100k_points", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            body.frame(black_box(i), 100_000)
        })
    });
}

/// Faithful copy of the pre-arena (seed) encoder: branchy bit coder,
/// per-bit Morton loop, comparison sort, and a fresh allocation for every
/// intermediate buffer on every call. It is the *naive per-call* arm of
/// the `codec/encode` bench — kept verbatim so the reused-`Encoder` arm is
/// measured against what the code path actually cost before the scratch
/// arenas, and doubles as a byte-equality cross-check (both arms must emit
/// the identical bitstream).
mod seed_codec {
    // Verbatim seed code predates current lint settings; keep it unchanged
    // rather than "improving" the baseline being measured.
    #![allow(clippy::needless_range_loop)]

    use volcast_geom::{Aabb, Vec3};
    use volcast_pointcloud::codec::CodecConfig;
    use volcast_pointcloud::PointCloud;

    const PROB_BITS: u32 = 11;
    const PROB_ONE: u16 = 1 << PROB_BITS;
    const ADAPT_SHIFT: u32 = 5;
    const TOP: u32 = 1 << 24;
    const MAGIC: [u8; 4] = *b"VOCT";
    const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 24;

    #[derive(Clone, Copy)]
    struct BitModel {
        p0: u16,
    }
    impl BitModel {
        fn new() -> Self {
            BitModel { p0: PROB_ONE / 2 }
        }
        #[inline]
        fn update(&mut self, bit: bool) {
            if bit {
                self.p0 -= self.p0 >> ADAPT_SHIFT;
            } else {
                self.p0 += (PROB_ONE - self.p0) >> ADAPT_SHIFT;
            }
        }
    }

    struct RangeEncoder {
        low: u64,
        range: u32,
        cache: u8,
        pending: u64,
        first: bool,
        out: Vec<u8>,
    }
    impl RangeEncoder {
        fn new() -> Self {
            RangeEncoder {
                low: 0,
                range: u32::MAX,
                cache: 0,
                pending: 0,
                first: true,
                out: Vec::new(),
            }
        }
        fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
            let bound = (self.range >> PROB_BITS) * model.p0 as u32;
            if !bit {
                self.range = bound;
            } else {
                self.low += bound as u64;
                self.range -= bound;
            }
            model.update(bit);
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
        fn encode_bits(&mut self, models: &mut [BitModel], value: u32, n: u32) {
            for i in (0..n).rev() {
                let bit = (value >> i) & 1 == 1;
                self.encode_bit(&mut models[(n - 1 - i) as usize], bit);
            }
        }
        #[inline]
        fn shift_low(&mut self) {
            if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
                let carry = (self.low >> 32) as u8;
                if self.first {
                    self.first = false;
                }
                self.out.push(self.cache.wrapping_add(carry));
                while self.pending > 0 {
                    self.out.push(0xFFu8.wrapping_add(carry));
                    self.pending -= 1;
                }
                self.cache = ((self.low >> 24) & 0xFF) as u8;
            } else {
                self.pending += 1;
            }
            self.low = (self.low << 8) & 0xFFFF_FFFF;
        }
        fn finish(mut self) -> Vec<u8> {
            for _ in 0..5 {
                self.shift_low();
            }
            self.out
        }
    }

    fn morton_encode(x: u32, y: u32, z: u32, depth: u32) -> u64 {
        let mut code = 0u64;
        for i in (0..depth).rev() {
            code = (code << 3)
                | (((x >> i) & 1) as u64) << 2
                | (((y >> i) & 1) as u64) << 1
                | ((z >> i) & 1) as u64;
        }
        code
    }

    struct Contexts {
        occupancy: Vec<[BitModel; 8]>,
        color: [[BitModel; 8]; 3],
    }
    impl Contexts {
        fn new(depth: u32) -> Self {
            Contexts {
                occupancy: vec![[BitModel::new(); 8]; depth as usize],
                color: [[BitModel::new(); 8]; 3],
            }
        }
    }

    pub fn encode(cloud: &PointCloud, cfg: &CodecConfig) -> Vec<u8> {
        let bounds = if cloud.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            cloud.bounds()
        };
        let extent = bounds.extent().max_component().max(1e-6);
        let levels = 1u32 << cfg.depth;
        let scale = levels as f64 / extent;
        let mut voxels: Vec<(u64, [u32; 3], u32)> = cloud
            .points
            .iter()
            .map(|p| {
                let rel = (p.position() - bounds.min) * scale;
                let q = |v: f64| (v.floor() as i64).clamp(0, (levels - 1) as i64) as u32;
                let (x, y, z) = (q(rel.x), q(rel.y), q(rel.z));
                (
                    morton_encode(x, y, z, cfg.depth),
                    [p.color[0] as u32, p.color[1] as u32, p.color[2] as u32],
                    1u32,
                )
            })
            .collect();
        voxels.sort_unstable_by_key(|v| v.0);
        let mut merged: Vec<(u64, [u32; 3], u32)> = Vec::with_capacity(voxels.len());
        for v in voxels {
            match merged.last_mut() {
                Some(last) if last.0 == v.0 => {
                    for c in 0..3 {
                        last.1[c] += v.1[c];
                    }
                    last.2 += v.2;
                }
                _ => merged.push(v),
            }
        }
        let codes: Vec<u64> = merged.iter().map(|v| v.0).collect();
        let mut data = Vec::with_capacity(HEADER_LEN + merged.len());
        data.extend_from_slice(&MAGIC);
        data.push(cfg.depth as u8);
        data.push(cfg.color_bits as u8);
        data.extend_from_slice(&(merged.len() as u32).to_le_bytes());
        for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
            data.extend_from_slice(&(v as f32).to_le_bytes());
        }
        for v in [extent, 0.0, 0.0] {
            data.extend_from_slice(&(v as f32).to_le_bytes());
        }
        let mut ctx = Contexts::new(cfg.depth);
        let mut enc = RangeEncoder::new();
        if !codes.is_empty() {
            encode_node(&mut enc, &mut ctx, &codes, 0, cfg.depth);
            let shift = 8 - cfg.color_bits;
            for v in &merged {
                for ch in 0..3 {
                    let avg = v.1[ch] / v.2;
                    enc.encode_bits(&mut ctx.color[ch], avg >> shift, cfg.color_bits);
                }
            }
        }
        data.extend_from_slice(&enc.finish());
        data
    }

    fn encode_node(
        enc: &mut RangeEncoder,
        ctx: &mut Contexts,
        codes: &[u64],
        depth_from_root: u32,
        total_depth: u32,
    ) {
        let level_shift = 3 * (total_depth - depth_from_root - 1);
        let mut ranges: [(usize, usize); 8] = [(0, 0); 8];
        let mut start = 0usize;
        for child in 0..8u64 {
            let end = codes[start..]
                .iter()
                .position(|&c| (c >> level_shift) & 0b111 != child)
                .map(|p| start + p)
                .unwrap_or(codes.len());
            ranges[child as usize] = (start, end);
            start = end;
        }
        for child in 0..8usize {
            let occupied = ranges[child].1 > ranges[child].0;
            enc.encode_bit(
                &mut ctx.occupancy[depth_from_root as usize][child],
                occupied,
            );
        }
        if depth_from_root + 1 < total_depth {
            for child in 0..8usize {
                let (s, e) = ranges[child];
                if e > s {
                    encode_node(enc, ctx, &codes[s..e], depth_from_root + 1, total_depth);
                }
            }
        }
    }
}

/// Reused-encoder arena benches against the faithful seed copy, at a
/// streaming-representative workload: 330k points (the paper's Low-ladder
/// `points_per_frame`) voxelized at depth 7 — dense enough that the
/// quantize/sort/merge pipeline the arenas optimize dominates over the
/// entropy coder (whose per-bit cost is a shared floor for both arms).
fn bench_codec_arena(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 330_000);
    let cfg = CodecConfig {
        depth: 7,
        color_bits: 6,
    };

    // Both arms must produce the identical bitstream — the naive arm is a
    // baseline, not a different codec.
    let naive_out = seed_codec::encode(&cloud, &cfg);
    let mut enc = Encoder::new();
    let mut stream = Vec::new();
    enc.encode_into(&cloud, &cfg, &mut stream);
    assert_eq!(naive_out, stream, "seed and arena encoders diverged");

    h.bench_function("codec/encode_naive_330k_d7", |b| {
        b.iter(|| seed_codec::encode(black_box(&cloud), &cfg))
    });
    h.bench_function("codec/encode_reused_330k_d7", |b| {
        b.iter(|| enc.encode_into(black_box(&cloud), &cfg, &mut stream))
    });

    let encoded = EncodedCloud {
        data: stream.clone(),
    };
    let mut dec = Decoder::new();
    let mut decoded = volcast_pointcloud::PointCloud::new();
    h.bench_function("codec/decode_reused_330k_d7", |b| {
        b.iter(|| dec.decode_into(black_box(&encoded), &mut decoded).unwrap())
    });

    // GOP-batched generate+encode: 8 reduced-density frames per iteration
    // through one deterministic slot sweep (reduced density bounds the
    // bench's working set; the per-frame arms above measure full density).
    // Pinned to 1 worker so the record stays comparable across hosts; a
    // gated 4-worker arm records the sweep's scaling where the host allows.
    let video = VideoSequence::new(7, 8);
    let mut gop = GopEncoder::new();
    let orig_threads = par::thread_count();
    par::set_thread_count(1);
    h.bench_function("codec/encode_gop_8x50k_d7", |b| {
        b.iter(|| gop.encode_video_gop_into(black_box(&video), 0, 8, 50_000, &cfg))
    });
    if can_bench_threads(4, "codec/encode_gop_8x50k_d7_t4") {
        par::set_thread_count(4);
        h.bench_function("codec/encode_gop_8x50k_d7_t4", |b| {
            b.iter(|| gop.encode_video_gop_into(black_box(&video), 0, 8, 50_000, &cfg))
        });
    }
    par::set_thread_count(orig_threads);
}

/// The full session frame loop (pose -> blockage -> visibility -> ABR ->
/// grouping -> schedule -> QoE) with the double-buffered per-frame state.
/// One iteration runs a fresh 30-frame, 3-user Volcast session; divide the
/// reported time by 30 for the per-frame cost.
fn bench_session_frame(h: &mut Harness) {
    h.bench_function("session/frame_loop_volcast3_30f", |b| {
        b.iter_batched(
            || {
                let mut s =
                    quick_session_with_device(PlayerKind::Volcast, 3, 30, 7, DeviceClass::Phone);
                s.params.analysis_points = 4_000;
                s.params.fixed_quality = Some(QualityLevel::Low);
                s
            },
            |mut s| s.run().unwrap(),
        )
    });
}

/// Hardware threads the host offers (1 if unknown).
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True if a `threads`-worker bench is meaningful on this host; warns and
/// returns false otherwise. Recording a 4-thread datapoint on a 1-core
/// box would measure oversubscription, not scaling, and the baseline
/// comparison in `scripts/bench_baseline.sh` would chase that noise.
fn can_bench_threads(threads: usize, bench: &str) -> bool {
    let host = host_threads();
    if threads <= host {
        return true;
    }
    println!("# WARNING: skipping {bench}: requested {threads} threads but host has {host}");
    false
}

/// Per-user visibility fan-out at 1 and 4 worker threads — the session
/// hot loop this PR parallelizes. Same seeded inputs, bit-identical maps
/// at both thread counts (the determinism property tests enforce that);
/// only the wall clock differs.
fn bench_visibility_scaling(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 30_000);
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let poses: Vec<_> = (0..8).map(|u| study.traces[u].pose(10)).collect();
    let orig = par::thread_count();
    for threads in [1usize, 4] {
        let name = format!("visibility/maps_8_users_t{threads}");
        if !can_bench_threads(threads, &name) {
            continue;
        }
        par::set_thread_count(threads);
        h.bench_function(&name, |b| {
            b.iter(|| par::par_map(&poses, |p| vc.compute(black_box(p), &grid, &partition)))
        });
    }
    par::set_thread_count(orig);
}

/// Full 48-sector codebook sweep for a 3-user group: the naive per-call
/// path (re-deriving rays, blockage and steering vectors for every
/// (sector, member) pair) vs the prepared-receiver path (geometry cached
/// once per member, each sector costing one dot product per member), at
/// 1 and 4 threads. Both return the same best sector and RSS values.
fn bench_codebook_caching(h: &mut Harness) {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let members = [
        Vec3::new(-2.0, 1.5, 0.0),
        Vec3::new(2.0, 1.5, 0.0),
        Vec3::new(0.5, 1.6, -1.5),
    ];
    h.bench_function("codebook/sweep48_naive", |b| {
        b.iter(|| {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (si, sector) in codebook.sectors.iter().enumerate() {
                let min = members
                    .iter()
                    .map(|&m| channel.rss_dbm(black_box(sector), m, &[]))
                    .fold(f64::INFINITY, f64::min);
                if min > best.1 {
                    best = (si, min);
                }
            }
            best
        })
    });
    let orig = par::thread_count();
    for threads in [1usize, 4] {
        let name = format!("codebook/sweep48_prepared_t{threads}");
        if !can_bench_threads(threads, &name) {
            continue;
        }
        par::set_thread_count(threads);
        h.bench_function(&name, |b| {
            b.iter(|| designer.best_common_sector(black_box(&members), &[]))
        });
    }
    par::set_thread_count(orig);
}

/// Writes one `BENCH_<name>.json` report at the workspace root: the
/// harness records plus the git revision and host thread budget, for the
/// perf trajectory. (Cargo runs bench binaries from the package dir, so
/// the path is anchored to the manifest.)
fn write_report(name: &str, h: &Harness) {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let report = JsonValue::Obj(vec![
        ("git_rev".into(), rev.to_json()),
        ("host_threads".into(), host_threads.to_json()),
        ("benches".into(), h.json_report()),
    ]);
    std::fs::write(&path, report.to_json_string() + "\n")
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {name} (host_threads={host_threads})");
}

fn main() {
    // Scaling benches compare thread counts, so say up front how many the
    // host actually has — a reader of the report needs this to judge
    // whether a _t4 record is missing (skipped) or meaningful.
    println!("host_threads={}", host_threads());
    // `--json`: only the parallel-kernel benches, with machine-readable
    // reports (fast enough for scripts/bench_baseline.sh to run per
    // commit). Default: the full suite, human-readable.
    if std::env::args().any(|a| a == "--json") {
        let mut hv = Harness::new();
        bench_visibility_scaling(&mut hv);
        write_report("BENCH_visibility.json", &hv);
        let mut hc = Harness::new();
        bench_codebook_caching(&mut hc);
        write_report("BENCH_codebook.json", &hc);
        let mut hcd = Harness::new();
        bench_codec_arena(&mut hcd);
        write_report("BENCH_codec.json", &hcd);
        let mut hs = Harness::new();
        bench_session_frame(&mut hs);
        write_report("BENCH_session.json", &hs);
        return;
    }
    let mut h = Harness::new();
    bench_codec(&mut h);
    bench_geometry(&mut h);
    bench_mmwave(&mut h);
    bench_grouping(&mut h);
    bench_event_queue(&mut h);
    bench_synthetic(&mut h);
    bench_codec_arena(&mut h);
    bench_session_frame(&mut h);
    bench_visibility_scaling(&mut h);
    bench_codebook_caching(&mut h);
}

//! Microbenchmarks for the performance-critical kernels.
//!
//! These measure the costs a real deployment would care about: per-frame
//! visibility computation, grouping search, beam design, codec throughput,
//! channel evaluation, and the event engine. Timing uses the in-tree
//! harness (`volcast_util::timing`) — wall-clock min/median/mean over a
//! fixed sample count, no external dependencies.
//!
//! Run: `cargo bench -p volcast-bench`
//! (knobs: `VOLCAST_BENCH_SAMPLES`, default 20)

use std::hint::black_box;
use volcast_core::{GroupPlanner, GroupingInputs, SystemConfig};
use volcast_geom::Vec3;
use volcast_mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};
use volcast_net::{EventQueue, SimTime};
use volcast_pointcloud::codec::{decode, encode, CodecConfig};
use volcast_pointcloud::{CellGrid, SyntheticBody};
use volcast_util::timing::Harness;
use volcast_viewport::{iou, DeviceClass, UserStudy, VisibilityComputer, VisibilityOptions};

fn bench_codec(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let cfg = CodecConfig::default();
    h.bench_function("codec/encode_50k_points", |b| {
        b.iter(|| encode(black_box(&cloud), &cfg))
    });
    let (enc, _) = encode(&cloud, &cfg);
    h.bench_function("codec/decode_50k_points", |b| {
        b.iter(|| decode(black_box(&enc)).unwrap())
    });
}

fn bench_geometry(h: &mut Harness) {
    let cloud = SyntheticBody::default().frame(0, 50_000);
    let grid = CellGrid::new(0.5);
    h.bench_function("cells/partition_50k_points", |b| {
        b.iter(|| grid.partition(black_box(&cloud)))
    });

    let partition = grid.partition(&cloud);
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Headset.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let pose = study.traces[16].pose(10);
    h.bench_function("visibility/full_map_one_user", |b| {
        b.iter(|| vc.compute(black_box(&pose), &grid, &partition))
    });

    let m0 = vc.compute(&study.traces[16].pose(10), &grid, &partition);
    let m1 = vc.compute(&study.traces[17].pose(10), &grid, &partition);
    h.bench_function("similarity/iou_pair", |b| {
        b.iter(|| iou(black_box(&m0), black_box(&m1)))
    });
}

fn bench_mmwave(h: &mut Harness) {
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let user = Vec3::new(1.0, 1.5, -1.0);
    h.bench_function("channel/rss_one_beam", |b| {
        let beam = &codebook.sectors[10];
        b.iter(|| channel.rss_dbm(black_box(beam), user, &[]))
    });
    let pair = [Vec3::new(-2.0, 1.5, 0.0), Vec3::new(2.0, 1.5, 0.0)];
    h.bench_function("beam/design_two_user_group", |b| {
        b.iter(|| designer.design(black_box(&pair), &[]))
    });
}

fn bench_grouping(h: &mut Harness) {
    // Realistic grouping instance: 6 users over a real frame partition.
    let cloud = SyntheticBody::default().frame(0, 15_000);
    let grid = CellGrid::new(0.5);
    let partition = grid.partition(&cloud);
    let sizes: Vec<f64> = partition
        .iter()
        .map(|c| c.point_count as f64 * 3.0)
        .collect();
    let study = UserStudy::generate(1, 30);
    let vc = VisibilityComputer::new(VisibilityOptions {
        intrinsics: DeviceClass::Phone.intrinsics(),
        ..VisibilityOptions::vivo()
    });
    let maps: Vec<_> = (0..6)
        .map(|u| vc.compute(&study.traces[u].pose(10), &grid, &partition))
        .collect();
    let rates = vec![2000.0; 6];
    let mcs = McsTable::dmg();
    let channel = Channel::default_setup();
    let codebook = Codebook::default_for(&channel.array);
    let designer = MultiLobeDesigner::new(&channel, &codebook);
    let positions: Vec<Vec3> = (0..6).map(|u| study.traces[u].pose(10).position).collect();
    let group_rate = |members: &[usize]| -> f64 {
        let pts: Vec<_> = members.iter().map(|&u| positions[u]).collect();
        let beam = designer.design(&pts, &[]);
        mcs.multicast_rate_mbps(&beam.member_rss_dbm)
    };
    let planner = GroupPlanner::new(SystemConfig::default());
    h.bench_function("grouping/plan_6_users", |b| {
        b.iter(|| {
            planner.plan(black_box(&GroupingInputs {
                maps: &maps,
                partition: &partition,
                cell_sizes: &sizes,
                unicast_rate_mbps: &rates,
                multicast_rate_mbps: &group_rate,
            }))
        })
    });
}

fn bench_event_queue(h: &mut Harness) {
    h.bench_function("events/schedule_pop_10k", |b| {
        b.iter_batched(EventQueue::<u64>::new, |mut q| {
            for i in 0..10_000u64 {
                // Pseudo-random interleaved times.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                q.schedule(SimTime(t + 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_synthetic(h: &mut Harness) {
    let body = SyntheticBody::default();
    h.bench_function("synthetic/frame_100k_points", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            body.frame(black_box(i), 100_000)
        })
    });
}

fn main() {
    let mut h = Harness::new();
    bench_codec(&mut h);
    bench_geometry(&mut h);
    bench_mmwave(&mut h);
    bench_grouping(&mut h);
    bench_event_queue(&mut h);
    bench_synthetic(&mut h);
}

//! A growable bit set over `u64` words.
//!
//! [`BitSet`] replaces the fixed-width `u64` membership masks that used to
//! cap fault plans (and anything else indexing users by small integers) at
//! 64 members. It is a dense, dependency-free set of `usize` indices:
//! insertion grows the word vector on demand, queries outside the allocated
//! range simply answer `false`, and equality ignores trailing zero words so
//! a set's history of growth never leaks into comparisons or hashes.
//!
//! Semantically it is a drop-in upgrade of the old masks:
//!
//! - `mask >> u & 1 == 1` becomes [`BitSet::contains`],
//! - `mask |= 1 << u` becomes [`BitSet::insert`],
//! - `mask.count_ones()` becomes [`BitSet::count`],
//! - `mask != 0` becomes `!set.is_empty()`,
//! - the blackout all-users mask `(1 << n) - 1` becomes
//!   [`BitSet::insert_range`].
//!
//! ```
//! use volcast_util::bitset::BitSet;
//!
//! let mut faulted = BitSet::new();
//! faulted.insert(3);
//! faulted.insert(200); // far past the old 64-user ceiling
//! assert!(faulted.contains(200));
//! assert!(!faulted.contains(199));
//! assert_eq!(faulted.count(), 2);
//! assert_eq!(faulted.iter().collect::<Vec<_>>(), vec![3, 200]);
//! ```

const WORD_BITS: usize = 64;

/// A growable set of `usize` indices backed by a vector of `u64` words.
///
/// Equality, ordering of iteration, and hashing are all independent of the
/// set's allocated capacity: two sets holding the same indices compare
/// equal even if one grew further and shrank back via [`BitSet::remove`].
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set. Allocates nothing until the first insertion.
    pub const fn new() -> BitSet {
        BitSet { words: Vec::new() }
    }

    /// An empty set with room for indices `0..capacity_bits` preallocated.
    pub fn with_capacity(capacity_bits: usize) -> BitSet {
        BitSet {
            words: Vec::with_capacity(capacity_bits.div_ceil(WORD_BITS)),
        }
    }

    /// Adds `index` to the set, growing storage as needed. Returns `true`
    /// if the index was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] >> bit & 1 == 0;
        self.words[word] |= 1 << bit;
        fresh
    }

    /// Adds every index in `range` to the set (the growable replacement
    /// for the old `(1 << n) - 1` all-users mask).
    pub fn insert_range(&mut self, range: std::ops::Range<usize>) {
        for index in range {
            self.insert(index);
        }
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    /// Out-of-range indices are a no-op.
    pub fn remove(&mut self, index: usize) -> bool {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        match self.words.get_mut(word) {
            Some(w) if *w >> bit & 1 == 1 => {
                *w &= !(1 << bit);
                true
            }
            _ => false,
        }
    }

    /// `true` when `index` is in the set. Indices past the allocated words
    /// are simply absent — no growth, no panic.
    pub fn contains(&self, index: usize) -> bool {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        self.words.get(word).is_some_and(|w| w >> bit & 1 == 1)
    }

    /// Number of indices in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every index, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Union with `other`: adds every index of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            *dst |= src;
        }
    }

    /// Iterates the set's indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * WORD_BITS + bit)
            })
        })
    }

    /// The allocated words, with trailing zero words stripped — the
    /// canonical form used by `PartialEq` and `Hash`.
    fn normalized(&self) -> &[u64] {
        let end = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        &self.words[..end]
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &BitSet) -> bool {
        self.normalized() == other.normalized()
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.normalized().hash(state);
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let mut set = BitSet::new();
        for index in iter {
            set.insert(index);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "double insert reports not-fresh");
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(1000));
        assert!(!s.contains(65) && !s.contains(999) && !s.contains(100_000));
        assert_eq!(s.count(), 4);
        assert!(s.remove(64));
        assert!(!s.remove(64), "double remove reports absent");
        assert!(!s.remove(1_000_000), "out-of-range remove is a no-op");
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut grown = BitSet::new();
        grown.insert(5);
        grown.insert(500);
        grown.remove(500);
        let mut small = BitSet::new();
        small.insert(5);
        assert_eq!(grown, small);
        assert_eq!(
            volcast_util_hash(&grown),
            volcast_util_hash(&small),
            "hash must match equality"
        );
        grown.clear();
        assert_eq!(grown, BitSet::new());
        assert!(grown.is_empty());
    }

    fn volcast_util_hash(s: &BitSet) -> u64 {
        use std::hash::{Hash, Hasher};
        struct Fnv(u64);
        impl Hasher for Fnv {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        s.hash(&mut h);
        h.finish()
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let indices = [0usize, 1, 63, 64, 65, 127, 128, 700];
        let s: BitSet = indices.iter().copied().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), indices);
    }

    #[test]
    fn insert_range_matches_individual_inserts() {
        let mut ranged = BitSet::new();
        ranged.insert_range(3..130);
        let individual: BitSet = (3..130).collect();
        assert_eq!(ranged, individual);
        assert_eq!(ranged.count(), 127);
        assert!(!ranged.contains(2) && ranged.contains(3));
        assert!(ranged.contains(129) && !ranged.contains(130));
    }

    #[test]
    fn union_with_combines_sets() {
        let a: BitSet = [1usize, 70].iter().copied().collect();
        let mut b: BitSet = [2usize].iter().copied().collect();
        b.union_with(&a);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 2, 70]);
    }
}

//! A minimal JSON layer: value tree, writer, parser, and conversion traits.
//!
//! This replaces `serde`/`serde_json` for the workspace's needs. The
//! supported subset is deliberately small and fully deterministic:
//!
//! - **Values**: `null`, booleans, finite IEEE-754 numbers, strings, arrays,
//!   and objects. Objects preserve insertion order (no hashing), so writing
//!   is byte-reproducible.
//! - **Writer**: compact (no whitespace); floats use Rust's shortest
//!   round-trip formatting, integers up to 2^53 are written without a
//!   fractional part. Non-finite floats serialize as `null`, matching
//!   `serde_json`.
//! - **Parser**: recursive-descent with a depth limit of 128, full string
//!   escapes (including `\uXXXX` surrogate pairs), and precise error
//!   positions.
//!
//! Types opt in through [`ToJson`] / [`FromJson`], usually via the
//! [`impl_json_struct!`](crate::impl_json_struct) and
//! [`impl_json_enum!`](crate::impl_json_enum) macros, which mirror serde's
//! derive layout (struct → object keyed by field name; unit enum variant →
//! string; payload variant → `{"Variant": {...}}`).
//!
//! ```
//! use volcast_util::json::{JsonValue, ToJson, FromJson};
//!
//! let v = JsonValue::parse(r#"{"a": [1, 2.5], "b": "x\n"}"#).unwrap();
//! assert_eq!(v.get("b").unwrap().as_str(), Some("x\n"));
//! let round: JsonValue = JsonValue::parse(&v.to_json_string()).unwrap();
//! assert_eq!(v, round);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; pairs keep insertion order for reproducible output.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// Exact integers print without a fraction; everything else uses Rust's
/// shortest round-trip float formatting. Non-finite → `null`.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Errors from parsing or schema conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Syntax error at a byte offset.
    Parse {
        /// Byte offset into the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Structurally valid JSON that does not match the expected schema.
    Schema(String),
}

impl JsonError {
    /// Convenience constructor for schema mismatches.
    pub fn schema(msg: impl Into<String>) -> JsonError {
        JsonError::Schema(msg.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Schema(m) => write!(f, "JSON schema error: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8: from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning the code unit.
    ///
    /// Each byte is validated as an ASCII hex digit individually;
    /// `from_str_radix` would also accept a leading `+`, so `"\u+0bc"`
    /// used to slip through as a valid escape.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut v = 0u32;
        for &b in &self.bytes[self.pos..end] {
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = (v << 4) | digit as u32;
        }
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Serialization into a [`JsonValue`].
pub trait ToJson {
    /// Converts `self` into a JSON tree.
    fn to_json(&self) -> JsonValue;
}

/// Deserialization from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or reports which part of the schema failed.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError>;
}

/// Reads a required object field (used by [`impl_json_struct!`](crate::impl_json_struct)).
pub fn field<T: FromJson>(v: &JsonValue, name: &str) -> Result<T, JsonError> {
    let inner = v
        .get(name)
        .ok_or_else(|| JsonError::schema(format!("missing field '{name}'")))?;
    T::from_json(inner).map_err(|e| JsonError::schema(format!("field '{name}': {e}")))
}

macro_rules! impl_json_float {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Num(n) => Ok(*n as $t),
                    // serde_json writes NaN/inf as null; accept it back.
                    JsonValue::Null => Ok(<$t>::NAN),
                    _ => Err(JsonError::schema("expected number")),
                }
            }
        }
    )+};
}

impl_json_float!(f32, f64);

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                let n = v.as_f64().ok_or_else(|| JsonError::schema("expected integer"))?;
                if n != n.trunc() {
                    return Err(JsonError::schema("expected integer, got fraction"));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::schema("integer out of range"));
                }
                Ok(n as $t)
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::schema("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::schema("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::schema("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(x) => x.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::schema(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::schema("expected 2-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::schema("expected 3-element array")),
        }
    }
}

// Non-string map keys are written as an array of [key, value] pairs — the
// only order-preserving, lossless encoding without a key-to-string scheme.
impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.iter()
                .map(|(k, v)| JsonValue::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let pairs: Vec<(K, V)> = Vec::from_json(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl FromJson for JsonValue {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// mirroring serde's derive layout (an object keyed by field name).
///
/// ```
/// use volcast_util::impl_json_struct;
/// use volcast_util::json::{FromJson, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// struct Sample { id: u32, score: f64 }
/// impl_json_struct!(Sample { id, score });
///
/// let s = Sample { id: 7, score: 0.5 };
/// let back = Sample::from_json(&s.to_json()).unwrap();
/// assert_eq!(back, s);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                if v.as_obj().is_none() {
                    return Err($crate::json::JsonError::schema(concat!(
                        "expected object for ", stringify!($ty)
                    )));
                }
                Ok($ty {
                    $($field: $crate::json::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit and/or
/// struct-like variants, mirroring serde's externally-tagged layout: unit
/// variants become `"Variant"`, payload variants `{"Variant": {fields...}}`.
///
/// ```
/// use volcast_util::impl_json_enum;
/// use volcast_util::json::{FromJson, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// enum Kind { Solo, Group { members: Vec<u32> } }
/// impl_json_enum!(Kind { Solo, Group { members } });
///
/// let g = Kind::Group { members: vec![1, 2] };
/// assert_eq!(Kind::from_json(&g.to_json()).unwrap(), g);
/// assert_eq!(Kind::Solo.to_json().as_str(), Some("Solo"));
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident $({ $($field:ident),+ $(,)? })?),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                match self {
                    $($crate::impl_json_enum!(@pat $ty, $variant $({ $($field),+ })?) =>
                        $crate::impl_json_enum!(@ser $variant $({ $($field),+ })?),)+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                if let Some(name) = v.as_str() {
                    match name {
                        $(stringify!($variant) =>
                            return $crate::impl_json_enum!(@de_unit $ty, $variant $({ $($field),+ })?),)+
                        other => return Err($crate::json::JsonError::schema(format!(
                            "unknown variant '{}' for {}", other, stringify!($ty)
                        ))),
                    }
                }
                if let Some([(name, payload)]) = v.as_obj() {
                    match name.as_str() {
                        $(stringify!($variant) =>
                            return $crate::impl_json_enum!(@de_payload $ty, $variant, payload $({ $($field),+ })?),)+
                        other => return Err($crate::json::JsonError::schema(format!(
                            "unknown variant '{}' for {}", other, stringify!($ty)
                        ))),
                    }
                }
                Err($crate::json::JsonError::schema(concat!(
                    "expected variant string or single-key object for ", stringify!($ty)
                )))
            }
        }
    };
    (@pat $ty:ident, $variant:ident) => { $ty::$variant };
    (@pat $ty:ident, $variant:ident { $($field:ident),+ }) => {
        $ty::$variant { $($field),+ }
    };
    (@ser $variant:ident) => {
        $crate::json::JsonValue::Str(stringify!($variant).to_string())
    };
    (@ser $variant:ident { $($field:ident),+ }) => {
        $crate::json::JsonValue::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::json::JsonValue::Obj(vec![
                $((stringify!($field).to_string(),
                   $crate::json::ToJson::to_json($field)),)+
            ]),
        )])
    };
    (@de_unit $ty:ident, $variant:ident) => { Ok($ty::$variant) };
    (@de_unit $ty:ident, $variant:ident { $($field:ident),+ }) => {
        Err($crate::json::JsonError::schema(concat!(
            "variant ", stringify!($variant), " of ", stringify!($ty),
            " requires a payload"
        )))
    };
    (@de_payload $ty:ident, $variant:ident, $payload:ident) => {
        Err($crate::json::JsonError::schema(concat!(
            "variant ", stringify!($variant), " of ", stringify!($ty),
            " takes no payload"
        )))
    };
    (@de_payload $ty:ident, $variant:ident, $payload:ident { $($field:ident),+ }) => {
        Ok($ty::$variant {
            $($field: $crate::json::field($payload, stringify!($field))?,)+
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-2.5e2").unwrap(), JsonValue::Num(-250.0));
        assert_eq!(
            JsonValue::parse(r#""a\u0041\n""#).unwrap(),
            JsonValue::Str("aA\n".into())
        );
    }

    #[test]
    fn parse_surrogate_pair() {
        assert_eq!(
            JsonValue::parse(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::Str("😀".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1.", "\"\\q\"", "nul", "1 2",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_unicode_escapes() {
        // Each case names the precise failure: signs and whitespace inside
        // the four digit positions (from_str_radix would take a leading
        // '+'), short escapes, lone/inverted/truncated surrogate halves.
        let cases: &[(&str, &str)] = &[
            (r#""\u+123""#, "bad \\u escape"),
            (r#""\u-123""#, "bad \\u escape"),
            (r#""\u 123""#, "bad \\u escape"),
            (r#""\u12g4""#, "bad \\u escape"),
            (r#""\u12""#, "truncated \\u escape"),
            (r#""\u12"4""#, "bad \\u escape"),
            (r#""\u""#, "truncated \\u escape"),
            (r#""\ud800""#, "unpaired surrogate"),
            (r#""\ud800abcd""#, "unpaired surrogate"),
            (r#""\ud800\n""#, "unpaired surrogate"),
            (r#""\ud800\ud801""#, "invalid low surrogate"),
            (r#""\udc00\ud800""#, "invalid \\u escape"),
            (r#""\udfff""#, "invalid \\u escape"),
            (r#""\ud800\u+c00""#, "bad \\u escape"),
        ];
        for (bad, want) in cases {
            let err = JsonValue::parse(bad).expect_err(bad);
            let msg = err.to_string();
            assert!(msg.contains(want), "{bad:?}: got {msg:?}, want {want:?}");
        }
        // A truncated escape at end-of-input reports truncation, not a
        // generic bad-digit error.
        let err = JsonValue::parse("\"\\u00").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn writer_round_trips() {
        let src = r#"{"a":[1,2.5,null,true],"b":{"c":"x\"y\\z"},"d":-7}"#;
        let v = JsonValue::parse(src).unwrap();
        assert_eq!(JsonValue::parse(&v.to_json_string()).unwrap(), v);
        // Compact writer with preserved order is byte-stable.
        assert_eq!(v.to_json_string(), src);
    }

    #[test]
    fn integers_print_exactly() {
        assert_eq!(JsonValue::Num(3.0).to_json_string(), "3");
        assert_eq!(JsonValue::Num(-0.5).to_json_string(), "-0.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_json_string(), "null");
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        n: u32,
        xs: Vec<f64>,
        tag: Option<String>,
    }
    impl_json_struct!(Demo { n, xs, tag });

    #[test]
    fn struct_macro_round_trip() {
        let d = Demo {
            n: 3,
            xs: vec![1.5, -2.0],
            tag: None,
        };
        let v = d.to_json();
        assert_eq!(Demo::from_json(&v).unwrap(), d);
        assert!(Demo::from_json(&JsonValue::Null).is_err());
        assert!(Demo::from_json(&JsonValue::parse(r#"{"n":1}"#).unwrap()).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum DemoKind {
        Plain,
        Tagged { user: usize, on: bool },
    }
    impl_json_enum!(DemoKind { Plain, Tagged { user, on } });

    #[test]
    fn enum_macro_round_trip() {
        for k in [DemoKind::Plain, DemoKind::Tagged { user: 4, on: true }] {
            let v = k.to_json();
            assert_eq!(DemoKind::from_json(&v).unwrap(), k);
        }
        assert!(DemoKind::from_json(&JsonValue::Str("Nope".into())).is_err());
    }
}

//! A plain wall-clock benchmark harness (the in-tree `criterion` stand-in).
//!
//! Keeps criterion's calling shape so bench files port mechanically: a
//! [`Harness`] with [`Harness::bench_function`], a [`Bencher`] passed to the
//! closure with [`Bencher::iter`] / [`Bencher::iter_batched`], and
//! `std::hint::black_box` at the call sites. Instead of statistics over a
//! sampling plan it reports min / median / mean over a fixed number of
//! timed samples — enough to rank kernels and spot regressions while
//! staying dependency-free and fast.
//!
//! Environment knob: `VOLCAST_BENCH_SAMPLES` (default 20 timed samples per
//! benchmark, clamped to at least 1). Inner iterations per sample are
//! auto-scaled so one sample takes at least ~5 ms.
//!
//! ```
//! use volcast_util::timing::Harness;
//!
//! let mut h = Harness::new();
//! h.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).sum::<u64>())
//! });
//! ```

use crate::json::{JsonValue, ToJson};
use std::time::{Duration, Instant};

/// Target wall time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// One benchmark's timing summary, kept by the [`Harness`] for
/// machine-readable reporting (the `--json` mode of the microbench binary).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name as passed to [`Harness::bench_function`].
    pub name: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Inner iterations per timed sample (after calibration).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

impl ToJson for BenchRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("min_ns".into(), self.min_ns.to_json()),
            ("median_ns".into(), self.median_ns.to_json()),
            ("mean_ns".into(), self.mean_ns.to_json()),
            ("iters".into(), self.iters.to_json()),
            ("samples".into(), (self.samples as u64).to_json()),
        ])
    }
}

/// Collects and prints benchmark results.
#[derive(Debug, Default)]
pub struct Harness {
    samples: usize,
    records: Vec<BenchRecord>,
}

impl Harness {
    /// Creates a harness (reads `VOLCAST_BENCH_SAMPLES`, clamped to at
    /// least 1 — a zero-sample run has no summary to report).
    pub fn new() -> Self {
        let samples = std::env::var("VOLCAST_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20usize)
            .max(1);
        Harness {
            samples,
            records: Vec::new(),
        }
    }

    /// All results timed so far, in run order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// The results as a JSON array (one object per benchmark), for the
    /// `BENCH_<name>.json` perf-trajectory files.
    pub fn json_report(&self) -> JsonValue {
        JsonValue::Arr(self.records.iter().map(|r| r.to_json()).collect())
    }

    /// Times `f`, printing one result line: min / median / mean per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters: 1,
            total: Duration::ZERO,
        };

        // Calibrate: grow the inner iteration count until one sample takes
        // at least TARGET_SAMPLE.
        loop {
            b.total = Duration::ZERO;
            f(&mut b);
            if b.total >= TARGET_SAMPLE || b.iters >= 1 << 24 {
                break;
            }
            b.iters *= 2;
        }

        // Timed samples. `samples` was clamped to ≥ 1 in `new()` and
        // `iters` starts at 1, so the summary below never divides by
        // zero or indexes an empty vector.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            b.total = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.total.as_secs_f64() / b.iters.max(1) as f64);
        }
        let (min, median, mean) = summarize(&mut per_iter);
        self.records.push(BenchRecord {
            name: name.to_string(),
            min_ns: min * 1e9,
            median_ns: median * 1e9,
            mean_ns: mean * 1e9,
            iters: b.iters,
            samples: per_iter.len(),
        });
        println!(
            "{name:<36} min {:>10}  median {:>10}  mean {:>10}  ({} iters x {} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            b.iters,
            self.samples,
        );
    }
}

/// Sorts samples and returns `(min, median, mean)`.
///
/// Uses [`f64::total_cmp`] so a NaN sample (conceivable if a benched
/// closure misbehaves or the iteration count degenerates) sorts to the
/// end instead of aborting the whole bench run, and returns all-zero for
/// an empty slice instead of indexing out of bounds.
fn summarize(per_iter: &mut [f64]) -> (f64, f64, f64) {
    if per_iter.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    (min, median, mean)
}

/// Formats seconds with an adaptive unit.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to the benchmark closure; runs and times the measured code.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, T, S: FnMut() -> I, F: FnMut(I) -> T>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that mutate `VOLCAST_BENCH_SAMPLES` (process
    /// environment is shared across the test harness's threads).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn harness_runs_and_reports() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("VOLCAST_BENCH_SAMPLES", "2");
        let mut h = Harness::new();
        h.bench_function("noop", |b| b.iter(|| 1 + 1));
        h.bench_function("batched", |b| b.iter_batched(|| vec![1u8; 16], |v| v.len()));
        std::env::remove_var("VOLCAST_BENCH_SAMPLES");

        assert_eq!(h.records().len(), 2);
        assert_eq!(h.records()[0].name, "noop");
        assert!(h.records()[0].median_ns > 0.0);
        let json = h.json_report().to_json_string();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"batched\""));
        assert!(json.contains("\"median_ns\":"));
    }

    /// Regression: a NaN sample used to abort the run via
    /// `partial_cmp().unwrap()`; `total_cmp` sorts it to the end.
    #[test]
    fn summarize_tolerates_nan_samples() {
        let mut samples = vec![3.0, f64::NAN, 1.0, 2.0];
        let (min, median, _mean) = summarize(&mut samples);
        assert_eq!(min, 1.0);
        assert_eq!(median, 3.0);
        // And an empty slice reports zeros instead of panicking.
        assert_eq!(summarize(&mut []), (0.0, 0.0, 0.0));
    }

    /// Regression: `VOLCAST_BENCH_SAMPLES=0` used to index `per_iter[0]`
    /// out of bounds; the sample count is now clamped to ≥ 1.
    #[test]
    fn zero_sample_env_is_clamped() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("VOLCAST_BENCH_SAMPLES", "0");
        let mut h = Harness::new();
        h.bench_function("clamped", |b| b.iter(|| 1 + 1));
        std::env::remove_var("VOLCAST_BENCH_SAMPLES");
        assert_eq!(h.records().len(), 1);
        assert_eq!(h.records()[0].samples, 1);
        assert!(h.records()[0].mean_ns.is_finite());
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}

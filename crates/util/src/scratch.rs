//! Reusable scratch buffers: the allocation-free steady-state substrate.
//!
//! The frame data path (synthetic frame generation → codec → session loop)
//! runs the same shapes of work every frame at 30 FPS. Allocating fresh
//! `Vec`s per frame turns that steady state into allocator traffic — page
//! faults, zeroing, and cache churn that scale with user count. This module
//! provides the two primitives the workspace uses to keep per-frame
//! allocations at **zero after warm-up**:
//!
//! - [`ScratchVec`] — a named, owned buffer that is cleared (capacity
//!   retained) at the start of each use and remembers its high-watermark
//!   length. Stateful hot-path structs (`codec::Encoder`, the session
//!   loop) hold these as fields.
//! - [`Pool`] — a free-list of buffers for values that cross ownership
//!   boundaries (e.g. per-cell bitstreams handed to a caller and returned
//!   next frame). `take` hands out a cleared buffer reusing retired
//!   capacity; `put` retires one back.
//!
//! Both report their high watermarks through [`crate::obs`] gauges (merged
//! by maximum, so totals are thread-count-invariant) under the name given
//! at construction — by convention `<layer>.scratch.<buffer>`. When
//! tracing is off the reporting costs one relaxed atomic load.
//!
//! The **zero steady-state allocation** contract is pinned by tests using
//! the [`counting`] global allocator: warm the loop up once, snapshot
//! [`counting::allocations`], run N more iterations, and assert the count
//! did not move.
//!
//! ```
//! use volcast_util::scratch::ScratchVec;
//!
//! let mut points: ScratchVec<u32> = ScratchVec::new("doc.scratch.points");
//! for frame in 0..3u32 {
//!     let buf = points.begin(); // cleared, capacity retained
//!     buf.extend(0..frame * 100);
//! }
//! assert_eq!(points.high_watermark(), 100); // longest *completed* use
//! assert!(points.get().len() == 200); // current contents still readable
//! ```
//!
//! ```
//! use volcast_util::scratch::Pool;
//!
//! let mut pool: Pool<u8> = Pool::new("doc.scratch.bitstreams");
//! let mut a = pool.take();
//! a.extend_from_slice(b"frame 0 cell 0");
//! pool.put(a); // retired: its capacity backs the next take
//! let b = pool.take();
//! assert!(b.is_empty() && b.capacity() >= 14);
//! ```

use crate::obs;

/// A named reusable buffer: cleared at [`ScratchVec::begin`], capacity
/// retained across uses, high-watermark length tracked and reported.
#[derive(Debug)]
pub struct ScratchVec<T> {
    /// Gauge name reported to [`obs`] (convention: `layer.scratch.buf`).
    name: &'static str,
    buf: Vec<T>,
    high_len: usize,
}

impl<T> ScratchVec<T> {
    /// Creates an empty scratch buffer reporting under `name`.
    pub fn new(name: &'static str) -> Self {
        ScratchVec {
            name,
            buf: Vec::new(),
            high_len: 0,
        }
    }

    /// Starts a new use: records the previous use's length into the high
    /// watermark (and the `obs` gauge), clears the buffer, and returns it.
    /// The capacity — and therefore the steady-state allocation-freedom —
    /// is retained.
    #[inline]
    pub fn begin(&mut self) -> &mut Vec<T> {
        self.high_len = self.high_len.max(self.buf.len());
        if obs::enabled() {
            obs::gauge(self.name, self.high_len.max(self.buf.len()) as f64);
        }
        self.buf.clear();
        &mut self.buf
    }

    /// The current contents (the last use's data, until the next `begin`).
    #[inline]
    pub fn get(&self) -> &[T] {
        &self.buf
    }

    /// Mutable access to the current contents *without* clearing — for
    /// multi-pass algorithms that refill the same buffer mid-use.
    #[inline]
    pub fn get_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }

    /// Longest completed use so far (current in-progress use excluded).
    pub fn high_watermark(&self) -> usize {
        self.high_len
    }

    /// Current reserved capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// A free-list of reusable `Vec<T>` buffers for values that cross
/// ownership boundaries.
///
/// Unlike [`ScratchVec`] (one buffer, one owner), a pool hands buffers
/// *out*: `take` transfers ownership to the caller, `put` retires a
/// buffer's capacity back for the next `take`. The pool never shrinks on
/// its own; it converges on the steady-state working set.
#[derive(Debug)]
pub struct Pool<T> {
    /// Gauge name reported to [`obs`].
    name: &'static str,
    free: Vec<Vec<T>>,
    /// Largest retired-buffer length seen.
    high_len: usize,
    /// Buffers created because the free list was empty.
    misses: usize,
}

impl<T> Pool<T> {
    /// Creates an empty pool reporting under `name`.
    pub fn new(name: &'static str) -> Self {
        Pool {
            name,
            free: Vec::new(),
            high_len: 0,
            misses: 0,
        }
    }

    /// Hands out an empty buffer, reusing retired capacity (LIFO — the
    /// most recently retired buffer is cache- and size-warmest).
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Retires a buffer: clears it (dropping its elements, keeping its
    /// capacity) and makes it available to the next [`Pool::take`].
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        self.high_len = self.high_len.max(buf.len());
        if obs::enabled() {
            obs::gauge(self.name, self.high_len as f64);
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Longest buffer length seen at retirement.
    pub fn high_watermark(&self) -> usize {
        self.high_len
    }

    /// Number of `take` calls that had to create a fresh buffer. In an
    /// allocation-free steady state this stops growing after warm-up.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Buffers currently retired and available.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

/// A counting global allocator for pinning allocation-freedom in tests.
///
/// Install it in a test binary and assert that the allocation count does
/// not move across the steady-state region:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: volcast_util::scratch::counting::CountingAllocator =
///     volcast_util::scratch::counting::CountingAllocator;
///
/// // ... warm up ...
/// let before = volcast_util::scratch::counting::allocations();
/// // ... steady-state iterations ...
/// assert_eq!(volcast_util::scratch::counting::allocations(), before);
/// ```
///
/// The counters are process-global: such a test must run in its own test
/// binary (one `#[test]` per file, or serialized), because the harness and
/// sibling tests allocate concurrently.
pub mod counting {
    // The one place in the workspace that needs `unsafe`: implementing
    // `GlobalAlloc` (its methods are `unsafe fn` by definition). The impl
    // only counts and forwards to `System`.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to the system allocator, counting every allocation.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingAllocator;

    // SAFETY: delegates every method to `System`, which upholds the
    // `GlobalAlloc` contract; the atomic counter updates on the side never
    // touch the returned memory or the layout.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc is a fresh acquisition of memory: count it.
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Heap acquisitions so far (allocs + reallocs), process-wide.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Deallocations so far, process-wide.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far (allocs + reallocs), process-wide.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_vec_retains_capacity_and_tracks_watermark() {
        let mut s: ScratchVec<u64> = ScratchVec::new("test.scratch.a");
        s.begin().extend(0..500);
        assert_eq!(s.get().len(), 500);
        assert_eq!(s.high_watermark(), 0, "in-progress use not counted");
        let cap = s.capacity();
        s.begin().extend(0..10);
        assert_eq!(s.high_watermark(), 500);
        assert!(s.capacity() >= cap, "capacity must be retained");
        s.get_mut().push(99);
        assert_eq!(s.get().len(), 11);
        s.begin();
        assert_eq!(s.high_watermark(), 500);
    }

    #[test]
    fn pool_recycles_lifo_and_counts_misses() {
        let mut p: Pool<u8> = Pool::new("test.scratch.pool");
        let mut a = p.take();
        assert_eq!(p.misses(), 1);
        a.extend_from_slice(&[1, 2, 3]);
        let a_cap = a.capacity();
        p.put(a);
        assert_eq!(p.high_watermark(), 3);
        assert_eq!(p.available(), 1);
        let b = p.take();
        assert_eq!(p.misses(), 1, "reuse is not a miss");
        assert!(b.is_empty());
        assert!(b.capacity() >= a_cap.min(3));
        p.put(b);
        // LIFO: last retired comes back first.
        let mut big = p.take();
        big.resize(1000, 0);
        p.put(big);
        let c = p.take();
        assert!(c.capacity() >= 1000);
        assert_eq!(p.high_watermark(), 1000);
    }

    #[test]
    fn counting_allocator_counters_are_monotonic() {
        // The counting allocator is not installed in this binary (its
        // counters would race with the parallel test harness); just pin
        // that the accessors exist and never go backwards.
        let a0 = counting::allocations();
        let d0 = counting::deallocations();
        let b0 = counting::allocated_bytes();
        assert!(counting::allocations() >= a0);
        assert!(counting::deallocations() >= d0);
        assert!(counting::allocated_bytes() >= b0);
    }
}

//! A `proptest`-lite property-testing runner.
//!
//! Supports the subset of the proptest API the workspace's `properties.rs`
//! suites use, with deterministic seeding and failure-seed reporting instead
//! of shrinking:
//!
//! - the [`proptest!`](crate::proptest) macro wrapping `#[test] fn
//!   name(x in strategy, ...) { ... }` blocks,
//! - [`Strategy`] implementations for numeric ranges, tuples, and constants,
//!   plus [`Strategy::prop_map`] for derived strategies,
//! - [`collection::vec`] and [`any`],
//! - [`prop_assert!`](crate::prop_assert) /
//!   [`prop_assert_eq!`](crate::prop_assert_eq).
//!
//! Each test runs `cases = 64` cases by default (override with the
//! `VOLCAST_PROP_CASES` env var). Case *i* of test *t* draws its inputs from
//! an [`Rng`] seeded with `fnv1a(t) ^ i` — fully deterministic across runs
//! and platforms. On failure the harness reports the case seed; re-run just
//! that case by setting `VOLCAST_PROP_SEED=<seed>`.
//!
//! ```
//! use volcast_util::prop::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rng::{Rng, SampleRange};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Derives a strategy by mapping generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                SampleRange::<$t>::sample(self.clone(), rng)
            }
        }
    )+};
}

impl_strategy_for_range!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Strategy for any value of a type with an obvious uniform distribution
/// (see [`ArbitraryValue`]).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Types usable with [`any`].
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.gen()
            }
        }
    )+};
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, f32, f64);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::Range;

    /// Number of elements for [`vec()`]: a fixed count or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 64;

/// Per-block configuration, accepted by the
/// [`proptest!`](crate::proptest) macro's `#![proptest_config(...)]`
/// header for source compatibility with proptest.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// FNV-1a hash of the test name: the per-test base seed.
fn fnv1a(name: &str) -> u64 {
    crate::hash::fnv1a(name.as_bytes())
}

/// Runs `body` once per case with a deterministically seeded [`Rng`],
/// using [`DEFAULT_CASES`] cases (see [`run_cases_n`]).
pub fn run_cases<F: FnMut(&mut Rng)>(name: &str, body: F) {
    run_cases_n(name, DEFAULT_CASES, body)
}

/// Runs `body` once per case with a deterministically seeded [`Rng`].
///
/// This is the engine behind the [`proptest!`](crate::proptest) macro; call
/// it directly for properties whose inputs do not fit the macro grammar.
/// Panics (from `prop_assert!` or anything else) are caught, annotated with
/// the failing case's seed, and re-raised. The `VOLCAST_PROP_CASES` env var
/// overrides `n_cases`; `VOLCAST_PROP_SEED` re-runs a single failing case.
pub fn run_cases_n<F: FnMut(&mut Rng)>(name: &str, n_cases: u64, mut body: F) {
    if let Some(seed) = std::env::var("VOLCAST_PROP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
        return;
    }
    let n = std::env::var("VOLCAST_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(n_cases);
    let base = fnv1a(name);
    for case in 0..n {
        let seed = base ^ case;
        let mut rng = Rng::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "property '{name}' failed at case {case} (seed {seed}); \
                 re-run just this case with VOLCAST_PROP_SEED={seed}"
            );
            resume_unwind(panic);
        }
    }
}

/// Everything a property-test file needs: mirrors `proptest::prelude::*`.
pub mod prelude {
    pub use super::{any, collection, Just, ProptestConfig, Strategy};
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` that runs
/// [`run_cases`] cases, binding every `name in strategy` argument to a fresh
/// sample per case.
///
/// ```
/// use volcast_util::prop::prelude::*;
///
/// proptest! {
///     #[test]
///     fn doubling_is_even(x in 0u32..1000) {
///         prop_assert_eq!((x * 2) % 2, 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                $crate::prop::run_cases_n(stringify!($name), ($cfg).cases, |__vc_rng| {
                    $(let $arg = $crate::prop::Strategy::generate(&($strat), __vc_rng);)+
                    // Result wrapper so bodies may early-exit with `return Ok(())`.
                    #[allow(clippy::redundant_closure_call)]
                    let __vc_result: ::core::result::Result<(), ()> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    let _ = __vc_result;
                });
            }
        )+
    };
    ($($(#[$attr:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                $crate::prop::run_cases(stringify!($name), |__vc_rng| {
                    $(let $arg = $crate::prop::Strategy::generate(&($strat), __vc_rng);)+
                    // Result wrapper so bodies may early-exit with `return Ok(())`.
                    #[allow(clippy::redundant_closure_call)]
                    let __vc_result: ::core::result::Result<(), ()> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    let _ = __vc_result;
                });
            }
        )+
    };
}

/// Asserts a condition inside a property; on failure the runner reports the
/// failing case's seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "property violated: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u32..20, y in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn vec_sizes(xs in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
        }

        #[test]
        fn fixed_size_vec(xs in collection::vec(any::<bool>(), 5)) {
            prop_assert_eq!(xs.len(), 5);
        }
    }

    #[test]
    fn failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            super::run_cases("always_fails", |_rng| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        super::run_cases("det", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        super::run_cases("det", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}

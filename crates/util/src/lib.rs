//! # volcast-util
//!
//! The dependency-free substrate that keeps the volcast workspace building
//! hermetically: no registry access, no vendored crates, `CARGO_NET_OFFLINE=true`
//! always works. Every external crate the workspace once pulled in (`rand`,
//! `serde`/`serde_json`, `proptest`, `criterion`) is replaced by a small,
//! deterministic, in-tree equivalent:
//!
//! - [`rng`] — a SplitMix64-seeded xoshiro256++ PRNG with the handful of
//!   sampling methods the workspace actually uses (`gen_range`, `gen`,
//!   `gen_bool`, `shuffle`, `normal`). Same seed ⇒ same stream, on every
//!   platform, forever.
//! - [`json`] — a [`json::JsonValue`] tree with a compact writer and a
//!   recursive-descent parser, plus [`json::ToJson`] / [`json::FromJson`]
//!   traits and the [`impl_json_struct!`] / [`impl_json_enum!`] macros that
//!   replace `#[derive(Serialize, Deserialize)]`.
//! - [`prop`] — a `proptest`-lite property runner: the [`proptest!`] macro,
//!   composable [`prop::Strategy`] values (ranges, tuples,
//!   `prop::collection::vec`, [`prop::any`]), deterministic per-case seeds
//!   and failure-seed reporting.
//! - [`timing`] — a plain wall-clock benchmark harness standing in for
//!   `criterion` (warm-up, fixed sample count, min/median/mean report,
//!   optional machine-readable JSON records).
//! - [`par`] — a scoped-thread data-parallel substrate standing in for
//!   `rayon` (`par_map` / `par_map_indexed` / `chunked`), sized by
//!   `VOLCAST_THREADS` and bit-for-bit deterministic across thread counts.
//! - [`obs`] — an observability layer (counters, gauges, log-scale
//!   histograms, wall-clock spans) gated by `VOLCAST_TRACE`, with
//!   per-thread sinks that merge deterministically at [`par`] join and a
//!   JSON-exportable [`obs::MetricsSnapshot`].
//! - [`hash`] — frozen 64-bit FNV-1a hashing ([`hash::fnv1a`]) for stable
//!   fingerprints of serialized output (property-test seeds, the
//!   fault-scenario harness's `SessionOutcome` FNVs).
//! - [`bitset`] — a growable [`bitset::BitSet`] over `u64` words, the
//!   population-scale replacement for fixed 64-bit membership masks
//!   (fault plans, multicast group membership).
//! - [`scratch`] — reusable scratch buffers ([`scratch::ScratchVec`],
//!   [`scratch::Pool`]) with high-watermark gauges, plus a counting global
//!   allocator ([`scratch::counting`]) for pinning zero-allocation
//!   steady states in tests.
//!
//! ## Determinism guarantees
//!
//! Everything in this crate is deterministic by construction: the PRNG is a
//! pure integer recurrence, JSON objects preserve insertion order, and the
//! property runner derives each case's seed from the test name and case
//! index. Two runs of any seeded volcast experiment produce byte-identical
//! output.
//!
//! ```
//! use volcast_util::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
//! let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
//! assert_eq!(xs, ys);
//! ```
//!
//! ```
//! use volcast_util::json::{JsonValue, ToJson, FromJson};
//!
//! let v = JsonValue::parse(r#"{"name": "volcast", "users": [1, 2, 3]}"#).unwrap();
//! let users: Vec<u64> = FromJson::from_json(v.get("users").unwrap()).unwrap();
//! assert_eq!(users, vec![1, 2, 3]);
//! assert_eq!(users.to_json().to_json_string(), "[1,2,3]");
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is
// `scratch::counting`, whose `GlobalAlloc` impl is unsafe by definition
// and carries a scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// The `prop` docs show `proptest! { #[test] fn ... }` exactly as callers
// write it; those examples are compile-checked, not run, which is intended.
#![allow(clippy::test_attr_in_doctest)]

pub mod bitset;
pub mod hash;
pub mod json;
pub mod obs;
pub mod par;
pub mod prop;
pub mod rng;
pub mod scratch;
pub mod timing;

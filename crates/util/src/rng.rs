//! Deterministic pseudo-random numbers.
//!
//! [`Rng`] is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, the
//! standard pairing: SplitMix64 decorrelates arbitrary user seeds (including
//! 0 and small integers) into full 256-bit state, and xoshiro256++ gives a
//! fast, high-quality stream with period 2^256 − 1. The API mirrors the
//! subset of the `rand` crate the workspace used, so call sites read the
//! same: `gen_range`, `gen`, `gen_bool`, `shuffle`, plus Gaussian sampling
//! via [`Rng::normal`].
//!
//! Unlike `rand`'s `StdRng` (whose stream may change between crate versions)
//! this generator is frozen: the same seed yields the same sequence on every
//! platform and in every future version of volcast. Seeded experiments are
//! therefore reproducible byte-for-byte.
//!
//! ```
//! use volcast_util::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let x: f64 = rng.gen();              // uniform [0, 1)
//! let k = rng.gen_range(0..10usize);   // uniform integer
//! let f = rng.gen_range(-1.0..1.0);    // uniform float
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! assert!((-1.0..1.0).contains(&f));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: expands a 64-bit seed into decorrelated state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Construct with [`Rng::seed_from_u64`]; all sampling methods consume the
/// stream in a fixed, documented order, so a given seed always produces the
/// same values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// A generator for stream `stream` of a family keyed by `base_seed`.
    ///
    /// This is the seed-splitting rule for deterministic parallelism (see
    /// [`crate::par`]): each work item draws from its own generator keyed by
    /// `(base_seed, item_index)`, so the values it sees are independent of
    /// how items are scheduled across threads. The split runs both words
    /// through SplitMix64 before mixing, so `(7, 0)` and `(0, 7)` — and any
    /// other colliding sums — land in decorrelated states.
    pub fn for_stream(base_seed: u64, stream: u64) -> Self {
        let mut a = base_seed;
        let mut b = stream ^ 0x6A09_E667_F3BC_C909; // sqrt(2) bits: offset stream 0
        let mixed = splitmix64(&mut a) ^ splitmix64(&mut b);
        Rng::seed_from_u64(mixed)
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (see [`FromRng`] for the conventions).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from a range, e.g. `0..10usize`, `-1.0..1.0`, or
    /// `-12i16..=12`. The element type follows the calling context, like
    /// `rand`'s `gen_range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A Gaussian sample with the given mean and standard deviation
    /// (Box–Muller; consumes exactly two uniforms per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.gen::<f64>();
        let u2: f64 = self.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
///
/// Conventions match `rand`'s `Standard` distribution: floats are uniform in
/// `[0, 1)`, integers over their full range, `bool` is a fair coin.
pub trait FromRng {
    /// Draws one value.
    fn from_rng(rng: &mut Rng) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for u16 {
    fn from_rng(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl FromRng for u8 {
    fn from_rng(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Rng) -> Self {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges over `T` that can be sampled uniformly (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = rng.gen();
        // Clamp keeps rounding at the top of huge ranges inside [start, end).
        (self.start + u * (self.end - self.start)).min(f64_prev(self.end))
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut Rng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

/// Largest double strictly below `x` (for half-open float ranges).
fn f64_prev(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(x.to_bits() - 1)
    } else {
        x
    }
}

/// Unbiased integer in `[0, bound)` by Lemire's widening-multiply method
/// with rejection.
fn uniform_below(rng: &mut Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_xoshiro() {
        // Stream freeze: these values must never change across versions.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.gen_range(3..17usize);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(-12i16..=12);
            assert!((-12..=12).contains(&j));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = Rng::seed_from_u64(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0u8..=3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn stream_splitting_is_deterministic_and_decorrelated() {
        // Same (base, stream) pair: identical generator.
        let mut a = Rng::for_stream(42, 3);
        let mut b = Rng::for_stream(42, 3);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Distinct streams of the same family diverge, as do the swapped
        // pair and the plain seed of the same integer.
        let first = |mut r: Rng| r.next_u64();
        let seen = [
            first(Rng::for_stream(42, 3)),
            first(Rng::for_stream(42, 4)),
            first(Rng::for_stream(3, 42)),
            first(Rng::for_stream(43, 3)),
            first(Rng::seed_from_u64(45)),
        ];
        for i in 0..seen.len() {
            for j in i + 1..seen.len() {
                assert_ne!(seen[i], seen[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }
}

//! Deterministic data parallelism over scoped threads.
//!
//! The workspace's hot loops — per-user visibility maps, codebook sector
//! sweeps, pairwise IoU sweeps, multi-config experiment replication — are
//! embarrassingly parallel, but the workspace is intentionally
//! dependency-free (`DESIGN.md` §7), so `rayon` is not an option. This
//! module is the in-tree substitute: [`par_map`], [`par_map_indexed`] and
//! [`chunked`] fan work out over `std::thread::scope` workers and return
//! results **in input order**.
//!
//! ## The determinism contract
//!
//! Running under `VOLCAST_THREADS=1` and `VOLCAST_THREADS=N` must produce
//! **byte-identical** results. The module guarantees its half of that
//! contract by construction:
//!
//! - results are collected positionally (`out[i]` is `f(items[i])`),
//!   regardless of which worker computed them or in what order they
//!   finished;
//! - no reduction reorders floating-point operations — callers that fold
//!   over the returned `Vec` do so in input order on the calling thread.
//!
//! Callers own the other half: the mapped closure must be a pure function
//! of `(item, index)`. Per-item randomness must therefore derive its seed
//! from `(base_seed, item_index)` — use [`crate::rng::Rng::for_stream`],
//! the SplitMix64 stream splitter — or pre-draw all random parameters
//! sequentially *before* the parallel region, never share one mutable
//! generator across items.
//!
//! ## The worker budget
//!
//! The thread budget is lazily initialized, shared process-wide, and read
//! from `VOLCAST_THREADS` (default: available parallelism; `1` forces the
//! serial path for debugging). Workers themselves are *scoped* threads
//! spawned per region: a persistent pool cannot execute closures that
//! borrow the caller's stack without `unsafe` lifetime erasure, which this
//! crate forbids, and the spawn cost (tens of microseconds) is noise
//! against the millisecond-scale regions the workspace parallelizes. See
//! `DESIGN.md` §8 for the full rationale.
//!
//! Nested parallel regions do not oversubscribe: a `par_map` issued from
//! inside a worker runs serially on that worker.
//!
//! Because workers are scoped threads, their thread-local destructors run
//! before the region's `join()` returns — [`crate::obs`] relies on this
//! to flush each worker's metric sink into the global registry by the
//! time `par_map` hands results back to the caller.
//!
//! ```
//! use volcast_util::par;
//!
//! let squares = par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let labeled = par::par_map_indexed(&["a", "b"], |i, s| format!("{i}:{s}"));
//! assert_eq!(labeled, vec!["0:a", "1:b"]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker budget; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `true` while this thread is a worker inside a parallel region.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The worker budget for parallel regions.
///
/// Resolved lazily on first use: `VOLCAST_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (falling back
/// to 1). The resolved value is process-wide and stable afterwards; tests
/// and benches may override it with [`set_thread_count`].
pub fn thread_count() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = std::env::var("VOLCAST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Racing initializers compute the same value unless the env changed
    // mid-race; first store wins either way, keeping the budget stable.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Overrides the worker budget (clamped to at least 1).
///
/// Intended for tests and benches that compare thread counts in-process;
/// production code should use the `VOLCAST_THREADS` environment variable.
pub fn set_thread_count(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// `true` when the calling thread is itself a worker of an enclosing
/// parallel region (nested regions run serially).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — same values, same
/// order — but computed by up to [`thread_count`] scoped workers. Panics
/// in `f` are propagated to the caller (the first observed panic payload
/// is resumed after all workers have been joined).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure.
///
/// The index is the key to deterministic per-item randomness: derive each
/// item's seed from `(base_seed, index)` via
/// [`crate::rng::Rng::for_stream`] and the output is independent of the
/// worker budget.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count().min(n);
    if workers <= 1 || in_parallel_region() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
    });

    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map: worker skipped an item"))
        .collect()
}

/// Applies `f` to every item of `items` **in place**, in parallel: the
/// mutable analogue of [`par_map_indexed`] for pre-allocated slots (e.g. a
/// GOP of per-frame codec arenas, each owning its scratch and output
/// buffers).
///
/// Work is split into contiguous chunks of `ceil(n / workers)` items, one
/// chunk per scoped worker, so each slot is touched by exactly one thread
/// and no result collection or copying happens. Determinism follows the
/// module contract: `f` must be a pure function of `(index, item)`, and
/// then the final slot states are independent of the worker budget —
/// chunking only decides *who* runs an item, never *what* it computes.
/// Nested calls from inside a parallel region run serially on the calling
/// worker; panics in `f` propagate to the caller after all workers joined.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = thread_count().min(n);
    if workers <= 1 || in_parallel_region() {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, run) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                for (j, item) in run.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
        // `scope` joins every worker before returning and re-raises the
        // first panic, matching par_map's propagation behaviour.
    });
}

/// Maps `f` over `items` in parallel with chunked scheduling: workers
/// claim contiguous runs of `chunk_size` items, which amortizes the
/// claim-an-item synchronization for very cheap `f`. Results are returned
/// in input order; `chunk_size` has no effect on values, only throughput.
pub fn chunked<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let chunk = chunk_size.max(1);
    let n_chunks = n.div_ceil(chunk);
    let workers = thread_count().min(n_chunks);
    if workers <= 1 || in_parallel_region() {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut parts: Vec<Option<Vec<R>>> = Vec::with_capacity(n_chunks);
    parts.resize_with(n_chunks, || None);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        local.push((c, items[start..end].iter().map(&f).collect()));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (c, rs) in pairs {
                        parts[c] = Some(rs);
                    }
                }
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
    });

    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    parts
        .into_iter()
        .flat_map(|part| part.expect("chunked: worker skipped a chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for threads in [1, 2, 4, 8] {
            set_thread_count(threads);
            assert_eq!(par_map(&items, |&x| x.wrapping_mul(x) ^ 7), serial);
        }
        set_thread_count(4);
    }

    #[test]
    fn par_map_indexed_passes_indices_in_order() {
        set_thread_count(4);
        let items = vec!["x"; 100];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        set_thread_count(4);
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
        assert_eq!(chunked(&[] as &[u32], 8, |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn chunked_matches_map_for_all_chunk_sizes() {
        set_thread_count(4);
        let items: Vec<i64> = (-40..60).collect();
        let serial: Vec<i64> = items.iter().map(|&x| 3 * x - 1).collect();
        for chunk in [1, 2, 3, 7, 100, 1000] {
            assert_eq!(chunked(&items, chunk, |&x| 3 * x - 1), serial);
        }
        // chunk_size 0 is clamped, not a panic or a hang.
        assert_eq!(chunked(&items, 0, |&x| 3 * x - 1), serial);
    }

    #[test]
    fn par_for_each_mut_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..257u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        for threads in [1, 2, 4, 8] {
            set_thread_count(threads);
            let mut items: Vec<u64> = (0..257).collect();
            par_for_each_mut(&mut items, |i, x| {
                assert_eq!(i as u64, *x);
                *x = x.wrapping_mul(*x) ^ 7;
            });
            assert_eq!(items, serial, "threads={threads}");
        }
        set_thread_count(4);
    }

    #[test]
    fn par_for_each_mut_empty_and_singleton() {
        set_thread_count(4);
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| unreachable!());
        let mut one = vec![5u32];
        par_for_each_mut(&mut one, |i, x| *x += i as u32 + 1);
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn par_for_each_mut_nested_runs_serially() {
        set_thread_count(4);
        let outer: Vec<u32> = (0..8).collect();
        let out = par_map(&outer, |&x| {
            let mut inner: Vec<u32> = (0..4).collect();
            par_for_each_mut(&mut inner, |_, y| {
                assert!(in_parallel_region());
                *y += x * 10;
            });
            inner.iter().sum::<u32>()
        });
        let expect: Vec<u32> = (0..8).map(|x| 4 * (x * 10) + 6).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_for_each_mut_panics_propagate() {
        set_thread_count(4);
        let mut items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_each_mut(&mut items, |_, x| {
                if *x == 33 {
                    panic!("boom at {x}");
                }
            })
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    #[test]
    fn panics_propagate_to_caller() {
        set_thread_count(4);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 33"), "unexpected payload {msg}");
    }

    #[test]
    fn nested_regions_run_serially_and_correctly() {
        set_thread_count(4);
        let outer: Vec<u32> = (0..8).collect();
        let out = par_map(&outer, |&x| {
            assert!(thread_count() > 1);
            // The nested region must take the serial path on this worker.
            let inner: Vec<u32> = (0..4).collect();
            let nested = par_map(&inner, |&y| {
                assert!(in_parallel_region());
                x * 10 + y
            });
            nested.iter().sum::<u32>()
        });
        let expect: Vec<u32> = (0..8).map(|x| 4 * (x * 10) + 6).collect();
        assert_eq!(out, expect);
        // Back on the caller: not inside a region anymore.
        assert!(!in_parallel_region());
    }

    #[test]
    fn regions_are_reusable_and_budget_is_stable() {
        set_thread_count(3);
        for round in 0..20 {
            let items: Vec<usize> = (0..50).collect();
            let out = par_map(&items, |&x| x + round);
            assert_eq!(out[49], 49 + round);
            assert_eq!(thread_count(), 3);
        }
        set_thread_count(4);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
        set_thread_count(0); // clamped
        assert_eq!(thread_count(), 1);
        set_thread_count(4);
    }
}

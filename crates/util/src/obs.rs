//! Zero-dependency observability: counters, gauges, histograms, spans.
//!
//! The workspace argues cross-layer: a QoE symptom (a stall, a quality
//! drop) is caused by a decision several layers down (a grouping choice, a
//! beam switch, a dropped MAC item). This module is the measurement
//! substrate that lets a run *explain itself*: hot paths record counters,
//! high-watermark gauges, log-scale histograms and wall-clock spans under
//! hierarchical names (`session.frames`, `net.sim.dropped_items`,
//! `mmwave.designer.sweeps`, `codec.cells_encoded`), and a
//! [`MetricsSnapshot`] exports the totals through the in-tree JSON layer.
//!
//! ## Enablement and disabled-path cost
//!
//! Tracing is **off by default** and controlled by the `VOLCAST_TRACE`
//! environment variable (`1` or `true` enables it), resolved lazily the
//! same way `VOLCAST_THREADS` is. Every recording entry point begins with
//! a single relaxed atomic load ([`enabled`]) and returns immediately when
//! tracing is off — no locks, no thread-local access, no allocation — so
//! instrumented hot paths cost one predictable branch when disabled.
//! Tests and benches may override the environment with [`set_enabled`].
//!
//! ## The determinism contract
//!
//! Counts must not depend on the worker budget: `VOLCAST_THREADS=1` and
//! `VOLCAST_THREADS=N` must report identical totals. Each thread records
//! into a private thread-local sink; worker sinks flush into the global
//! registry when the worker terminates, which for [`crate::par`] regions
//! happens *before* `par_map` returns (scoped threads run thread-local
//! destructors before they are joined). Every merge operation is
//! commutative and associative — counter adds, bucket adds, min/max — so
//! the merged totals are independent of worker count and join order,
//! provided the mapped closures themselves are pure (the same contract
//! [`crate::par`] already imposes).
//!
//! Wall-clock values are the deliberate exception: span *durations* are
//! machine- and schedule-dependent and therefore non-deterministic.
//! [`MetricsSnapshot::deterministic`] strips them (keeping span *counts*,
//! which are deterministic) so snapshots can be byte-compared across
//! thread counts and commits.
//!
//! ## Naming scheme
//!
//! Dot-separated, `layer.component.metric`, lowercase with underscores:
//! `session.stalls`, `net.plan.airtime_us`, `mmwave.designer.path_cache_hits`,
//! `codec.cell_bytes`, `viewport.visibility.maps`. Histogram names carry
//! their unit as a suffix (`_us`, `_bytes`); span histograms are kept in a
//! separate section and always record nanoseconds.
//!
//! ```
//! use volcast_util::obs;
//!
//! obs::set_enabled(true);
//! obs::reset();
//! obs::inc("doc.frames");
//! obs::add("doc.bytes", 1500);
//! obs::record("doc.cell_bytes", 700);
//! {
//!     let _span = obs::span("doc.encode");
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters[1].name, "doc.frames");
//! assert_eq!(snap.counters[1].value, 1);
//! assert_eq!(snap.spans[0].count, 1);
//! // Wall-clock durations are stripped from the comparable form.
//! assert_eq!(snap.deterministic().spans[0].sum, 0);
//! obs::set_enabled(false);
//! obs::reset();
//! ```

use crate::impl_json_struct;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tri-state enable flag: 0 = unresolved, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// `true` when tracing is on.
///
/// Resolved lazily on first call: enabled iff `VOLCAST_TRACE` is `1` or
/// `true`, disabled otherwise (including when unset). The resolved value
/// is process-wide and stable afterwards; tests override it with
/// [`set_enabled`]. This is the fast path guarding every recording entry
/// point: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => resolve_enabled(),
        2 => true,
        _ => false,
    }
}

/// Slow path of [`enabled`]: reads `VOLCAST_TRACE` once.
#[cold]
fn resolve_enabled() -> bool {
    let on = matches!(
        std::env::var("VOLCAST_TRACE").ok().as_deref(),
        Some("1") | Some("true")
    );
    let coded = if on { 2 } else { 1 };
    // Racing initializers compute the same value unless the env changed
    // mid-race; first store wins either way.
    let _ = ENABLED.compare_exchange(0, coded, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed) == 2
}

/// Overrides the `VOLCAST_TRACE` resolution (for tests and benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A log₂-bucketed value distribution, merged commutatively.
#[derive(Debug, Clone, Default)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts values in bucket `i`; bucket 0 holds the value
    /// 0 and bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
    buckets: Vec<u64>,
}

/// Bucket index for a value: 0 for 0, otherwise `⌊log₂ v⌋ + 1`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }
}

/// Per-thread staging area; merged into [`REGISTRY`] when the thread
/// terminates (or explicitly, from [`snapshot`] / [`reset`]).
#[derive(Default)]
struct LocalSink {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
    spans: BTreeMap<&'static str, Hist>,
}

impl LocalSink {
    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Moves everything into the global registry, leaving `self` empty.
    fn flush(&mut self) {
        if self.is_empty() {
            return;
        }
        let mut reg = lock_registry();
        for (name, v) in std::mem::take(&mut self.counters) {
            *reg.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in std::mem::take(&mut self.gauges) {
            let slot = reg.gauges.entry(name).or_insert(f64::NEG_INFINITY);
            if v > *slot {
                *slot = v;
            }
        }
        for (name, h) in std::mem::take(&mut self.hists) {
            reg.hists.entry(name).or_default().merge(&h);
        }
        for (name, h) in std::mem::take(&mut self.spans) {
            reg.spans.entry(name).or_default().merge(&h);
        }
    }
}

impl Drop for LocalSink {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static SINK: RefCell<LocalSink> = RefCell::new(LocalSink::default());
}

/// Runs `f` on this thread's sink; a no-op during thread teardown (after
/// the sink's destructor has already flushed).
fn with_sink(f: impl FnOnce(&mut LocalSink)) {
    let _ = SINK.try_with(|s| {
        if let Ok(mut sink) = s.try_borrow_mut() {
            f(&mut sink);
        }
    });
}

/// Merged process-wide totals.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
    spans: BTreeMap<&'static str, Hist>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
    spans: BTreeMap::new(),
});

/// Poison-tolerant registry lock (a panicking worker must not wedge the
/// whole process's metrics).
fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Adds `delta` to the counter `name`. No-op when tracing is disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_sink(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Adds 1 to the counter `name`. No-op when tracing is disabled.
#[inline]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Raises the high-watermark gauge `name` to at least `value`.
///
/// Gauges are merged by **maximum** (the only last-writer-free, and hence
/// thread-count-deterministic, combination), so a gauge reads as "the
/// largest value observed anywhere this run". No-op when disabled.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|s| {
        let slot = s.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    });
}

/// Records `value` into the log₂ histogram `name`. No-op when disabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_sink(|s| s.hists.entry(name).or_default().record(value));
}

/// An RAII wall-clock timer; its drop records the elapsed nanoseconds
/// into the span histogram it was opened with.
///
/// Span durations are wall clock and therefore **non-deterministic**:
/// they appear in the `spans` section of a [`MetricsSnapshot`] and are
/// stripped (durations zeroed, counts kept) by
/// [`MetricsSnapshot::deterministic`].
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `name`. When tracing is disabled the returned guard
/// is inert (no clock read, no recording).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_sink(|s| s.spans.entry(self.name).or_default().record(ns));
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Hierarchical metric name.
    pub name: String,
    /// Merged total.
    pub value: u64,
}
impl_json_struct!(CounterSnapshot { name, value });

/// One high-watermark gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Hierarchical metric name.
    pub name: String,
    /// Largest value observed by any thread.
    pub value: f64,
}
impl_json_struct!(GaugeSnapshot { name, value });

/// One histogram (or span histogram) in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Hierarchical metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value (0 when `count == 0`).
    pub max: u64,
    /// `buckets[0]` counts zeros; `buckets[i]` counts values in
    /// `[2^(i-1), 2^i)`. Trailing empty buckets are omitted.
    pub buckets: Vec<u64>,
}
impl_json_struct!(HistogramSnapshot {
    name,
    count,
    sum,
    min,
    max,
    buckets
});

/// A point-in-time export of every metric recorded so far, sorted by
/// name within each section. Serializes through the in-tree JSON layer
/// (`results/obs_*.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// High-watermark gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Value histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span (wall-clock) histograms, sorted by name. Durations are
    /// non-deterministic; counts are deterministic.
    pub spans: Vec<HistogramSnapshot>,
}
impl_json_struct!(MetricsSnapshot {
    counters,
    gauges,
    histograms,
    spans
});

impl MetricsSnapshot {
    /// The comparable subset: everything except wall-clock durations.
    ///
    /// Span histograms keep their `count` (how many times each span ran —
    /// deterministic) but have `sum`/`min`/`max`/`buckets` zeroed, so two
    /// runs of the same seeded workload serialize byte-identically
    /// regardless of `VOLCAST_THREADS` or machine speed.
    pub fn deterministic(&self) -> MetricsSnapshot {
        let mut out = self.clone();
        for s in &mut out.spans {
            s.sum = 0;
            s.min = 0;
            s.max = 0;
            s.buckets.clear();
        }
        out
    }
}

fn hist_snapshot(name: &str, h: &Hist) -> HistogramSnapshot {
    HistogramSnapshot {
        name: name.to_string(),
        count: h.count,
        sum: h.sum,
        min: if h.count == 0 { 0 } else { h.min },
        max: if h.count == 0 { 0 } else { h.max },
        buckets: h.buckets.clone(),
    }
}

/// Flushes the calling thread's sink and exports the merged totals.
///
/// Worker threads spawned by [`crate::par`] have already flushed by the
/// time their region returned; call this from the thread that owns the
/// workload (outside any parallel region) and the snapshot covers every
/// recording made so far.
pub fn snapshot() -> MetricsSnapshot {
    with_sink(|s| s.flush());
    let reg = lock_registry();
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(name, &value)| CounterSnapshot {
                name: name.to_string(),
                value,
            })
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(name, &value)| GaugeSnapshot {
                name: name.to_string(),
                value,
            })
            .collect(),
        histograms: reg.hists.iter().map(|(n, h)| hist_snapshot(n, h)).collect(),
        spans: reg.spans.iter().map(|(n, h)| hist_snapshot(n, h)).collect(),
    }
}

/// Clears all recorded metrics (the registry and the calling thread's
/// sink). Call from outside any parallel region, e.g. between the warm-up
/// and measured phases of a bench, or between tests.
pub fn reset() {
    with_sink(|s| {
        s.counters.clear();
        s.gauges.clear();
        s.hists.clear();
        s.spans.clear();
    });
    let mut reg = lock_registry();
    reg.counters.clear();
    reg.gauges.clear();
    reg.hists.clear();
    reg.spans.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson};
    use crate::par;

    /// Obs state is process-global; these tests serialize on this lock
    /// (and restore the disabled state) so they can run under the normal
    /// multi-threaded test harness.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        inc("test.off.counter");
        record("test.off.hist", 5);
        gauge("test.off.gauge", 1.0);
        drop(span("test.off.span"));
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn totals_are_thread_count_invariant() {
        let _g = TEST_LOCK.lock().unwrap();
        let orig = par::thread_count();
        let items: Vec<u64> = (0..97).collect();
        let mut reference: Option<String> = None;
        for threads in [1usize, 4] {
            par::set_thread_count(threads);
            set_enabled(true);
            reset();
            let _ = par::par_map(&items, |&x| {
                inc("test.par.items");
                add("test.par.sum", x);
                record("test.par.value", x);
                gauge("test.par.max", x as f64);
                x
            });
            let json = snapshot().deterministic().to_json().to_json_string();
            set_enabled(false);
            match &reference {
                None => reference = Some(json),
                Some(r) => assert_eq!(r, &json, "threads={threads}"),
            }
        }
        par::set_thread_count(orig);
        let snap_json = reference.unwrap();
        let snap = MetricsSnapshot::from_json(&crate::json::JsonValue::parse(&snap_json).unwrap())
            .unwrap();
        assert_eq!(counter(&snap, "test.par.items"), 97);
        assert_eq!(counter(&snap, "test.par.sum"), 96 * 97 / 2);
        let h = &snap.histograms[0];
        assert_eq!(h.name, "test.par.value");
        assert_eq!(h.count, 97);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 96);
        assert_eq!(snap.gauges[0].value, 96.0);
        reset();
    }

    #[test]
    fn spans_count_deterministically_but_time_is_stripped() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _s = span("test.span.work");
            std::hint::black_box(0u64);
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].count, 3);
        let det = snap.deterministic();
        assert_eq!(det.spans[0].count, 3);
        assert_eq!(det.spans[0].sum, 0);
        assert_eq!(det.spans[0].max, 0);
        assert!(det.spans[0].buckets.is_empty());
        reset();
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        add("test.json.bytes", 1234);
        gauge("test.json.depth", 7.5);
        record("test.json.dist", 0);
        record("test.json.dist", 1023);
        let snap = snapshot();
        set_enabled(false);
        let parsed = MetricsSnapshot::from_json(
            &crate::json::JsonValue::parse(&snap.to_json().to_json_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed, snap);
        // Bucket layout: value 0 in bucket 0, 1023 in bucket 10.
        let h = &snap.histograms[0];
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.sum, 1023);
        reset();
    }

    #[test]
    fn bucket_indexing_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }
}

//! Deterministic non-cryptographic hashing.
//!
//! [`fnv1a`] is the 64-bit FNV-1a hash: a tiny, allocation-free digest with
//! a frozen definition, used wherever the workspace needs a stable
//! fingerprint of serialized output — the property runner derives per-test
//! seeds from it, and the fault-scenario harness publishes FNVs of
//! serialized `SessionOutcome`s so CI can compare runs across thread counts
//! and commits with a single integer.
//!
//! Like everything in `volcast-util`, the function is frozen: the same
//! bytes hash to the same value on every platform and in every future
//! version.
//!
//! ```
//! use volcast_util::hash::fnv1a;
//!
//! assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
//! assert_eq!(fnv1a(b"volcast"), fnv1a(b"volcast"));
//! assert_ne!(fnv1a(b"volcast"), fnv1a(b"volcasT"));
//! ```

/// 64-bit FNV-1a hash of `bytes` (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b"x"), fnv1a(b"x\0"));
    }
}

//! Property tests for the util crate itself: JSON round-trips and PRNG
//! statistical sanity. These exercise the same proptest-lite harness the
//! rest of the workspace uses, so the harness is its own first customer.

use std::collections::BTreeMap;
use volcast_util::bitset::BitSet;
use volcast_util::json::{FromJson, JsonValue, ToJson};
use volcast_util::prop::prelude::*;
use volcast_util::rng::Rng;

fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
    let text = v.to_json().to_json_string();
    let parsed = JsonValue::parse(&text).expect("writer must emit parseable JSON");
    let back = T::from_json(&parsed).expect("schema must accept its own output");
    assert_eq!(&back, v, "round trip changed the value (text: {text})");
}

proptest! {
    #[test]
    fn f64_round_trips(x in -1.0e12..1.0e12f64) {
        round_trip(&x);
    }

    #[test]
    fn integers_round_trip(a in -(1i64 << 53)..(1i64 << 53), b in 0u32..u32::MAX) {
        // Numbers ride the f64 model, exact up to |x| <= 2^53 — the full
        // u32/i32 ranges and every integer the workspace serializes.
        round_trip(&a);
        round_trip(&b);
    }

    #[test]
    fn vectors_and_options_round_trip(v in prop::collection::vec(-1.0e6..1.0e6f64, 0..20)) {
        round_trip(&v);
        round_trip(&Some(v.clone()));
        round_trip(&Option::<Vec<f64>>::None);
    }

    #[test]
    fn tuples_and_maps_round_trip(k in 0u32..1000, x in -100.0..100.0f64, b in any::<bool>()) {
        round_trip(&(k, x));
        round_trip(&(k, x, b));
        let mut map = BTreeMap::new();
        map.insert(k, x);
        map.insert(k.wrapping_add(1), -x);
        round_trip(&map);
    }

    #[test]
    fn strings_round_trip_with_escapes(n in 0usize..64, seed in 0u64..1_000_000) {
        // Build strings over a hostile alphabet: quotes, backslashes,
        // control characters, multi-byte and astral code points.
        const ALPHABET: &[char] =
            &['a', '"', '\\', '\n', '\t', '\u{0}', '\u{7f}', 'é', '中', '🜁', '\u{2028}'];
        let mut rng = Rng::seed_from_u64(seed);
        let s: String = (0..n)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect();
        round_trip(&s);
    }

    #[test]
    fn parse_never_panics_on_mutated_output(v in prop::collection::vec(-10.0..10.0f64, 1..8), cut in 1usize..100) {
        // Truncating valid JSON anywhere must yield Err, never a panic.
        let text = v.to_json().to_json_string();
        let cut = cut.min(text.len().saturating_sub(1));
        let _ = JsonValue::parse(&text[..cut]);
    }

    #[test]
    fn adversarial_unicode_escapes_error_precisely(seed in 0u64..50_000) {
        // Assemble a hostile \uXXXX escape from pieces a fuzzer would find:
        // sign characters in digit positions, short digit runs, lone and
        // inverted surrogate halves. Parsing must never panic, and when it
        // fails the error must be a positioned parse error whose message
        // names the escape, not a generic failure.
        let mut rng = Rng::seed_from_u64(seed);
        const DIGITS: &[&str] = &["0", "9", "a", "F", "+", "-", " ", "g"];
        let n_digits = rng.gen_range(0..6usize);
        let mut esc = String::from("\\u");
        for _ in 0..n_digits {
            esc.push_str(DIGITS[rng.gen_range(0..DIGITS.len())]);
        }
        // Half the time, prefix a high surrogate so the escape under test
        // sits in the low-surrogate slot.
        let doc = if rng.gen::<bool>() {
            format!("\"\\ud83d{esc}\"")
        } else {
            format!("\"{esc}\"")
        };
        match JsonValue::parse(&doc) {
            Ok(JsonValue::Str(s)) => {
                // Only a full 4-hex-digit escape may succeed, and it must
                // re-serialize to parseable JSON.
                prop_assert!(n_digits >= 4, "accepted short escape {doc:?} -> {s:?}");
                let text = JsonValue::Str(s).to_json_string();
                prop_assert!(JsonValue::parse(&text).is_ok());
            }
            Ok(other) => prop_assert!(false, "string doc parsed as {other:?}"),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("\\u escape") || msg.contains("surrogate"),
                    "imprecise error for {doc:?}: {msg}"
                );
            }
        }
    }

    #[test]
    fn uniform_mean_and_variance(seed in 0u64..10_000) {
        // U[0,1): mean 1/2, variance 1/12. 20k samples put the sample mean
        // within ~0.01 with overwhelming probability.
        let mut rng = Rng::seed_from_u64(seed);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        prop_assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        prop_assert!((var - 1.0 / 12.0).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn normal_mean_and_std(seed in 0u64..10_000) {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        prop_assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        prop_assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn int_ranges_are_roughly_uniform(seed in 0u64..10_000, k in 2u64..20) {
        // Each bucket of [0, k) should get about n/k hits.
        let mut rng = Rng::seed_from_u64(seed);
        let n = 10_000usize;
        let mut counts = vec![0usize; k as usize];
        for _ in 0..n {
            counts[rng.gen_range(0..k) as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt() + 10.0,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn bitset_matches_bool_vec_model(
        ops in prop::collection::vec((0usize..200, any::<bool>()), 0..120),
    ) {
        // Drive a BitSet and a Vec<bool> model through the same random
        // insert/remove script; every observable must agree afterwards.
        let mut set = BitSet::new();
        let mut model = [false; 200];
        for &(index, insert) in &ops {
            if insert {
                prop_assert_eq!(set.insert(index), !model[index]);
                model[index] = true;
            } else {
                prop_assert_eq!(set.remove(index), model[index]);
                model[index] = false;
            }
        }
        let expect: Vec<usize> =
            model.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(set.count(), expect.len());
        prop_assert_eq!(set.is_empty(), expect.is_empty());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(set.contains(i), b, "index {}", i);
        }
        // Rebuilding from the surviving indices yields an equal set even
        // though this one never grew past its high-water mark.
        let rebuilt: BitSet = expect.into_iter().collect();
        prop_assert_eq!(set.clone(), rebuilt);
        set.clear();
        prop_assert!(set.is_empty());
        prop_assert_eq!(set, BitSet::new());
    }

    #[test]
    fn bitset_insert_range_matches_model(lo in 0usize..150, len in 0usize..150) {
        let mut ranged = BitSet::new();
        ranged.insert_range(lo..lo + len);
        let individual: BitSet = (lo..lo + len).collect();
        prop_assert_eq!(&ranged, &individual);
        prop_assert_eq!(ranged.count(), len);
    }

    #[test]
    fn seed_stability(seed in any::<u64>()) {
        // Identical seeds replay identical streams across all sampler kinds.
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(a.gen_range(-5.0..5.0f64), b.gen_range(-5.0..5.0f64));
            prop_assert_eq!(a.gen_range(0..100u32), b.gen_range(0..100u32));
            prop_assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
        }
    }
}

#[test]
fn json_value_round_trips_structurally() {
    // A nested document covering every JsonValue variant.
    let doc = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "null": null}, "s": "x\ny"}"#;
    let v = JsonValue::parse(doc).unwrap();
    let text = v.to_json_string();
    assert_eq!(JsonValue::parse(&text).unwrap(), v);
}

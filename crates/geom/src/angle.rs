//! Angle helpers shared by pose math and beam geometry.

use std::f64::consts::PI;

/// Wraps an angle in radians to the interval `(-pi, pi]`.
pub fn normalize_angle(a: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = a % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Smallest absolute angular distance between `a` and `b`, in `[0, pi]`.
pub fn angular_distance(a: f64, b: f64) -> f64 {
    normalize_angle(a - b).abs()
}

/// Degrees to radians.
#[inline]
pub fn deg_to_rad(d: f64) -> f64 {
    d * PI / 180.0
}

/// Radians to degrees.
#[inline]
pub fn rad_to_deg(r: f64) -> f64 {
    r * 180.0 / PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn normalize_within_range_is_identity() {
        for &a in &[0.0, 1.0, -1.0, 3.0, -3.0] {
            assert!(approx_eq(normalize_angle(a), a, 1e-12));
        }
    }

    #[test]
    fn normalize_wraps() {
        assert!(approx_eq(normalize_angle(PI + 0.1), -PI + 0.1, 1e-12));
        assert!(approx_eq(normalize_angle(-PI - 0.1), PI - 0.1, 1e-12));
        assert!(approx_eq(normalize_angle(5.0 * PI), PI, 1e-9));
        assert!(approx_eq(normalize_angle(-4.0 * PI), 0.0, 1e-9));
    }

    #[test]
    fn normalize_boundary_convention() {
        // +pi stays +pi; -pi maps to +pi.
        assert!(approx_eq(normalize_angle(PI), PI, 1e-12));
        assert!(approx_eq(normalize_angle(-PI), PI, 1e-12));
    }

    #[test]
    fn distances() {
        assert!(approx_eq(angular_distance(0.1, -0.1), 0.2, 1e-12));
        assert!(approx_eq(angular_distance(3.1, -3.1), 2.0 * PI - 6.2, 1e-9));
        assert!(approx_eq(angular_distance(1.0, 1.0), 0.0, 1e-12));
    }

    #[test]
    fn degree_conversions() {
        assert!(approx_eq(deg_to_rad(180.0), PI, 1e-12));
        assert!(approx_eq(rad_to_deg(PI / 2.0), 90.0, 1e-12));
        assert!(approx_eq(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12));
    }
}

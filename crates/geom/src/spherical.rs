//! Azimuth/elevation direction handling for beam geometry.

use crate::Vec3;

/// A direction in spherical coordinates relative to an antenna array.
///
/// Convention (matching the planar-array math in `volcast-mmwave`):
/// - `azimuth`: angle in the horizontal (XZ) plane, 0 along `-Z`
///   (array boresight), positive toward `+X`, in `(-pi, pi]`.
/// - `elevation`: angle above the horizontal plane, in `[-pi/2, pi/2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spherical {
    /// Azimuth in radians.
    pub azimuth: f64,
    /// Elevation in radians.
    pub elevation: f64,
}

impl Spherical {
    /// Boresight (azimuth 0, elevation 0).
    pub const BORESIGHT: Spherical = Spherical {
        azimuth: 0.0,
        elevation: 0.0,
    };

    /// Creates a direction from azimuth/elevation radians.
    pub fn new(azimuth: f64, elevation: f64) -> Self {
        Spherical { azimuth, elevation }
    }

    /// Converts to a unit vector. Boresight maps to `-Z`.
    pub fn to_unit_vector(self) -> Vec3 {
        let (sa, ca) = self.azimuth.sin_cos();
        let (se, ce) = self.elevation.sin_cos();
        Vec3::new(ce * sa, se, -ce * ca)
    }

    /// Builds from a (non-zero) direction vector.
    pub fn from_vector(v: Vec3) -> Option<Spherical> {
        let u = v.normalized()?;
        let elevation = u.y.clamp(-1.0, 1.0).asin();
        let azimuth = u.x.atan2(-u.z);
        Some(Spherical { azimuth, elevation })
    }

    /// Great-circle angular distance to another direction, in `[0, pi]`.
    pub fn angle_to(self, other: Spherical) -> f64 {
        self.to_unit_vector().angle_between(other.to_unit_vector())
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Spherical { azimuth, elevation });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn boresight_is_minus_z() {
        let v = Spherical::BORESIGHT.to_unit_vector();
        assert!((v - Vec3::FORWARD).norm() < 1e-12);
    }

    #[test]
    fn cardinal_directions() {
        let east = Spherical::new(FRAC_PI_2, 0.0).to_unit_vector();
        assert!((east - Vec3::X).norm() < 1e-12);
        let up = Spherical::new(0.0, FRAC_PI_2).to_unit_vector();
        assert!((up - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn round_trip() {
        for &(az, el) in &[
            (0.0, 0.0),
            (0.5, 0.3),
            (-1.2, -0.7),
            (2.9, 1.0),
            (FRAC_PI_4, -FRAC_PI_4),
        ] {
            let s = Spherical::new(az, el);
            let s2 = Spherical::from_vector(s.to_unit_vector()).unwrap();
            assert!(approx_eq(s2.azimuth, az, 1e-9), "az {az}");
            assert!(approx_eq(s2.elevation, el, 1e-9), "el {el}");
        }
    }

    #[test]
    fn from_zero_vector_is_none() {
        assert!(Spherical::from_vector(Vec3::ZERO).is_none());
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        for az in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            for el in [-1.5, -0.5, 0.0, 0.5, 1.5] {
                let v = Spherical::new(az, el).to_unit_vector();
                assert!(approx_eq(v.norm(), 1.0, 1e-12));
            }
        }
    }

    #[test]
    fn angular_distance() {
        let a = Spherical::new(0.0, 0.0);
        let b = Spherical::new(FRAC_PI_2, 0.0);
        assert!(approx_eq(a.angle_to(b), FRAC_PI_2, 1e-12));
        assert!(approx_eq(a.angle_to(a), 0.0, 1e-6));
    }
}

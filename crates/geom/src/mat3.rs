//! 3x3 matrices (row-major) for rotations and small linear algebra.

use crate::{Quat, Vec3};
use std::ops::Mul;

/// A row-major 3x3 matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix: `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Builds a matrix from rows.
    #[inline]
    pub const fn new(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Row `r` as a vector.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Column `c` as a vector.
    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::new([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse; `None` when singular.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv_d = 1.0 / d;
        let mut out = [[0.0; 3]; 3];
        out[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d;
        out[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d;
        out[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d;
        out[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d;
        out[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d;
        out[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d;
        out[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d;
        out[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d;
        out[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d;
        Some(Mat3::new(out))
    }

    /// Converts an orthonormal rotation matrix to a quaternion.
    pub fn to_quat(&self) -> Quat {
        let m = &self.m;
        let trace = m[0][0] + m[1][1] + m[2][2];
        let q = if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m[2][1] - m[1][2]) / s,
                (m[0][2] - m[2][0]) / s,
                (m[1][0] - m[0][1]) / s,
            )
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m[2][1] - m[1][2]) / s,
                0.25 * s,
                (m[0][1] + m[1][0]) / s,
                (m[0][2] + m[2][0]) / s,
            )
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m[0][2] - m[2][0]) / s,
                (m[0][1] + m[1][0]) / s,
                0.25 * s,
                (m[1][2] + m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m[1][0] - m[0][1]) / s,
                (m[0][2] + m[2][0]) / s,
                (m[1][2] + m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, r: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.row(i).dot(r.col(j));
            }
        }
        Mat3::new(out)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Mat3 { m });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_multiplication() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        let m = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]]);
        assert_eq!(Mat3::IDENTITY * m, m);
        assert_eq!(m * Mat3::IDENTITY, m);
    }

    #[test]
    fn determinant_and_inverse() {
        let m = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]]);
        assert!(approx_eq(m.det(), -3.0, 1e-12));
        let inv = m.inverse().unwrap();
        let prod = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod.m[i][j], want, 1e-9));
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::new([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn transpose_is_involution() {
        let m = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().m[0][1], 4.0);
    }

    #[test]
    fn quat_round_trip_through_matrix() {
        let q = Quat::from_yaw_pitch_roll(0.3, -0.7, 1.1);
        let q2 = q.to_mat3().to_quat();
        assert!(q.angle_to(q2) < 1e-9);
    }

    #[test]
    fn to_quat_covers_all_branches() {
        // Rotations by pi around each axis exercise the non-trace branches.
        for axis in [Vec3::X, Vec3::Y, Vec3::Z] {
            let q = Quat::from_axis_angle(axis, std::f64::consts::PI);
            let q2 = q.to_mat3().to_quat();
            assert!(q.angle_to(q2) < 1e-9, "axis {axis}");
        }
    }
}

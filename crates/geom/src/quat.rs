//! Unit quaternions for 3D orientation.

use crate::{Mat3, Vec3};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`, used (normalized) to represent rotation.
///
/// Rotation composition follows the convention `(a * b)` = "apply `b`
/// first, then `a`" when rotating vectors with [`Quat::rotate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// `i` component.
    pub x: f64,
    /// `j` component.
    pub y: f64,
    /// `k` component.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalized).
    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about the (normalized) `axis`.
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        match axis.normalized() {
            None => Quat::IDENTITY,
            Some(a) => {
                let (s, c) = (angle * 0.5).sin_cos();
                Quat::new(c, a.x * s, a.y * s, a.z * s)
            }
        }
    }

    /// Builds an orientation from intrinsic Tait-Bryan angles, applied in
    /// yaw (about +Y), then pitch (about +X), then roll (about -Z) order.
    ///
    /// This matches the head-tracking convention used by the 6DoF viewport
    /// traces: yaw turns the head left/right, pitch nods up/down, roll tilts.
    pub fn from_yaw_pitch_roll(yaw: f64, pitch: f64, roll: f64) -> Self {
        let qy = Quat::from_axis_angle(Vec3::Y, yaw);
        let qp = Quat::from_axis_angle(Vec3::X, pitch);
        let qr = Quat::from_axis_angle(Vec3::FORWARD, roll);
        qy * qp * qr
    }

    /// Extracts (yaw, pitch, roll) angles inverting
    /// [`Quat::from_yaw_pitch_roll`].
    ///
    /// Pitch is returned in `[-pi/2, pi/2]`; at the gimbal-lock poles roll is
    /// folded into yaw (roll is reported as 0).
    pub fn to_yaw_pitch_roll(self) -> (f64, f64, f64) {
        // Forward direction after rotation determines yaw/pitch.
        let f = self.rotate(Vec3::FORWARD);
        let pitch = f.y.clamp(-1.0, 1.0).asin();
        let (yaw, roll);
        if f.x.abs() < 1e-9 && f.z.abs() < 1e-9 {
            // Looking straight up/down: yaw from the rotated up vector.
            let u = self.rotate(Vec3::Y);
            yaw = if pitch > 0.0 {
                u.x.atan2(u.z)
            } else {
                (-u.x).atan2(-u.z)
            };
            roll = 0.0;
        } else {
            yaw = (-f.x).atan2(-f.z);
            // Undo yaw+pitch; what remains about the forward axis is roll.
            let undo = (Quat::from_axis_angle(Vec3::Y, yaw)
                * Quat::from_axis_angle(Vec3::X, pitch))
            .conjugate();
            let r = undo * self;
            let u = r.rotate(Vec3::Y);
            roll = u.x.atan2(u.y);
        }
        (yaw, pitch, roll)
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion, or identity if degenerate.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < crate::EPS {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The conjugate (inverse rotation for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2*q_vec x (q_vec x v + w*v)  (standard optimized form)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Spherical linear interpolation between unit quaternions.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`. Takes the shortest arc.
    pub fn slerp(self, other: Quat, t: f64) -> Quat {
        let mut b = other;
        let mut cos = self.dot(b);
        // Take the shorter path around the 4-sphere.
        if cos < 0.0 {
            b = Quat::new(-b.w, -b.x, -b.y, -b.z);
            cos = -cos;
        }
        if cos > 0.9995 {
            // Nearly parallel: fall back to normalized lerp.
            return Quat::new(
                self.w + (b.w - self.w) * t,
                self.x + (b.x - self.x) * t,
                self.y + (b.y - self.y) * t,
                self.z + (b.z - self.z) * t,
            )
            .normalized();
        }
        let theta = cos.clamp(-1.0, 1.0).acos();
        let sin = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / sin;
        let wb = (t * theta).sin() / sin;
        Quat::new(
            self.w * wa + b.w * wb,
            self.x * wa + b.x * wb,
            self.y * wa + b.y * wb,
            self.z * wa + b.z * wb,
        )
        .normalized()
    }

    /// 4D dot product.
    #[inline]
    pub fn dot(self, o: Quat) -> f64 {
        self.w * o.w + self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// The rotation angle in radians (in `[0, pi]`) this quaternion applies.
    pub fn angle(self) -> f64 {
        2.0 * self.w.abs().clamp(0.0, 1.0).acos()
    }

    /// Angular distance in radians between two orientations, in `[0, pi]`.
    pub fn angle_to(self, other: Quat) -> f64 {
        (self.conjugate() * other).angle()
    }

    /// Converts to a rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        let Quat { w, x, y, z } = self.normalized();
        Mat3::new([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Builds an orientation whose `-Z` axis points along `dir` with `+Y`
    /// kept as close to `up` as possible (a "look-at" rotation).
    pub fn look_at(dir: Vec3, up: Vec3) -> Quat {
        let f = dir.normalized_or(Vec3::FORWARD); // forward = -Z
        let back = -f;
        let right = up.cross(back).normalized_or(Vec3::X);
        let true_up = back.cross(right);
        // Columns of the rotation matrix are the rotated basis vectors.
        let m = Mat3::new([
            [right.x, true_up.x, back.x],
            [right.y, true_up.y, back.y],
            [right.z, true_up.z, back.z],
        ]);
        m.to_quat()
    }

    /// `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Quat { w, x, y, z });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn assert_vec_eq(a: Vec3, b: Vec3, tol: f64) {
        assert!((a - b).norm() < tol, "{a} != {b}");
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(Quat::IDENTITY.rotate(v), v, 1e-12);
    }

    #[test]
    fn axis_angle_quarter_turns() {
        let q = Quat::from_axis_angle(Vec3::Y, FRAC_PI_2);
        // +90° yaw about Y sends -Z (forward) to -X.
        assert_vec_eq(q.rotate(Vec3::FORWARD), -Vec3::X, 1e-12);
        let q = Quat::from_axis_angle(Vec3::X, FRAC_PI_2);
        assert_vec_eq(q.rotate(Vec3::Y), Vec3::Z, 1e-12);
    }

    #[test]
    fn zero_axis_gives_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn composition_order() {
        // (a * b).rotate == a.rotate(b.rotate(v))
        let a = Quat::from_axis_angle(Vec3::Y, 0.7);
        let b = Quat::from_axis_angle(Vec3::X, -0.3);
        let v = Vec3::new(0.2, -1.0, 2.0);
        assert_vec_eq((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_yaw_pitch_roll(0.5, -0.2, 0.9);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(q.conjugate().rotate(q.rotate(v)), v, 1e-12);
    }

    #[test]
    fn yaw_pitch_roll_round_trip() {
        for &(y, p, r) in &[
            (0.0, 0.0, 0.0),
            (0.5, 0.2, -0.3),
            (-2.0, 1.0, 0.7),
            (3.0, -1.4, -1.0),
            (FRAC_PI_4, FRAC_PI_4, FRAC_PI_4),
        ] {
            let q = Quat::from_yaw_pitch_roll(y, p, r);
            let (y2, p2, r2) = q.to_yaw_pitch_roll();
            let q2 = Quat::from_yaw_pitch_roll(y2, p2, r2);
            // Compare as rotations (quaternion double cover).
            assert!(q.angle_to(q2) < 1e-6, "({y},{p},{r}) -> ({y2},{p2},{r2})");
        }
    }

    #[test]
    fn yaw_rotates_forward_in_horizontal_plane() {
        let q = Quat::from_yaw_pitch_roll(FRAC_PI_2, 0.0, 0.0);
        // Yaw +90° turns the view from -Z toward -X.
        assert_vec_eq(q.rotate(Vec3::FORWARD), -Vec3::X, 1e-12);
    }

    #[test]
    fn slerp_endpoints_and_angle_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Y, FRAC_PI_2);
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-9);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-9);
        let mid = a.slerp(b, 0.5);
        assert!(approx_eq(mid.angle_to(a), FRAC_PI_4, 1e-9));
        assert!(approx_eq(mid.angle_to(b), FRAC_PI_4, 1e-9));
    }

    #[test]
    fn slerp_takes_short_arc() {
        let a = Quat::from_axis_angle(Vec3::Y, 0.1);
        let b = Quat::from_axis_angle(Vec3::Y, 0.2);
        // Negated quaternion is the same rotation; slerp must not detour.
        let b_neg = Quat::new(-b.w, -b.x, -b.y, -b.z);
        let m = a.slerp(b_neg, 0.5);
        assert!(m.angle_to(a) < 0.06);
    }

    #[test]
    fn angle_metrics() {
        let q = Quat::from_axis_angle(Vec3::Y, 1.0);
        assert!(approx_eq(q.angle(), 1.0, 1e-12));
        let r = Quat::from_axis_angle(Vec3::Y, 1.5);
        assert!(approx_eq(q.angle_to(r), 0.5, 1e-9));
        assert!(approx_eq(Quat::IDENTITY.angle(), 0.0, 1e-9));
        let half = Quat::from_axis_angle(Vec3::X, PI);
        assert!(approx_eq(half.angle(), PI, 1e-9));
    }

    #[test]
    fn mat3_conversion_matches_rotation() {
        let q = Quat::from_yaw_pitch_roll(0.4, -0.8, 1.2);
        let m = q.to_mat3();
        let v = Vec3::new(-0.5, 2.0, 0.25);
        assert_vec_eq(m * v, q.rotate(v), 1e-12);
    }

    #[test]
    fn look_at_points_forward() {
        let dir = Vec3::new(1.0, 0.5, -2.0);
        let q = Quat::look_at(dir, Vec3::Y);
        assert_vec_eq(q.rotate(Vec3::FORWARD), dir.normalized().unwrap(), 1e-9);
        // Up stays in the plane spanned by dir and world up (no roll).
        let up = q.rotate(Vec3::Y);
        assert!(up.dot(Vec3::Y) > 0.0);
    }

    #[test]
    fn normalized_handles_degenerate() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::IDENTITY);
        let q = Quat::new(2.0, 0.0, 0.0, 0.0).normalized();
        assert!(approx_eq(q.norm(), 1.0, 1e-12));
    }
}

//! Axis-aligned bounding boxes.

use crate::Vec3;

/// An axis-aligned bounding box, the shape of every point-cloud cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Builds a box from its two extreme corners (components are sorted, so
    /// argument order does not matter).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box: `union` identity, contains nothing.
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// A box centered at `c` with half-extent `h` in each axis.
    pub fn from_center_half_extent(c: Vec3, h: Vec3) -> Self {
        Aabb {
            min: c - h,
            max: c + h,
        }
    }

    /// `true` when the box contains no volume (any min > max).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Geometric center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Full extent (max - min).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Half of the extent.
    pub fn half_extent(&self) -> Vec3 {
        self.extent() * 0.5
    }

    /// Volume in cubic meters; zero for the empty box.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            let e = self.extent();
            e.x * e.y * e.z
        }
    }

    /// Radius of the bounding sphere centered at [`Aabb::center`].
    pub fn bounding_radius(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.half_extent().norm()
        }
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` when the boxes overlap (sharing a face counts).
    pub fn intersects(&self, o: &Aabb) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Smallest box containing both operands.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// Grows the box (if needed) to contain `p`.
    pub fn expand_to(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Builds the tightest box around an iterator of points. Returns the
    /// empty box for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Aabb {
        let mut b = Aabb::empty();
        for p in pts {
            b.expand_to(p);
        }
        b
    }

    /// The eight corner points (undefined content for the empty box).
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }

    /// The point inside the box closest to `p` (clamping).
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
            p.z.clamp(self.min.z, self.max.z),
        )
    }

    /// Euclidean distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Aabb { min, max });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(0.0, 2.0, 3.0));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 3.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert!(!e.contains(Vec3::ZERO));
        assert!(!e.intersects(&Aabb::new(Vec3::ZERO, Vec3::splat(1.0))));
        assert_eq!(e.bounding_radius(), 0.0);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert_eq!(Aabb::empty().union(&b), b);
        assert_eq!(b.union(&Aabb::empty()), b);
    }

    #[test]
    fn center_extent_volume() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.volume(), 48.0);
    }

    #[test]
    fn containment() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary included
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        let c = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0)); // face contact
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d));
    }

    #[test]
    fn from_points_builds_tight_box() {
        let pts = [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, 10.0),
        ];
        let b = Aabb::from_points(pts);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 10.0));
        assert!(pts.iter().all(|&p| b.contains(p)));
    }

    #[test]
    fn corners_are_contained() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 4.0, 5.0));
        for c in b.corners() {
            assert!(b.contains(c));
        }
    }

    #[test]
    fn point_distance() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.distance_to_point(Vec3::splat(0.5)), 0.0);
        assert!((b.distance_to_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-12);
        let d = b.distance_to_point(Vec3::new(2.0, 2.0, 0.5));
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn center_half_extent_round_trip() {
        let b = Aabb::from_center_half_extent(Vec3::new(1.0, 2.0, 3.0), Vec3::splat(0.5));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.half_extent(), Vec3::splat(0.5));
    }
}

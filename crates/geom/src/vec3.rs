//! Double-precision 3-vector.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-dimensional vector of `f64` components.
///
/// Used throughout volcast for positions (meters), directions and velocities.
/// The coordinate convention is right-handed with `+Y` up, `-Z` forward
/// (OpenGL-style), matching the frustum and pose math in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (right).
    pub x: f64,
    /// Y component (up).
    pub y: f64,
    /// Z component (backward; `-Z` is the forward viewing direction).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };
    /// The conventional forward viewing direction (`-Z`).
    pub const FORWARD: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: -1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared distance between two points.
    #[inline]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns `None` when the vector is (numerically) zero, so callers are
    /// forced to handle the degenerate case instead of propagating NaN.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Like [`Vec3::normalized`] but falls back to `fallback` for the zero
    /// vector. Useful when a deterministic direction is needed regardless.
    #[inline]
    pub fn normalized_or(self, fallback: Vec3) -> Vec3 {
        self.normalized().unwrap_or(fallback)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Projects `self` onto the (non-zero) direction `dir`.
    #[inline]
    pub fn project_onto(self, dir: Vec3) -> Vec3 {
        let d = dir.norm_sq();
        if d < crate::EPS {
            Vec3::ZERO
        } else {
            dir * (self.dot(dir) / d)
        }
    }

    /// Angle in radians between two vectors, in `[0, pi]`.
    ///
    /// Returns 0 when either vector is zero.
    pub fn angle_between(self, other: Vec3) -> f64 {
        let d = self.norm() * other.norm();
        if d < crate::EPS {
            return 0.0;
        }
        (self.dot(other) / d).clamp(-1.0, 1.0).acos()
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Vec3 { x, y, z });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert!(approx_eq(a.dot(b), 32.0, 1e-12));
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Cross product is perpendicular to both operands.
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-12));
        assert!(approx_eq(c.dot(b), 0.0, 1e-12));
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx_eq(v.norm(), 5.0, 1e-12));
        assert!(approx_eq(v.norm_sq(), 25.0, 1e-12));
        assert!(approx_eq(Vec3::ZERO.distance(v), 5.0, 1e-12));
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 0.0, 10.0);
        assert_eq!(v.normalized(), Some(Vec3::Z));
        assert_eq!(Vec3::ZERO.normalized(), None);
        assert_eq!(Vec3::ZERO.normalized_or(Vec3::X), Vec3::X);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn angle_between_axes() {
        assert!(approx_eq(
            Vec3::X.angle_between(Vec3::Y),
            std::f64::consts::FRAC_PI_2,
            1e-12
        ));
        assert!(approx_eq(Vec3::X.angle_between(Vec3::X), 0.0, 1e-9));
        assert!(approx_eq(
            Vec3::X.angle_between(-Vec3::X),
            std::f64::consts::PI,
            1e-12
        ));
        assert_eq!(Vec3::ZERO.angle_between(Vec3::X), 0.0);
    }

    #[test]
    fn projection() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let p = v.project_onto(Vec3::X * 10.0);
        assert_eq!(p, Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(v.project_onto(Vec3::ZERO), Vec3::ZERO);
    }

    #[test]
    fn componentwise_helpers() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -6.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, 20.0, 18.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn indexing_and_arrays() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}

//! 6DoF rigid poses and their vector parameterization.
// Fixed-size index loops (angle dims, octree children, AP slots) read
// clearer than iterator chains in this module.
#![allow(clippy::needless_range_loop)]

use crate::{Quat, Vec3};

/// A 6DoF pose: translation (meters) plus orientation.
///
/// This is the unit of state for every viewer in volcast: a volumetric-video
/// viewport is fully determined by a `Pose` and the camera intrinsics
/// (see [`crate::Frustum`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Position of the viewer in world coordinates (meters).
    pub position: Vec3,
    /// Orientation of the viewer (unit quaternion). `-Z` is the view axis.
    pub orientation: Quat,
}

impl Pose {
    /// Creates a pose from position and orientation.
    pub fn new(position: Vec3, orientation: Quat) -> Self {
        Pose {
            position,
            orientation,
        }
    }

    /// A pose at `position` looking at `target` with `+Y` up.
    pub fn looking_at(position: Vec3, target: Vec3) -> Self {
        Pose {
            position,
            orientation: Quat::look_at(target - position, Vec3::Y),
        }
    }

    /// The forward (view) direction, i.e. the rotated `-Z` axis.
    pub fn forward(&self) -> Vec3 {
        self.orientation.rotate(Vec3::FORWARD)
    }

    /// The up direction (rotated `+Y`).
    pub fn up(&self) -> Vec3 {
        self.orientation.rotate(Vec3::Y)
    }

    /// The right direction (rotated `+X`).
    pub fn right(&self) -> Vec3 {
        self.orientation.rotate(Vec3::X)
    }

    /// Interpolates position linearly and orientation by slerp.
    pub fn interpolate(&self, other: &Pose, t: f64) -> Pose {
        Pose {
            position: self.position.lerp(other.position, t),
            orientation: self.orientation.slerp(other.orientation, t),
        }
    }

    /// Transforms a point from pose-local coordinates to world coordinates.
    pub fn local_to_world(&self, p: Vec3) -> Vec3 {
        self.orientation.rotate(p) + self.position
    }

    /// Transforms a world-space point into pose-local coordinates.
    pub fn world_to_local(&self, p: Vec3) -> Vec3 {
        self.orientation.conjugate().rotate(p - self.position)
    }

    /// Converts to the 6-component vector `[x, y, z, yaw, pitch, roll]`
    /// used by the viewport predictors.
    pub fn to_sixdof(&self) -> SixDof {
        let (yaw, pitch, roll) = self.orientation.to_yaw_pitch_roll();
        SixDof {
            v: [
                self.position.x,
                self.position.y,
                self.position.z,
                yaw,
                pitch,
                roll,
            ],
        }
    }

    /// Reconstructs a pose from a [`SixDof`] vector.
    pub fn from_sixdof(s: SixDof) -> Pose {
        Pose {
            position: Vec3::new(s.v[0], s.v[1], s.v[2]),
            orientation: Quat::from_yaw_pitch_roll(s.v[3], s.v[4], s.v[5]),
        }
    }

    /// `true` when position and orientation are finite.
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.orientation.is_finite()
    }
}

/// The difference between two poses, used to express motion per tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoseDelta {
    /// Translational displacement (meters).
    pub translation: Vec3,
    /// Rotational displacement as a quaternion (`to * from^-1`).
    pub rotation: Quat,
}

impl PoseDelta {
    /// Delta that carries `from` onto `to`.
    pub fn between(from: &Pose, to: &Pose) -> PoseDelta {
        PoseDelta {
            translation: to.position - from.position,
            rotation: to.orientation * from.orientation.conjugate(),
        }
    }

    /// Applies this delta to a pose.
    pub fn apply(&self, p: &Pose) -> Pose {
        Pose {
            position: p.position + self.translation,
            orientation: (self.rotation * p.orientation).normalized(),
        }
    }

    /// Magnitude of the translational part in meters.
    pub fn translation_norm(&self) -> f64 {
        self.translation.norm()
    }

    /// Magnitude of the rotational part in radians.
    pub fn rotation_angle(&self) -> f64 {
        self.rotation.angle()
    }
}

/// A pose flattened to the `[x, y, z, yaw, pitch, roll]` parameterization.
///
/// The viewport predictors (linear regression, MLP) operate on these six
/// scalars per sample, exactly as ViVo and related systems do.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SixDof {
    /// `[x, y, z, yaw, pitch, roll]` (meters, meters, meters, rad, rad, rad).
    pub v: [f64; 6],
}

impl SixDof {
    /// Number of degrees of freedom.
    pub const DIMS: usize = 6;

    /// Builds from raw components.
    pub fn new(v: [f64; 6]) -> Self {
        SixDof { v }
    }

    /// Component-wise difference with angular components wrapped to
    /// `(-pi, pi]` so prediction errors near the wrap point stay small.
    pub fn wrapped_sub(&self, other: &SixDof) -> SixDof {
        let mut out = [0.0; 6];
        for i in 0..3 {
            out[i] = self.v[i] - other.v[i];
        }
        for i in 3..6 {
            out[i] = crate::normalize_angle(self.v[i] - other.v[i]);
        }
        SixDof { v: out }
    }

    /// Component-wise addition with angular wrap on the rotational part.
    pub fn wrapped_add(&self, other: &SixDof) -> SixDof {
        let mut out = [0.0; 6];
        for i in 0..3 {
            out[i] = self.v[i] + other.v[i];
        }
        for i in 3..6 {
            out[i] = crate::normalize_angle(self.v[i] + other.v[i]);
        }
        SixDof { v: out }
    }

    /// Euclidean norm of the translational part (meters).
    pub fn translation_norm(&self) -> f64 {
        (self.v[0] * self.v[0] + self.v[1] * self.v[1] + self.v[2] * self.v[2]).sqrt()
    }

    /// Euclidean norm of the rotational part (radians).
    pub fn rotation_norm(&self) -> f64 {
        (self.v[3] * self.v[3] + self.v[4] * self.v[4] + self.v[5] * self.v[5]).sqrt()
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Pose {
    position,
    orientation
});
volcast_util::impl_json_struct!(PoseDelta {
    translation,
    rotation
});
volcast_util::impl_json_struct!(SixDof { v });

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_vec_eq(a: Vec3, b: Vec3, tol: f64) {
        assert!((a - b).norm() < tol, "{a} != {b}");
    }

    #[test]
    fn default_pose_looks_down_negative_z() {
        let p = Pose::default();
        assert_vec_eq(p.forward(), Vec3::FORWARD, 1e-12);
        assert_vec_eq(p.up(), Vec3::Y, 1e-12);
        assert_vec_eq(p.right(), Vec3::X, 1e-12);
    }

    #[test]
    fn looking_at_faces_target() {
        let p = Pose::looking_at(Vec3::new(0.0, 1.6, 3.0), Vec3::new(0.0, 1.0, 0.0));
        let want = (Vec3::new(0.0, 1.0, 0.0) - Vec3::new(0.0, 1.6, 3.0))
            .normalized()
            .unwrap();
        assert_vec_eq(p.forward(), want, 1e-9);
    }

    #[test]
    fn local_world_round_trip() {
        let p = Pose::new(
            Vec3::new(1.0, 2.0, 3.0),
            Quat::from_yaw_pitch_roll(0.5, -0.25, 0.1),
        );
        let local = Vec3::new(-0.4, 0.9, 2.2);
        let w = p.local_to_world(local);
        assert_vec_eq(p.world_to_local(w), local, 1e-12);
    }

    #[test]
    fn sixdof_round_trip() {
        let p = Pose::new(
            Vec3::new(0.5, 1.6, -2.0),
            Quat::from_yaw_pitch_roll(1.2, -0.4, 0.3),
        );
        let p2 = Pose::from_sixdof(p.to_sixdof());
        assert_vec_eq(p2.position, p.position, 1e-12);
        assert!(p.orientation.angle_to(p2.orientation) < 1e-6);
    }

    #[test]
    fn delta_between_and_apply() {
        let a = Pose::new(Vec3::new(0.0, 0.0, 0.0), Quat::IDENTITY);
        let b = Pose::new(
            Vec3::new(1.0, 0.0, -1.0),
            Quat::from_axis_angle(Vec3::Y, FRAC_PI_2),
        );
        let d = PoseDelta::between(&a, &b);
        let b2 = d.apply(&a);
        assert_vec_eq(b2.position, b.position, 1e-12);
        assert!(b2.orientation.angle_to(b.orientation) < 1e-9);
        assert!((d.translation_norm() - 2f64.sqrt()).abs() < 1e-12);
        assert!((d.rotation_angle() - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn interpolate_midpoint() {
        let a = Pose::new(Vec3::ZERO, Quat::IDENTITY);
        let b = Pose::new(
            Vec3::new(2.0, 0.0, 0.0),
            Quat::from_axis_angle(Vec3::Y, 1.0),
        );
        let m = a.interpolate(&b, 0.5);
        assert_vec_eq(m.position, Vec3::new(1.0, 0.0, 0.0), 1e-12);
        assert!((m.orientation.angle_to(a.orientation) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wrapped_angle_arithmetic() {
        let a = SixDof::new([0.0, 0.0, 0.0, 3.1, 0.0, 0.0]);
        let b = SixDof::new([0.0, 0.0, 0.0, -3.1, 0.0, 0.0]);
        // Wrapped difference crosses the +-pi boundary: |diff| is small.
        let d = a.wrapped_sub(&b);
        assert!(d.v[3].abs() < 0.1, "wrapped diff {}", d.v[3]);
        let sum = b.wrapped_add(&d);
        assert!((crate::normalize_angle(sum.v[3] - a.v[3])).abs() < 1e-9);
    }

    #[test]
    fn sixdof_norms() {
        let s = SixDof::new([3.0, 0.0, 4.0, 0.6, 0.8, 0.0]);
        assert!((s.translation_norm() - 5.0).abs() < 1e-12);
        assert!((s.rotation_norm() - 1.0).abs() < 1e-12);
    }
}

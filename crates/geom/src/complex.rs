//! Minimal complex arithmetic for phased-array antenna weights.
//!
//! We deliberately implement this in-house (instead of pulling in
//! `num-complex`) to keep the dependency set to the sanctioned offline
//! crates; the mmWave beamforming code needs only a handful of operations.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number `re + i*im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `r * e^{i*theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex::new(r * c, r * s)
    }

    /// `e^{i*theta}` — a pure phase term, the bread and butter of
    /// steering-vector construction.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (power).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, r: Complex) -> Complex {
        Complex::new(self.re + r.re, self.im + r.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, r: Complex) {
        *self = *self + r;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, r: Complex) -> Complex {
        Complex::new(self.re - r.re, self.im - r.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, r: Complex) -> Complex {
        Complex::new(
            self.re * r.re - self.im * r.im,
            self.re * r.im + self.im * r.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, r: Complex) {
        *self = *self * r;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, s: f64) -> Complex {
        Complex::new(self.re / s, self.im / s)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, r: Complex) -> Complex {
        let d = r.norm_sq();
        Complex::new(
            (self.re * r.re + self.im * r.im) / d,
            (self.im * r.re - self.re * r.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Complex { re, im });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = (a * b) / b;
        assert!(approx_eq(q.re, a.re, 1e-12));
        assert!(approx_eq(q.im, a.im, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let ii = Complex::I * Complex::I;
        assert!(approx_eq(ii.re, -1.0, 1e-15));
        assert!(approx_eq(ii.im, 0.0, 1e-15));
    }

    #[test]
    fn polar_round_trip() {
        let c = Complex::from_polar(2.5, 0.7);
        assert!(approx_eq(c.abs(), 2.5, 1e-12));
        assert!(approx_eq(c.arg(), 0.7, 1e-12));
    }

    #[test]
    fn cis_basics() {
        let c = Complex::cis(FRAC_PI_2);
        assert!(approx_eq(c.re, 0.0, 1e-15));
        assert!(approx_eq(c.im, 1.0, 1e-15));
        let c = Complex::cis(PI);
        assert!(approx_eq(c.re, -1.0, 1e-15));
    }

    #[test]
    fn conjugate_and_power() {
        let c = Complex::new(3.0, 4.0);
        assert_eq!(c.conj(), Complex::new(3.0, -4.0));
        assert!(approx_eq(c.abs(), 5.0, 1e-12));
        assert!(approx_eq(c.norm_sq(), 25.0, 1e-12));
        // c * conj(c) = |c|^2
        let p = c * c.conj();
        assert!(approx_eq(p.re, 25.0, 1e-12));
        assert!(approx_eq(p.im, 0.0, 1e-12));
    }

    #[test]
    fn phase_accumulates_under_multiplication() {
        let a = Complex::cis(0.3);
        let b = Complex::cis(0.4);
        assert!(approx_eq((a * b).arg(), 0.7, 1e-12));
    }
}

//! 3D math substrate for the volcast workspace.
//!
//! This crate provides the geometric and numeric primitives every other
//! volcast crate builds on:
//!
//! - [`Vec3`] / [`Mat3`] / [`Quat`]: double-precision linear algebra,
//! - [`Pose`]: a 6DoF rigid pose (translation + orientation) with the
//!   yaw/pitch/roll decomposition the viewport-prediction literature uses,
//! - [`Aabb`] / [`Plane`] / [`Frustum`]: the culling primitives used to
//!   compute cell visibility maps,
//! - [`Complex`]: complex arithmetic for phased-array antenna weights,
//! - [`Spherical`]: azimuth/elevation direction handling for beams.
//!
//! Everything here is deterministic, allocation-free and `f64`-based: the
//! simulator above it must produce bit-identical results for a fixed seed.
//!
//! ```
//! use volcast_geom::{Quat, Vec3};
//!
//! // Rotating the x axis a quarter turn about z gives the y axis.
//! let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
//! let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
//! assert!((v - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod angle;
mod complex;
mod frustum;
mod mat3;
mod plane;
mod pose;
mod quat;
mod ray;
mod spherical;
mod vec3;

pub use aabb::Aabb;
pub use angle::{angular_distance, deg_to_rad, normalize_angle, rad_to_deg};
pub use complex::Complex;
pub use frustum::{CameraIntrinsics, Frustum};
pub use mat3::Mat3;
pub use plane::Plane;
pub use pose::{Pose, PoseDelta, SixDof};
pub use quat::Quat;
pub use ray::Ray;
pub use spherical::Spherical;
pub use vec3::Vec3;

/// Convenience epsilon for geometric comparisons (meters / radians scale).
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats are equal within `tol`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

//! Oriented planes for frustum culling.

use crate::{Aabb, Vec3};

/// A plane in Hessian normal form: points `p` with `n . p + d = 0`.
///
/// The normal points toward the *positive* half-space; frustum planes are
/// oriented so the interior of the frustum is positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Unit normal.
    pub normal: Vec3,
    /// Offset: signed distance from the origin to the plane along `-normal`.
    pub d: f64,
}

impl Plane {
    /// Builds a plane from a (not necessarily unit) normal and a point on
    /// the plane. Falls back to `+Y`/0 for a zero normal.
    pub fn from_normal_point(normal: Vec3, point: Vec3) -> Self {
        let n = normal.normalized_or(Vec3::Y);
        Plane {
            normal: n,
            d: -n.dot(point),
        }
    }

    /// Signed distance from `p` to the plane (positive on the normal side).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p) + self.d
    }

    /// `true` when `p` is on the positive side or on the plane.
    #[inline]
    pub fn is_inside(&self, p: Vec3) -> bool {
        self.signed_distance(p) >= 0.0
    }

    /// `true` when any part of the box touches the positive half-space.
    ///
    /// Uses the standard "most positive vertex" trick: project the box's
    /// half-extent onto the absolute normal.
    pub fn aabb_on_positive_side(&self, b: &Aabb) -> bool {
        if b.is_empty() {
            return false;
        }
        let c = b.center();
        let h = b.half_extent();
        let r = h.x * self.normal.x.abs() + h.y * self.normal.y.abs() + h.z * self.normal.z.abs();
        self.signed_distance(c) >= -r
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Plane { normal, d });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_distance_and_sides() {
        // Ground plane y = 0, normal up.
        let p = Plane::from_normal_point(Vec3::Y, Vec3::ZERO);
        assert!((p.signed_distance(Vec3::new(0.0, 3.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((p.signed_distance(Vec3::new(5.0, -2.0, 1.0)) + 2.0).abs() < 1e-12);
        assert!(p.is_inside(Vec3::new(1.0, 0.0, 1.0)));
        assert!(!p.is_inside(Vec3::new(0.0, -0.001, 0.0)));
    }

    #[test]
    fn non_unit_normal_is_normalized() {
        let p = Plane::from_normal_point(Vec3::Y * 10.0, Vec3::new(0.0, 2.0, 0.0));
        assert!((p.signed_distance(Vec3::new(0.0, 5.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn aabb_side_tests() {
        let p = Plane::from_normal_point(Vec3::Y, Vec3::ZERO);
        let above = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 2.0, 1.0));
        let below = Aabb::new(Vec3::new(0.0, -2.0, 0.0), Vec3::new(1.0, -1.0, 1.0));
        let straddle = Aabb::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 1.0));
        assert!(p.aabb_on_positive_side(&above));
        assert!(!p.aabb_on_positive_side(&below));
        assert!(p.aabb_on_positive_side(&straddle));
        assert!(!p.aabb_on_positive_side(&Aabb::empty()));
    }

    #[test]
    fn oblique_plane_aabb() {
        let n = Vec3::new(1.0, 1.0, 0.0);
        let p = Plane::from_normal_point(n, Vec3::ZERO);
        let touching = Aabb::new(Vec3::new(-2.0, 0.0, 0.0), Vec3::new(-0.1, 1.0, 1.0));
        assert!(p.aabb_on_positive_side(&touching)); // corner crosses plane
        let far = Aabb::new(Vec3::new(-5.0, -5.0, 0.0), Vec3::new(-4.0, -4.0, 1.0));
        assert!(!p.aabb_on_positive_side(&far));
    }
}

//! Rays and primitive intersection tests used by occlusion culling and the
//! mmWave line-of-sight/blockage checks.

use crate::{Aabb, Vec3};

/// A half-line: `origin + t * direction` for `t >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Start point.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Builds a ray; the direction is normalized (`None` for zero dir).
    pub fn new(origin: Vec3, direction: Vec3) -> Option<Ray> {
        direction.normalized().map(|d| Ray {
            origin,
            direction: d,
        })
    }

    /// Ray from `a` toward `b` (None when coincident).
    pub fn between(a: Vec3, b: Vec3) -> Option<Ray> {
        Ray::new(a, b - a)
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Slab test against an AABB. Returns the entry parameter `t >= 0`
    /// when the ray hits the box.
    pub fn intersect_aabb(&self, b: &Aabb) -> Option<f64> {
        if b.is_empty() {
            return None;
        }
        let mut tmin = 0.0f64;
        let mut tmax = f64::INFINITY;
        for i in 0..3 {
            let o = self.origin[i];
            let d = self.direction[i];
            let (lo, hi) = (b.min[i], b.max[i]);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut t0, mut t1) = ((lo - o) * inv, (hi - o) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                tmin = tmin.max(t0);
                tmax = tmax.min(t1);
                if tmin > tmax {
                    return None;
                }
            }
        }
        Some(tmin)
    }

    /// Intersection with an infinite vertical cylinder (axis parallel to
    /// `+Y`) of radius `r` centered at `(cx, _, cz)`, clipped to the height
    /// interval `[y0, y1]`. This is the human-blocker model used by the
    /// mmWave blockage simulation.
    ///
    /// Returns the first hit parameter `t >= 0`, if any.
    pub fn intersect_vertical_cylinder(
        &self,
        cx: f64,
        cz: f64,
        r: f64,
        y0: f64,
        y1: f64,
    ) -> Option<f64> {
        // Project onto XZ plane.
        let ox = self.origin.x - cx;
        let oz = self.origin.z - cz;
        let dx = self.direction.x;
        let dz = self.direction.z;
        let a = dx * dx + dz * dz;
        let hit_in_height = |t: f64| -> bool {
            let y = self.origin.y + self.direction.y * t;
            (y0..=y1).contains(&y)
        };
        if a < 1e-12 {
            // Ray is vertical: inside circle?
            if ox * ox + oz * oz <= r * r {
                // Find where it enters the height range.
                let dy = self.direction.y;
                if dy.abs() < 1e-12 {
                    return if (y0..=y1).contains(&self.origin.y) {
                        Some(0.0)
                    } else {
                        None
                    };
                }
                let t0 = (y0 - self.origin.y) / dy;
                let t1 = (y1 - self.origin.y) / dy;
                let (t0, t1) = (t0.min(t1), t0.max(t1));
                if t1 < 0.0 {
                    return None;
                }
                return Some(t0.max(0.0));
            }
            return None;
        }
        let b = 2.0 * (ox * dx + oz * dz);
        let c = ox * ox + oz * oz - r * r;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t_in = (-b - sq) / (2.0 * a);
        let t_out = (-b + sq) / (2.0 * a);
        if t_out < 0.0 {
            return None;
        }
        // Walk candidate parameters: entry (or 0 if starting inside).
        let start = t_in.max(0.0);
        if hit_in_height(start) {
            return Some(start);
        }
        // The ray may dip into the height interval between start and exit.
        // Sample where y crosses the slab bounds.
        let dy = self.direction.y;
        if dy.abs() > 1e-12 {
            for bound in [y0, y1] {
                let t = (bound - self.origin.y) / dy;
                if t >= start && t <= t_out && hit_in_height(t) {
                    return Some(t);
                }
            }
        }
        None
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Ray { origin, direction });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -3.0)).unwrap();
        assert!((r.direction.norm() - 1.0).abs() < 1e-12);
        assert!(Ray::new(Vec3::ZERO, Vec3::ZERO).is_none());
    }

    #[test]
    fn aabb_hit_and_miss() {
        let r = Ray::new(Vec3::ZERO, Vec3::FORWARD).unwrap();
        let hit = Aabb::from_center_half_extent(Vec3::new(0.0, 0.0, -5.0), Vec3::splat(1.0));
        let miss = Aabb::from_center_half_extent(Vec3::new(3.0, 0.0, -5.0), Vec3::splat(1.0));
        let behind = Aabb::from_center_half_extent(Vec3::new(0.0, 0.0, 5.0), Vec3::splat(1.0));
        let t = r.intersect_aabb(&hit).unwrap();
        assert!((t - 4.0).abs() < 1e-12);
        assert!(r.intersect_aabb(&miss).is_none());
        assert!(r.intersect_aabb(&behind).is_none());
    }

    #[test]
    fn aabb_from_inside_hits_at_zero() {
        let r = Ray::new(Vec3::ZERO, Vec3::X).unwrap();
        let b = Aabb::from_center_half_extent(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(r.intersect_aabb(&b), Some(0.0));
    }

    #[test]
    fn aabb_axis_parallel_miss() {
        // Ray along X at y=5 misses a unit box at origin.
        let r = Ray::new(Vec3::new(-10.0, 5.0, 0.0), Vec3::X).unwrap();
        let b = Aabb::from_center_half_extent(Vec3::ZERO, Vec3::splat(1.0));
        assert!(r.intersect_aabb(&b).is_none());
    }

    #[test]
    fn cylinder_blockage_geometry() {
        // AP at (0, 2.5, 0), user at (0, 1.2, -6); blocker standing at
        // (0, _, -3) with radius 0.25 and height 1.8 blocks the path.
        let ap = Vec3::new(0.0, 2.5, 0.0);
        let user = Vec3::new(0.0, 1.2, -6.0);
        let r = Ray::between(ap, user).unwrap();
        let t = r.intersect_vertical_cylinder(0.0, -3.0, 0.25, 0.0, 1.8);
        assert!(t.is_some());
        let t = t.unwrap();
        let dist = ap.distance(user);
        assert!(t > 0.0 && t < dist);
    }

    #[test]
    fn cylinder_too_short_does_not_block() {
        // Same geometry but the blocker is only 1 m tall; the LoS passes
        // overhead at ~1.85 m at z=-3.
        let ap = Vec3::new(0.0, 2.5, 0.0);
        let user = Vec3::new(0.0, 1.2, -6.0);
        let r = Ray::between(ap, user).unwrap();
        assert!(r
            .intersect_vertical_cylinder(0.0, -3.0, 0.25, 0.0, 1.0)
            .is_none());
    }

    #[test]
    fn cylinder_offset_to_side_misses() {
        let r = Ray::new(Vec3::ZERO, Vec3::FORWARD).unwrap();
        assert!(r
            .intersect_vertical_cylinder(1.0, -3.0, 0.25, -1.0, 1.0)
            .is_none());
        assert!(r
            .intersect_vertical_cylinder(0.0, -3.0, 0.25, -1.0, 1.0)
            .is_some());
    }

    #[test]
    fn vertical_ray_inside_cylinder() {
        let r = Ray::new(Vec3::new(0.0, 5.0, 0.0), -Vec3::Y).unwrap();
        let t = r
            .intersect_vertical_cylinder(0.0, 0.0, 1.0, 0.0, 2.0)
            .unwrap();
        assert!((t - 3.0).abs() < 1e-12); // enters slab at y=2 -> t=3
        let r_out = Ray::new(Vec3::new(5.0, 5.0, 0.0), -Vec3::Y).unwrap();
        assert!(r_out
            .intersect_vertical_cylinder(0.0, 0.0, 1.0, 0.0, 2.0)
            .is_none());
    }
}

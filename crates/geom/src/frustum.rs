//! View frusta and frustum culling.
//!
//! Volumetric streaming systems in the ViVo family determine cell visibility
//! by frustum-culling the spatial cells of the point cloud against each
//! user's viewport. This module implements the classic six-plane test.

use crate::{Aabb, Plane, Pose, Vec3};

/// A view frustum built from a 6DoF pose and pinhole-camera intrinsics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frustum {
    /// The six bounding planes, normals pointing inward:
    /// near, far, left, right, bottom, top.
    pub planes: [Plane; 6],
    /// Apex (camera position), kept for distance queries.
    pub origin: Vec3,
    /// Unit view direction.
    pub direction: Vec3,
}

/// Camera intrinsics for frustum construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Vertical field of view in radians.
    pub fov_y: f64,
    /// Width / height aspect ratio.
    pub aspect: f64,
    /// Near clip distance (meters).
    pub near: f64,
    /// Far clip distance (meters).
    pub far: f64,
}

impl Default for CameraIntrinsics {
    /// Defaults modeled after a mixed-reality headset viewport
    /// (~60 degrees vertical FoV, 16:9, 10 cm to 20 m).
    fn default() -> Self {
        CameraIntrinsics {
            fov_y: 60f64.to_radians(),
            aspect: 16.0 / 9.0,
            near: 0.1,
            far: 20.0,
        }
    }
}

impl Frustum {
    /// Builds the frustum for a viewer `pose` with the given intrinsics.
    pub fn from_pose(pose: &Pose, intr: &CameraIntrinsics) -> Frustum {
        let o = pose.position;
        let f = pose.forward();
        let u = pose.up();
        let r = pose.right();

        let half_v = (intr.fov_y * 0.5).tan();
        let half_h = half_v * intr.aspect;

        // Inward-pointing normals.
        let near = Plane::from_normal_point(f, o + f * intr.near);
        let far = Plane::from_normal_point(-f, o + f * intr.far);
        // Side planes pass through the apex. Each is spanned by one edge
        // direction and the perpendicular camera axis; cross-product order
        // is chosen so the normal points into the frustum interior.
        let left = Plane::from_normal_point((f - r * half_h).cross(u), o);
        let right = Plane::from_normal_point(u.cross(f + r * half_h), o);
        let bottom = Plane::from_normal_point(r.cross(f - u * half_v), o);
        let top = Plane::from_normal_point((f + u * half_v).cross(r), o);

        Frustum {
            planes: [near, far, left, right, bottom, top],
            origin: o,
            direction: f,
        }
    }

    /// `true` when the point is inside (or on the boundary of) the frustum.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|pl| pl.is_inside(p))
    }

    /// Conservative frustum-AABB test: `false` guarantees the box is
    /// invisible; `true` means it *may* intersect (standard p-vertex test,
    /// may report rare false positives near edges, never false negatives).
    pub fn intersects_aabb(&self, b: &Aabb) -> bool {
        self.planes.iter().all(|pl| pl.aabb_on_positive_side(b))
    }

    /// Sphere test with the same conservative semantics.
    pub fn intersects_sphere(&self, center: Vec3, radius: f64) -> bool {
        self.planes
            .iter()
            .all(|pl| pl.signed_distance(center) >= -radius)
    }

    /// Distance from the apex to a point (used by distance-based LOD).
    pub fn distance_to(&self, p: Vec3) -> f64 {
        self.origin.distance(p)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Frustum {
    planes,
    origin,
    direction
});
volcast_util::impl_json_struct!(CameraIntrinsics {
    fov_y,
    aspect,
    near,
    far
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quat;

    fn default_frustum() -> Frustum {
        // Viewer at origin looking down -Z.
        Frustum::from_pose(&Pose::default(), &CameraIntrinsics::default())
    }

    #[test]
    fn contains_point_ahead() {
        let f = default_frustum();
        assert!(f.contains_point(Vec3::new(0.0, 0.0, -5.0)));
        assert!(f.contains_point(Vec3::new(0.5, 0.5, -5.0)));
    }

    #[test]
    fn rejects_point_behind() {
        let f = default_frustum();
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, 5.0)));
    }

    #[test]
    fn rejects_point_too_near_or_far() {
        let f = default_frustum();
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, -0.05))); // in front of near plane
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, -25.0))); // beyond far plane
    }

    #[test]
    fn rejects_point_outside_fov() {
        let f = default_frustum();
        // At z=-1 the vertical half-extent is tan(30 deg) ~ 0.577.
        assert!(f.contains_point(Vec3::new(0.0, 0.5, -1.0)));
        assert!(!f.contains_point(Vec3::new(0.0, 0.7, -1.0)));
        // Horizontal half-extent ~ 0.577 * 16/9 ~ 1.026.
        assert!(f.contains_point(Vec3::new(1.0, 0.0, -1.0)));
        assert!(!f.contains_point(Vec3::new(1.2, 0.0, -1.0)));
    }

    #[test]
    fn aabb_visibility() {
        let f = default_frustum();
        let visible = Aabb::from_center_half_extent(Vec3::new(0.0, 0.0, -5.0), Vec3::splat(0.5));
        let behind = Aabb::from_center_half_extent(Vec3::new(0.0, 0.0, 5.0), Vec3::splat(0.5));
        let side = Aabb::from_center_half_extent(Vec3::new(15.0, 0.0, -5.0), Vec3::splat(0.5));
        assert!(f.intersects_aabb(&visible));
        assert!(!f.intersects_aabb(&behind));
        assert!(!f.intersects_aabb(&side));
    }

    #[test]
    fn aabb_straddling_boundary_is_visible() {
        let f = default_frustum();
        // Box centered outside the top plane but large enough to cross it.
        let straddle = Aabb::from_center_half_extent(Vec3::new(0.0, 0.8, -1.0), Vec3::splat(0.5));
        assert!(f.intersects_aabb(&straddle));
    }

    #[test]
    fn rotated_frustum_tracks_view() {
        // Look along +X instead (-Z rotated by -90 deg about Y).
        let pose = Pose::new(
            Vec3::ZERO,
            Quat::from_axis_angle(Vec3::Y, -std::f64::consts::FRAC_PI_2),
        );
        let f = Frustum::from_pose(&pose, &CameraIntrinsics::default());
        assert!(f.contains_point(Vec3::new(5.0, 0.0, 0.0)));
        assert!(!f.contains_point(Vec3::new(-5.0, 0.0, 0.0)));
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, -5.0)));
    }

    #[test]
    fn translated_frustum() {
        let pose = Pose::new(Vec3::new(0.0, 0.0, 10.0), Quat::IDENTITY);
        let f = Frustum::from_pose(&pose, &CameraIntrinsics::default());
        assert!(f.contains_point(Vec3::new(0.0, 0.0, 5.0)));
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, 15.0)));
        assert!((f.distance_to(Vec3::new(0.0, 0.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_tests() {
        let f = default_frustum();
        assert!(f.intersects_sphere(Vec3::new(0.0, 0.0, -5.0), 0.1));
        assert!(!f.intersects_sphere(Vec3::new(0.0, 0.0, 5.0), 0.5));
        // Sphere outside but overlapping the boundary.
        assert!(f.intersects_sphere(Vec3::new(0.0, 1.0, -1.0), 0.6));
    }

    #[test]
    fn frustum_direction_and_origin() {
        let pose = Pose::looking_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO);
        let f = Frustum::from_pose(&pose, &CameraIntrinsics::default());
        assert_eq!(f.origin, Vec3::new(1.0, 2.0, 3.0));
        assert!((f.direction.norm() - 1.0).abs() < 1e-9);
    }
}

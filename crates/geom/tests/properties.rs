//! Property-based tests for the geometric invariants every higher layer
//! relies on.

use volcast_geom::{
    normalize_angle, Aabb, CameraIntrinsics, Complex, Frustum, Pose, Quat, Ray, Spherical, Vec3,
};
use volcast_util::prop::prelude::*;

fn finite_f64(range: f64) -> impl Strategy<Value = f64> {
    -range..range
}

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (finite_f64(range), finite_f64(range), finite_f64(range))
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_quat() -> impl Strategy<Value = Quat> {
    (finite_f64(3.1), -1.5f64..1.5, finite_f64(3.1))
        .prop_map(|(y, p, r)| Quat::from_yaw_pitch_roll(y, p, r))
}

proptest! {
    #[test]
    fn vec_add_commutes(a in arb_vec3(1e6), b in arb_vec3(1e6)) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn vec_dot_bilinear(a in arb_vec3(1e3), b in arb_vec3(1e3), s in finite_f64(1e3)) {
        let lhs = (a * s).dot(b);
        let rhs = a.dot(b) * s;
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn cross_orthogonal(a in arb_vec3(1e3), b in arb_vec3(1e3)) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm();
        prop_assert!(c.dot(a).abs() <= 1e-6 * (1.0 + scale * a.norm()));
        prop_assert!(c.dot(b).abs() <= 1e-6 * (1.0 + scale * b.norm()));
    }

    #[test]
    fn normalized_has_unit_norm(a in arb_vec3(1e6)) {
        if let Some(n) = a.normalized() {
            prop_assert!((n.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quat_rotation_preserves_norm(q in arb_quat(), v in arb_vec3(1e3)) {
        let r = q.rotate(v);
        prop_assert!((r.norm() - v.norm()).abs() <= 1e-9 * (1.0 + v.norm()));
    }

    #[test]
    fn quat_rotation_preserves_dot(q in arb_quat(), a in arb_vec3(1e2), b in arb_vec3(1e2)) {
        let d0 = a.dot(b);
        let d1 = q.rotate(a).dot(q.rotate(b));
        prop_assert!((d0 - d1).abs() <= 1e-7 * (1.0 + d0.abs()));
    }

    #[test]
    fn quat_conjugate_is_inverse(q in arb_quat(), v in arb_vec3(1e3)) {
        let back = q.conjugate().rotate(q.rotate(v));
        prop_assert!((back - v).norm() <= 1e-8 * (1.0 + v.norm()));
    }

    #[test]
    fn yaw_pitch_roll_round_trip(q in arb_quat()) {
        let (y, p, r) = q.to_yaw_pitch_roll();
        let q2 = Quat::from_yaw_pitch_roll(y, p, r);
        prop_assert!(q.angle_to(q2) < 1e-6);
    }

    #[test]
    fn pose_local_world_round_trip(
        pos in arb_vec3(100.0), q in arb_quat(), p in arb_vec3(100.0),
    ) {
        let pose = Pose::new(pos, q);
        let back = pose.world_to_local(pose.local_to_world(p));
        prop_assert!((back - p).norm() < 1e-8);
    }

    #[test]
    fn sixdof_round_trip(pos in arb_vec3(50.0), q in arb_quat()) {
        let pose = Pose::new(pos, q);
        let pose2 = Pose::from_sixdof(pose.to_sixdof());
        prop_assert!((pose2.position - pose.position).norm() < 1e-9);
        prop_assert!(pose.orientation.angle_to(pose2.orientation) < 1e-6);
    }

    #[test]
    fn normalize_angle_in_range(a in finite_f64(1e4)) {
        let n = normalize_angle(a);
        prop_assert!(n > -std::f64::consts::PI - 1e-12 && n <= std::f64::consts::PI + 1e-12);
        // Same angle modulo 2*pi.
        let diff = (a - n) / (2.0 * std::f64::consts::PI);
        prop_assert!((diff - diff.round()).abs() < 1e-6);
    }

    #[test]
    fn aabb_union_contains_both(a in arb_vec3(100.0), b in arb_vec3(100.0),
                                c in arb_vec3(100.0), d in arb_vec3(100.0)) {
        let b1 = Aabb::new(a, b);
        let b2 = Aabb::new(c, d);
        let u = b1.union(&b2);
        for corner in b1.corners().into_iter().chain(b2.corners()) {
            prop_assert!(u.contains(corner));
        }
    }

    #[test]
    fn aabb_contains_implies_intersects(a in arb_vec3(100.0), b in arb_vec3(100.0), p in arb_vec3(100.0)) {
        let bx = Aabb::new(a, b);
        if bx.contains(p) {
            let tiny = Aabb::from_center_half_extent(p, Vec3::splat(1e-6));
            prop_assert!(bx.intersects(&tiny));
        }
    }

    #[test]
    fn frustum_point_inside_implies_aabb_visible(
        pos in arb_vec3(10.0), q in arb_quat(), p in arb_vec3(30.0),
    ) {
        let pose = Pose::new(pos, q);
        let f = Frustum::from_pose(&pose, &CameraIntrinsics::default());
        if f.contains_point(p) {
            // Any box containing a visible point must be classified visible.
            let bx = Aabb::from_center_half_extent(p, Vec3::splat(0.25));
            prop_assert!(f.intersects_aabb(&bx));
        }
    }

    #[test]
    fn complex_mul_matches_polar(r1 in 0.01f64..10.0, t1 in finite_f64(3.0),
                                 r2 in 0.01f64..10.0, t2 in finite_f64(3.0)) {
        let a = Complex::from_polar(r1, t1);
        let b = Complex::from_polar(r2, t2);
        let p = a * b;
        prop_assert!((p.abs() - r1 * r2).abs() < 1e-9 * (1.0 + r1 * r2));
        let want = normalize_angle(t1 + t2);
        prop_assert!(normalize_angle(p.arg() - want).abs() < 1e-9);
    }

    #[test]
    fn spherical_round_trip(az in finite_f64(3.1), el in -1.5f64..1.5) {
        let s = Spherical::new(az, el);
        let s2 = Spherical::from_vector(s.to_unit_vector()).unwrap();
        prop_assert!(normalize_angle(s2.azimuth - az).abs() < 1e-8);
        prop_assert!((s2.elevation - el).abs() < 1e-8);
    }

    #[test]
    fn ray_aabb_hit_point_on_box(o in arb_vec3(20.0), d in arb_vec3(1.0), a in arb_vec3(10.0), b in arb_vec3(10.0)) {
        if let Some(ray) = Ray::new(o, d) {
            let bx = Aabb::new(a, b);
            if let Some(t) = ray.intersect_aabb(&bx) {
                let hit = ray.at(t);
                // The hit point is on (or within epsilon of) the box.
                prop_assert!(bx.distance_to_point(hit) < 1e-6);
            }
        }
    }

    #[test]
    fn slerp_angle_monotone(q in arb_quat(), t in 0.0f64..1.0) {
        let from = Quat::IDENTITY;
        let m = from.slerp(q, t);
        let total = from.angle_to(q);
        let part = from.angle_to(m);
        prop_assert!(part <= total + 1e-6);
    }
}

//! Pins the allocation-free steady state of the frame data path.
//!
//! This is its own integration binary because the counting allocator is
//! process-global: any sibling test allocating concurrently would make the
//! counters move. Keep exactly one `#[test]` in this file.

use volcast_pointcloud::codec::{CodecConfig, Encoder};
use volcast_pointcloud::{codec::Decoder, codec::EncodedCloud, PointCloud, SyntheticBody};
use volcast_util::obs;
use volcast_util::scratch::counting;

#[global_allocator]
static ALLOC: counting::CountingAllocator = counting::CountingAllocator;

/// After a warm-up pass, generate -> encode -> decode over the same frames
/// must not touch the allocator at all: every buffer in the path (synthetic
/// frame, encoder scratch arenas, bitstream, decoded cloud) is reused.
#[test]
fn steady_state_frame_path_does_not_allocate() {
    // The obs registry interns metric names on first touch; disable it so
    // the assertion holds under VOLCAST_TRACE=1 too (verify.sh runs tests
    // with tracing on).
    obs::set_enabled(false);

    let body = SyntheticBody::default();
    let cfg = CodecConfig {
        depth: 9,
        color_bits: 6,
    };
    const FRAMES: u64 = 8;
    const POINTS: usize = 10_000;

    let mut enc = Encoder::new();
    let mut dec = Decoder::new();
    let mut cloud = PointCloud::new();
    let mut encoded = EncodedCloud { data: Vec::new() };
    let mut decoded = PointCloud::new();

    // Warm-up: two full passes over the frame set so every buffer reaches
    // its high-watermark capacity (bitstream sizes vary slightly per frame).
    let run_pass = |enc: &mut Encoder,
                    dec: &mut Decoder,
                    cloud: &mut PointCloud,
                    encoded: &mut EncodedCloud,
                    decoded: &mut PointCloud| {
        let mut voxels = 0usize;
        for f in 0..FRAMES {
            body.frame_into(f, POINTS, cloud);
            let stats = enc.encode_into(cloud, &cfg, &mut encoded.data);
            voxels += dec.decode_into(encoded, decoded).unwrap();
            assert_eq!(decoded.len(), stats.voxels);
        }
        voxels
    };
    for _ in 0..2 {
        run_pass(&mut enc, &mut dec, &mut cloud, &mut encoded, &mut decoded);
    }

    let allocs_before = counting::allocations();
    let deallocs_before = counting::deallocations();
    let mut total_voxels = 0usize;
    for _ in 0..5 {
        total_voxels += run_pass(&mut enc, &mut dec, &mut cloud, &mut encoded, &mut decoded);
    }
    let allocs_after = counting::allocations();
    let deallocs_after = counting::deallocations();

    assert!(total_voxels > 0, "decode produced no voxels");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state frame path allocated"
    );
    assert_eq!(
        deallocs_after - deallocs_before,
        0,
        "steady-state frame path deallocated"
    );
}

//! Pins the allocation-free steady state of the frame data path.
//!
//! This is its own integration binary because the counting allocator is
//! process-global: any sibling test allocating concurrently would make the
//! counters move. Keep exactly one `#[test]` in this file.

use volcast_pointcloud::codec::{
    CodecConfig, Encoder, GopEncoder, LayeredConfig, LayeredDecoder, LayeredEncoder, LayeredFrame,
};
use volcast_pointcloud::{
    codec::Decoder, codec::EncodedCloud, PointCloud, SyntheticBody, VideoSequence,
};
use volcast_util::scratch::counting;
use volcast_util::{obs, par};

#[global_allocator]
static ALLOC: counting::CountingAllocator = counting::CountingAllocator;

/// After a warm-up pass, generate -> encode -> decode over the same frames
/// must not touch the allocator at all: every buffer in the path (synthetic
/// frame, encoder scratch arenas, bitstream, decoded cloud) is reused.
#[test]
fn steady_state_frame_path_does_not_allocate() {
    // The obs registry interns metric names on first touch; disable it so
    // the assertion holds under VOLCAST_TRACE=1 too (verify.sh runs tests
    // with tracing on).
    obs::set_enabled(false);

    let body = SyntheticBody::default();
    let cfg = CodecConfig {
        depth: 9,
        color_bits: 6,
    };
    const FRAMES: u64 = 8;
    const POINTS: usize = 10_000;

    let mut enc = Encoder::new();
    let mut dec = Decoder::new();
    let mut cloud = PointCloud::new();
    let mut encoded = EncodedCloud { data: Vec::new() };
    let mut decoded = PointCloud::new();

    // Warm-up: two full passes over the frame set so every buffer reaches
    // its high-watermark capacity (bitstream sizes vary slightly per frame).
    let run_pass = |enc: &mut Encoder,
                    dec: &mut Decoder,
                    cloud: &mut PointCloud,
                    encoded: &mut EncodedCloud,
                    decoded: &mut PointCloud| {
        let mut voxels = 0usize;
        for f in 0..FRAMES {
            body.frame_into(f, POINTS, cloud);
            let stats = enc.encode_into(cloud, &cfg, &mut encoded.data);
            voxels += dec.decode_into(encoded, decoded).unwrap();
            assert_eq!(decoded.len(), stats.voxels);
        }
        voxels
    };
    for _ in 0..2 {
        run_pass(&mut enc, &mut dec, &mut cloud, &mut encoded, &mut decoded);
    }

    let allocs_before = counting::allocations();
    let deallocs_before = counting::deallocations();
    let mut total_voxels = 0usize;
    for _ in 0..5 {
        total_voxels += run_pass(&mut enc, &mut dec, &mut cloud, &mut encoded, &mut decoded);
    }
    let allocs_after = counting::allocations();
    let deallocs_after = counting::deallocations();

    assert!(total_voxels > 0, "decode produced no voxels");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state frame path allocated"
    );
    assert_eq!(
        deallocs_after - deallocs_before,
        0,
        "steady-state frame path deallocated"
    );

    // --- Layered path ----------------------------------------------------
    // Same contract for the progressive codec: after warm-up, layered
    // encode (base + enhancements) and full-prefix decode reuse every
    // buffer (layer bitstreams, boundary-aggregation scratch, expansion
    // ping-pong arenas).
    let lcfg = LayeredConfig::default();
    let mut lenc = LayeredEncoder::new();
    let mut ldec = LayeredDecoder::new();
    let mut frame = LayeredFrame::new();
    let layered_pass = |lenc: &mut LayeredEncoder,
                        ldec: &mut LayeredDecoder,
                        cloud: &mut PointCloud,
                        frame: &mut LayeredFrame,
                        decoded: &mut PointCloud| {
        let mut voxels = 0usize;
        for f in 0..FRAMES {
            body.frame_into(f, POINTS, cloud);
            let stats = lenc.encode_into(cloud, &lcfg, frame);
            voxels += ldec.decode_frame_into(frame.layers(), decoded).unwrap();
            assert_eq!(decoded.len(), stats.voxels);
        }
        voxels
    };
    for _ in 0..2 {
        layered_pass(&mut lenc, &mut ldec, &mut cloud, &mut frame, &mut decoded);
    }
    let l_allocs_before = counting::allocations();
    let l_deallocs_before = counting::deallocations();
    let mut l_voxels = 0usize;
    for _ in 0..5 {
        l_voxels += layered_pass(&mut lenc, &mut ldec, &mut cloud, &mut frame, &mut decoded);
    }
    assert!(l_voxels > 0, "layered decode produced no voxels");
    assert_eq!(
        counting::allocations() - l_allocs_before,
        0,
        "steady-state layered path allocated"
    );
    assert_eq!(
        counting::deallocations() - l_deallocs_before,
        0,
        "steady-state layered path deallocated"
    );

    // --- GOP-batched path ------------------------------------------------
    // Same contract for `GopEncoder`: once slots and the output-buffer pool
    // are warm, whole-GOP generate+encode sweeps are allocation-free. Pin
    // the worker count to 1 — spawning workers allocates by design, and the
    // zero-alloc claim is about the per-slot arenas, not thread plumbing
    // (this also keeps the gate meaningful under VOLCAST_THREADS=4 runs).
    par::set_thread_count(1);
    let video = VideoSequence::new(5, FRAMES);
    // Depth 7 exercises the bitmap-dedup path, the depth-9 `cfg` the radix
    // path; one warm GopEncoder must stay allocation-free across both.
    let cfg7 = CodecConfig {
        depth: 7,
        color_bits: 6,
    };
    let mut gop = GopEncoder::new();
    let gop_pass = |gop: &mut GopEncoder| {
        let mut bytes = 0usize;
        for pass_cfg in [&cfg7, &cfg] {
            gop.encode_video_gop_into(&video, 0, FRAMES as usize, POINTS, pass_cfg);
            for i in 0..FRAMES as usize {
                bytes += gop.frame_data(i).len();
            }
        }
        bytes
    };
    for _ in 0..2 {
        gop_pass(&mut gop);
    }
    let gop_allocs_before = counting::allocations();
    let gop_deallocs_before = counting::deallocations();
    let mut total_bytes = 0usize;
    for _ in 0..3 {
        total_bytes += gop_pass(&mut gop);
    }
    assert!(total_bytes > 0, "GOP encode produced no bytes");
    assert_eq!(
        counting::allocations() - gop_allocs_before,
        0,
        "steady-state GOP batched path allocated"
    );
    assert_eq!(
        counting::deallocations() - gop_deallocs_before,
        0,
        "steady-state GOP batched path deallocated"
    );
}

//! Property tests for the point-cloud substrate: codec round-trip fidelity,
//! SIMD/scalar backend equivalence, cell-partition invariants and
//! subsampling behaviour.

use volcast_pointcloud::codec::simd::{self, Backend, QuantParams};
use volcast_pointcloud::codec::{decode, encode, CodecConfig, Encoder};
use volcast_pointcloud::{CellGrid, Point, PointCloud, SoAPoints};
use volcast_util::prop::prelude::*;

fn arb_point(extent: f32) -> impl Strategy<Value = Point> {
    (
        -extent..extent,
        -extent..extent,
        -extent..extent,
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(x, y, z, r, g, b)| Point::new([x, y, z], [r, g, b]))
}

fn arb_cloud(max_points: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(arb_point(5.0), 0..max_points).prop_map(PointCloud::from_points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trip_is_voxel_accurate(cloud in arb_cloud(300), depth in 4u32..11) {
        let cfg = CodecConfig { depth, color_bits: 6 };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        prop_assert_eq!(dec.len(), stats.voxels);
        prop_assert!(dec.len() <= cloud.len());
        if cloud.is_empty() {
            prop_assert!(dec.is_empty());
            return Ok(());
        }
        // Quantization error bound: voxel diagonal / 2 (+ f32 slack).
        let extent = cloud.bounds().extent().max_component().max(1e-6);
        let max_err = extent / (1u64 << depth) as f64 * 3f64.sqrt() / 2.0 + 1e-3;
        // Bidirectional Hausdorff bound.
        for d in &dec.points {
            let best = cloud.points.iter()
                .map(|o| o.position().distance(d.position()))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(best <= max_err, "decoded offset {} > {}", best, max_err);
        }
        for o in &cloud.points {
            let best = dec.points.iter()
                .map(|d| d.position().distance(o.position()))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(best <= max_err, "original uncovered by {} > {}", best, max_err);
        }
    }

    #[test]
    fn codec_is_deterministic(cloud in arb_cloud(200)) {
        let cfg = CodecConfig::default();
        let (a, _) = encode(&cloud, &cfg);
        let (b, _) = encode(&cloud, &cfg);
        prop_assert_eq!(a.data, b.data);
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint(cloud in arb_cloud(300), size in 0.1f64..2.0) {
        let grid = CellGrid::new(size);
        let cells = grid.partition(&cloud);
        let mut seen = vec![false; cloud.len()];
        for c in &cells {
            prop_assert_eq!(c.point_count, c.point_indices.len());
            for &i in &c.point_indices {
                prop_assert!(!seen[i as usize], "point in two cells");
                seen[i as usize] = true;
                // The point really lies in the cell bounds.
                let p = cloud.points[i as usize].position();
                prop_assert!(grid.cell_bounds(c.id).contains(p));
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "point missing from partition");
    }

    #[test]
    fn cell_of_matches_cell_bounds(x in -10.0f64..10.0, y in -10.0f64..10.0,
                                   z in -10.0f64..10.0, size in 0.05f64..3.0) {
        let grid = CellGrid::new(size);
        let p = volcast_geom::Vec3::new(x, y, z);
        let id = grid.cell_of(p);
        prop_assert!(grid.cell_bounds(id).contains(p));
    }

    #[test]
    fn subsample_never_exceeds_target(cloud in arb_cloud(300), target in 0usize..400) {
        let s = cloud.subsample(target);
        prop_assert!(s.len() <= target.min(cloud.len()));
        if target >= cloud.len() {
            prop_assert_eq!(s.len(), cloud.len());
        } else {
            prop_assert_eq!(s.len(), target);
        }
        // Every sampled point exists in the original.
        for p in &s.points {
            prop_assert!(cloud.points.contains(p));
        }
    }
}

/// The quantization parameters exactly as `Encoder` derives them.
fn qparams(cloud: &PointCloud, depth: u32) -> QuantParams {
    let bounds = if cloud.is_empty() {
        volcast_geom::Aabb::new(volcast_geom::Vec3::ZERO, volcast_geom::Vec3::ZERO)
    } else {
        cloud.bounds()
    };
    let extent = bounds.extent().max_component().max(1e-6);
    let levels = 1u32 << depth;
    QuantParams {
        min: [bounds.min.x, bounds.min.y, bounds.min.z],
        scale: levels as f64 / extent,
        max_q: levels - 1,
        depth,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The runtime-selected SIMD backend's quantize+Morton kernel is
    /// bit-identical to the scalar reference on random NaN-free clouds
    /// (sizes 0.. — empty and 1-point shrink out of the same range), for
    /// both the AoS and SoA entry points. When the host selects the
    /// scalar backend (or `VOLCAST_NO_SIMD=1`), this degenerates to
    /// scalar-vs-scalar and stays green.
    #[test]
    fn simd_quantization_matches_scalar(cloud in arb_cloud(300), depth in 1u32..14) {
        let q = qparams(&cloud, depth);
        let mut scalar = Vec::new();
        let mut vector = Vec::new();
        simd::quantize_morton_points(Backend::Scalar, &cloud.points, &q, &mut scalar);
        simd::quantize_morton_points(simd::active(), &cloud.points, &q, &mut vector);
        prop_assert_eq!(&scalar, &vector, "AoS backend divergence");
        let soa = SoAPoints::from_cloud(&cloud);
        simd::quantize_morton_soa(simd::active(), &soa, &q, &mut vector);
        prop_assert_eq!(&scalar, &vector, "SoA backend divergence");
    }

    /// Full-pipeline version of the same contract: a scalar-pinned encoder
    /// and the runtime-selected one produce byte-identical bitstreams, AoS
    /// or SoA input alike.
    #[test]
    fn encoder_backends_are_bitstream_identical(cloud in arb_cloud(200), depth in 1u32..14) {
        let cfg = CodecConfig { depth, color_bits: 6 };
        let mut scalar_out = Vec::new();
        let mut vector_out = Vec::new();
        Encoder::with_backend(Backend::Scalar).encode_into(&cloud, &cfg, &mut scalar_out);
        Encoder::with_backend(simd::active()).encode_into(&cloud, &cfg, &mut vector_out);
        prop_assert_eq!(&scalar_out, &vector_out, "AoS bitstream divergence");
        let soa = SoAPoints::from_cloud(&cloud);
        Encoder::with_backend(simd::active()).encode_soa_into(&soa, &cfg, &mut vector_out);
        prop_assert_eq!(&scalar_out, &vector_out, "SoA bitstream divergence");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary bytes must never panic: it either errors or
    /// produces some (possibly garbage) cloud bounded by the declared
    /// count. This is the safety contract for network-received bitstreams.
    #[test]
    fn decode_arbitrary_bytes_never_panics(data in prop::collection::vec(any::<u8>(), 0..400)) {
        use volcast_pointcloud::codec::EncodedCloud;
        let _ = decode(&EncodedCloud { data });
    }

    /// Same with a valid header but corrupted payload.
    #[test]
    fn decode_corrupted_payload_never_panics(
        cloud in arb_cloud(100),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..16),
    ) {
        let (mut enc, stats) = encode(&cloud, &CodecConfig::default());
        for (pos, val) in flips {
            if enc.data.len() > 34 {
                let idx = 34 + pos % (enc.data.len() - 34); // leave the header intact
                enc.data[idx] ^= val;
            }
        }
        if let Ok(decoded) = decode(&enc) {
            prop_assert!(decoded.len() <= stats.voxels);
        }
    }
}

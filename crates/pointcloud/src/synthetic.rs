//! Synthetic volumetric video: a parametric animated humanoid.
//!
//! Substitutes for the 8i "soldier" dynamic voxelized point cloud (see
//! `DESIGN.md` §1). The body is a union of capsules/ellipsoids posed by a
//! walk-cycle skeleton; each frame is produced by surface-sampling the
//! primitives with a seeded PRNG, so a given `(seed, frame, target_points)`
//! triple always yields the same cloud.
//!
//! What matters for the reproduced experiments is that the synthetic body
//! matches the 8i content in the statistics the system observes:
//! human-sized bounding box (~0.5 x 1.8 x 0.4 m), surface-distributed points,
//! an exact target point count, and temporal coherence across frames.

use crate::point::{Point, PointCloud, SoAPoints};
use volcast_geom::Vec3;
use volcast_util::rng::Rng;

/// A capsule: segment from `a` to `b` with radius `r`.
#[derive(Debug, Clone, Copy)]
struct Capsule {
    a: Vec3,
    b: Vec3,
    r: f64,
    /// Base color of this body part.
    color: [u8; 3],
}

impl Capsule {
    /// Lateral surface area (approximate: cylinder part + sphere caps).
    fn area(&self) -> f64 {
        let h = (self.b - self.a).norm();
        2.0 * std::f64::consts::PI * self.r * h + 4.0 * std::f64::consts::PI * self.r * self.r
    }

    /// Samples one point uniformly-ish on the capsule surface.
    fn sample(&self, rng: &mut Rng) -> Vec3 {
        let h = (self.b - self.a).norm();
        let axis = (self.b - self.a).normalized_or(Vec3::Y);
        // Build an orthonormal frame around the axis.
        let helper = if axis.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        let u = axis.cross(helper).normalized_or(Vec3::X);
        let v = axis.cross(u);

        let cyl_area = 2.0 * std::f64::consts::PI * self.r * h;
        let cap_area = 4.0 * std::f64::consts::PI * self.r * self.r;
        if rng.gen::<f64>() * (cyl_area + cap_area) < cyl_area {
            // Cylinder side.
            let t = rng.gen::<f64>();
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            self.a + axis * (t * h) + (u * theta.cos() + v * theta.sin()) * self.r
        } else {
            // Spherical cap (either end).
            let dir = loop {
                let d = Vec3::new(
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                );
                let n = d.norm();
                if n > 1e-6 && n <= 1.0 {
                    break d / n;
                }
            };
            let center = if dir.dot(axis) >= 0.0 { self.b } else { self.a };
            center + dir * self.r
        }
    }
}

/// Parametric animated humanoid producing frames of surface-sampled points.
///
/// The skeleton performs a walk-in-place cycle with a slow body turn, so
/// consecutive frames overlap heavily (temporal coherence) while the overall
/// silhouette sweeps through the room over a few hundred frames — the same
/// qualitative behaviour as the 8i soldier sequence.
#[derive(Debug, Clone)]
pub struct SyntheticBody {
    /// Base seed; combined with the frame index for deterministic frames.
    pub seed: u64,
    /// Frames per second of the animation clock.
    pub fps: f64,
    /// World-space position of the body center (feet on the ground).
    pub origin: Vec3,
    /// Walk-cycle frequency in Hz.
    pub gait_hz: f64,
    /// Body turn rate in radians/second (slow rotation in place).
    pub turn_rate: f64,
}

impl Default for SyntheticBody {
    fn default() -> Self {
        SyntheticBody {
            seed: 0x8150_1DE5,
            fps: 30.0,
            origin: Vec3::ZERO,
            gait_hz: 1.4,
            turn_rate: 0.1,
        }
    }
}

impl SyntheticBody {
    /// Creates a body with the default proportions at `origin`.
    pub fn new(seed: u64, origin: Vec3) -> Self {
        SyntheticBody {
            seed,
            origin,
            ..Default::default()
        }
    }

    /// The skeleton posed at time `t` seconds. The body is always exactly
    /// these 10 primitives, so the pose needs no heap allocation.
    fn capsules_at(&self, t: f64) -> [Capsule; 10] {
        let phase = std::f64::consts::TAU * self.gait_hz * t;
        let turn = self.turn_rate * t;
        let (s, c) = turn.sin_cos();
        // Rotate a local-space point about Y and translate to origin.
        let place = |p: Vec3| -> Vec3 {
            Vec3::new(p.x * c + p.z * s, p.y, -p.x * s + p.z * c) + self.origin
        };

        let swing = 0.35 * phase.sin(); // leg swing angle (rad)
        let arm_swing = 0.30 * (phase + std::f64::consts::PI).sin();
        let bob = 0.02 * (2.0 * phase).cos(); // vertical bob

        let hip_y = 0.95 + bob;
        let shoulder_y = 1.50 + bob;
        let head_y = 1.70 + bob;

        let skin = [224, 172, 105];
        let shirt = [60, 90, 140];
        let pants = [50, 50, 60];

        let leg = |side: f64, swing: f64| -> [Capsule; 2] {
            let hip = Vec3::new(side * 0.10, hip_y, 0.0);
            let knee = hip + Vec3::new(0.0, -0.45, 0.0) + Vec3::new(0.0, 0.0, -0.45 * swing.sin());
            let foot = knee
                + Vec3::new(0.0, -0.45, 0.0)
                + Vec3::new(0.0, 0.0, -0.2 * swing.sin().max(0.0));
            [
                Capsule {
                    a: place(hip),
                    b: place(knee),
                    r: 0.075,
                    color: pants,
                },
                Capsule {
                    a: place(knee),
                    b: place(foot),
                    r: 0.06,
                    color: pants,
                },
            ]
        };
        let arm = |side: f64, swing: f64| -> [Capsule; 2] {
            let shoulder = Vec3::new(side * 0.20, shoulder_y, 0.0);
            let elbow = shoulder + Vec3::new(side * 0.02, -0.28, -0.28 * swing.sin());
            let hand = elbow + Vec3::new(0.0, -0.26, -0.1 * swing.sin());
            [
                Capsule {
                    a: place(shoulder),
                    b: place(elbow),
                    r: 0.05,
                    color: shirt,
                },
                Capsule {
                    a: place(elbow),
                    b: place(hand),
                    r: 0.04,
                    color: skin,
                },
            ]
        };

        let torso = Capsule {
            a: place(Vec3::new(0.0, hip_y, 0.0)),
            b: place(Vec3::new(0.0, shoulder_y, 0.0)),
            r: 0.16,
            color: shirt,
        };
        let head = Capsule {
            a: place(Vec3::new(0.0, head_y, 0.0)),
            b: place(Vec3::new(0.0, head_y + 0.12, 0.0)),
            r: 0.11,
            color: skin,
        };
        let [lr0, lr1] = leg(1.0, swing);
        let [ll0, ll1] = leg(-1.0, -swing);
        let [ar0, ar1] = arm(1.0, arm_swing);
        let [al0, al1] = arm(-1.0, -arm_swing);
        [torso, head, lr0, lr1, ll0, ll1, ar0, ar1, al0, al1]
    }

    /// Generates frame `frame_idx` with exactly `target_points` points.
    pub fn frame(&self, frame_idx: u64, target_points: usize) -> PointCloud {
        let mut out = PointCloud::new();
        self.frame_into(frame_idx, target_points, &mut out);
        out
    }

    /// Generates frame `frame_idx` into `out` (cleared first), reusing its
    /// allocation. Identical points to [`SyntheticBody::frame`]; a warmed
    /// `out` makes per-frame generation allocation-free.
    pub fn frame_into(&self, frame_idx: u64, target_points: usize, out: &mut PointCloud) {
        let points = &mut out.points;
        points.clear();
        points.reserve(target_points);
        self.emit_frame(frame_idx, target_points, |pos, col| {
            points.push(Point::new(pos, col));
        });
    }

    /// Generates frame `frame_idx` straight into SoA storage (cleared
    /// first). Point-for-point identical (same order, same values) to
    /// [`SyntheticBody::frame_into`]: both run the same sampler over the
    /// same PRNG sequence, only the destination layout differs.
    pub fn frame_into_soa(&self, frame_idx: u64, target_points: usize, out: &mut SoAPoints) {
        out.clear();
        out.reserve(target_points);
        self.emit_frame(frame_idx, target_points, |pos, col| {
            out.push(pos, col);
        });
    }

    /// Shared frame sampler: allocates points to capsules proportionally to
    /// surface area (remainder to the last capsule) and hands each sampled
    /// point to `emit`. All layout-specific frame generators route through
    /// here so they draw the identical PRNG sequence.
    fn emit_frame(
        &self,
        frame_idx: u64,
        target_points: usize,
        mut emit: impl FnMut([f32; 3], [u8; 3]),
    ) {
        let t = frame_idx as f64 / self.fps;
        let caps = self.capsules_at(t);
        let total_area: f64 = caps.iter().map(|c| c.area()).sum();
        let mut rng = Rng::seed_from_u64(self.seed ^ frame_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let mut allocated = 0usize;
        for (i, cap) in caps.iter().enumerate() {
            let share = if i + 1 == caps.len() {
                target_points - allocated
            } else {
                ((cap.area() / total_area) * target_points as f64).floor() as usize
            };
            allocated += share;
            for _ in 0..share {
                let p = cap.sample(&mut rng);
                // Slight color noise for texture.
                let jitter = rng.gen_range(-12i16..=12);
                let col = [
                    (cap.color[0] as i16 + jitter).clamp(0, 255) as u8,
                    (cap.color[1] as i16 + jitter).clamp(0, 255) as u8,
                    (cap.color[2] as i16 + jitter).clamp(0, 255) as u8,
                ];
                emit([p.x as f32, p.y as f32, p.z as f32], col);
            }
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(SyntheticBody {
    seed,
    fps,
    origin,
    gait_hz,
    turn_rate
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_has_exact_point_count() {
        let body = SyntheticBody::default();
        for &n in &[1_000usize, 10_000, 33_000] {
            assert_eq!(body.frame(0, n).len(), n);
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let body = SyntheticBody::default();
        let a = body.frame(7, 5_000);
        let b = body.frame(7, 5_000);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn frame_into_reuse_matches_fresh_frames() {
        let body = SyntheticBody::default();
        let mut reused = PointCloud::new();
        for frame in [0u64, 3, 9, 4] {
            body.frame_into(frame, 2_000, &mut reused);
            assert_eq!(reused.points, body.frame(frame, 2_000).points);
        }
    }

    #[test]
    fn frame_into_soa_matches_aos_generation() {
        let body = SyntheticBody::default();
        let mut soa = SoAPoints::new();
        for frame in [0u64, 5, 11] {
            body.frame_into_soa(frame, 3_000, &mut soa);
            let aos = body.frame(frame, 3_000);
            assert_eq!(soa.len(), aos.len());
            for (i, p) in aos.points.iter().enumerate() {
                assert_eq!(soa.point(i), *p, "frame {frame} point {i}");
            }
        }
    }

    #[test]
    fn different_frames_differ() {
        let body = SyntheticBody::default();
        let a = body.frame(0, 5_000);
        let b = body.frame(15, 5_000);
        assert_ne!(a.points, b.points);
    }

    #[test]
    fn bounds_are_human_sized() {
        let body = SyntheticBody::default();
        let b = body.frame(0, 20_000).bounds();
        let e = b.extent();
        // Roughly: ~0.5-1m wide, ~1.9m tall, <1m deep.
        assert!(e.y > 1.6 && e.y < 2.2, "height {}", e.y);
        assert!(e.x > 0.3 && e.x < 1.2, "width {}", e.x);
        assert!(e.z > 0.1 && e.z < 1.2, "depth {}", e.z);
        // Feet on the ground.
        assert!(b.min.y > -0.2 && b.min.y < 0.2);
    }

    #[test]
    fn temporal_coherence_between_adjacent_frames() {
        let body = SyntheticBody::default();
        let a = body.frame(0, 5_000).bounds();
        let b = body.frame(1, 5_000).bounds();
        // Adjacent frame bounding boxes overlap almost entirely.
        let inter_volume = {
            let lo = a.min.max(b.min);
            let hi = a.max.min(b.max);
            let e = (hi - lo).max(Vec3::ZERO);
            e.x * e.y * e.z
        };
        assert!(inter_volume / a.volume() > 0.8);
    }

    #[test]
    fn body_turns_over_time() {
        let body = SyntheticBody {
            turn_rate: 0.5,
            ..Default::default()
        };
        // After ~6 s (180 frames) the body turned by ~3 rad: the points
        // distribution around the vertical axis must have shifted.
        let a = body.frame(0, 5_000);
        let b = body.frame(180, 5_000);
        let mean_z_a: f64 = a.points.iter().map(|p| p.pos[2] as f64).sum::<f64>() / 5_000.0;
        let mean_z_b: f64 = b.points.iter().map(|p| p.pos[2] as f64).sum::<f64>() / 5_000.0;
        // Not a strong assertion, but turning changes the z spread of arms.
        let var = |c: &PointCloud, m: f64| {
            c.points
                .iter()
                .map(|p| (p.pos[2] as f64 - m).powi(2))
                .sum::<f64>()
        };
        let _ = (mean_z_a, mean_z_b);
        assert!(var(&a, mean_z_a) > 0.0 && var(&b, mean_z_b) > 0.0);
    }

    #[test]
    fn origin_offset_moves_body() {
        let at_origin = SyntheticBody::new(1, Vec3::ZERO).frame(0, 2_000);
        let moved = SyntheticBody::new(1, Vec3::new(3.0, 0.0, -2.0)).frame(0, 2_000);
        let c0 = at_origin.centroid().unwrap();
        let c1 = moved.centroid().unwrap();
        assert!((c1 - c0 - Vec3::new(3.0, 0.0, -2.0)).norm() < 0.05);
    }
}

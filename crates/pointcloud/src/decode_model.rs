//! Client decode-throughput model.
//!
//! The paper's client laptops (i7, 4 cores @ 2.8 GHz) decode Draco at up to
//! 550K points/frame at 30 FPS — that density was chosen *because* it is the
//! ceiling. We model the decoder as a fixed points/second budget (plus a
//! small per-frame overhead), which reproduces exactly that ceiling without
//! depending on this machine's speed.

/// Decode-rate model: points/second budget with per-frame fixed cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeModel {
    /// Sustained decode throughput in points per second.
    pub points_per_sec: f64,
    /// Fixed per-frame overhead in seconds (dispatch, container parsing).
    pub per_frame_overhead_s: f64,
}

impl Default for DecodeModel {
    /// Calibrated so 550K points/frame decodes at exactly 30 FPS:
    /// `550_000 * 30 = 16.5M` points/s with a small overhead folded in.
    fn default() -> Self {
        DecodeModel {
            points_per_sec: 16.83e6,
            per_frame_overhead_s: 0.65e-3,
        }
    }
}

impl DecodeModel {
    /// Time to decode one frame of `points` points, in seconds.
    pub fn frame_decode_time(&self, points: usize) -> f64 {
        self.per_frame_overhead_s + points as f64 / self.points_per_sec
    }

    /// Maximum sustainable decode frame rate for frames of `points` points.
    pub fn max_fps(&self, points: usize) -> f64 {
        1.0 / self.frame_decode_time(points)
    }

    /// Maximum frame rate capped at the display rate `cap` (e.g. 30 FPS).
    pub fn max_fps_capped(&self, points: usize, cap: f64) -> f64 {
        self.max_fps(points).min(cap)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(DecodeModel {
    points_per_sec,
    per_frame_overhead_s
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_at_550k_is_30fps() {
        let m = DecodeModel::default();
        let fps = m.max_fps(550_000);
        assert!((30.0..32.0).contains(&fps), "550K decodes at {fps} FPS");
    }

    #[test]
    fn lower_density_decodes_faster() {
        let m = DecodeModel::default();
        assert!(m.max_fps(330_000) > m.max_fps(430_000));
        assert!(m.max_fps(430_000) > m.max_fps(550_000));
        assert!(m.max_fps(330_000) > 40.0);
    }

    #[test]
    fn much_higher_density_cannot_sustain_30fps() {
        let m = DecodeModel::default();
        assert!(m.max_fps(1_100_000) < 16.0);
    }

    #[test]
    fn cap_applies() {
        let m = DecodeModel::default();
        assert_eq!(m.max_fps_capped(100_000, 30.0), 30.0);
        assert!(m.max_fps_capped(1_100_000, 30.0) < 30.0);
    }

    #[test]
    fn decode_time_monotone_in_points() {
        let m = DecodeModel::default();
        assert!(m.frame_decode_time(0) > 0.0); // overhead only
        assert!(m.frame_decode_time(200_000) < m.frame_decode_time(400_000));
    }
}

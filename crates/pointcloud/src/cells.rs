//! Spatial cell partitioning.
//!
//! ViVo-style systems split the point cloud into axis-aligned cubic cells
//! (the paper uses 25/50/100 cm cells); each cell is independently
//! prefetchable and decodable, and visibility is decided per cell. The cell
//! grid is also the unit over which inter-user viewport similarity (IoU of
//! visibility maps) is computed.

use crate::point::{PointCloud, SoAPoints};
use std::collections::BTreeMap;
use volcast_geom::{Aabb, Vec3};

/// Identifier of a cell: integer grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Grid x index.
    pub x: i32,
    /// Grid y index.
    pub y: i32,
    /// Grid z index.
    pub z: i32,
}

impl CellId {
    /// Creates a cell id.
    pub fn new(x: i32, y: i32, z: i32) -> Self {
        CellId { x, y, z }
    }
}

/// Per-cell statistics from a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInfo {
    /// Cell id.
    pub id: CellId,
    /// Number of points that fell in this cell.
    pub point_count: usize,
    /// Indices into the source cloud's point array.
    pub point_indices: Vec<u32>,
}

/// A uniform cubic grid anchored at `origin` with `cell_size`-meter cells.
///
/// The grid is unbounded: cells exist wherever points fall. Cell `(i,j,k)`
/// covers `[origin + i*s, origin + (i+1)*s)` per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct CellGrid {
    /// Grid anchor (world coordinates of cell (0,0,0)'s min corner).
    pub origin: Vec3,
    /// Cell edge length in meters (the paper: 0.25, 0.5, or 1.0).
    pub cell_size: f64,
}

impl CellGrid {
    /// Creates a grid with the given cell size anchored at the origin.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        CellGrid {
            origin: Vec3::ZERO,
            cell_size,
        }
    }

    /// Creates a grid anchored at `origin`.
    pub fn with_origin(cell_size: f64, origin: Vec3) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        CellGrid { origin, cell_size }
    }

    /// The cell containing a world-space point.
    pub fn cell_of(&self, p: Vec3) -> CellId {
        let rel = (p - self.origin) / self.cell_size;
        CellId::new(
            rel.x.floor() as i32,
            rel.y.floor() as i32,
            rel.z.floor() as i32,
        )
    }

    /// World-space bounds of a cell.
    pub fn cell_bounds(&self, id: CellId) -> Aabb {
        let min = self.origin + Vec3::new(id.x as f64, id.y as f64, id.z as f64) * self.cell_size;
        Aabb::new(min, min + Vec3::splat(self.cell_size))
    }

    /// World-space center of a cell.
    pub fn cell_center(&self, id: CellId) -> Vec3 {
        self.cell_bounds(id).center()
    }

    /// Partitions a cloud: returns the non-empty cells with their point
    /// indices, sorted by cell id for determinism.
    pub fn partition(&self, cloud: &PointCloud) -> Vec<CellInfo> {
        let mut map: BTreeMap<CellId, Vec<u32>> = BTreeMap::new();
        for (i, p) in cloud.points.iter().enumerate() {
            map.entry(self.cell_of(p.position()))
                .or_default()
                .push(i as u32);
        }
        map.into_iter()
            .map(|(id, point_indices)| CellInfo {
                id,
                point_count: point_indices.len(),
                point_indices,
            })
            .collect()
    }

    /// Extracts the sub-cloud for one cell from a partition entry.
    pub fn extract(&self, cloud: &PointCloud, info: &CellInfo) -> PointCloud {
        let mut out = PointCloud::new();
        self.extract_into(cloud, info, &mut out);
        out
    }

    /// Extracts one cell's sub-cloud into `out` (cleared first), reusing
    /// its allocation across cells/frames.
    pub fn extract_into(&self, cloud: &PointCloud, info: &CellInfo, out: &mut PointCloud) {
        out.points.clear();
        out.points.reserve(info.point_indices.len());
        out.points
            .extend(info.point_indices.iter().map(|&i| cloud.points[i as usize]));
    }

    /// Extracts one cell's sub-cloud straight into SoA storage (cleared
    /// first). Same points in the same order as
    /// [`CellGrid::extract_into`], so per-cell encodes are byte-identical
    /// whichever layout the pipeline uses.
    pub fn extract_soa_into(&self, cloud: &PointCloud, info: &CellInfo, out: &mut SoAPoints) {
        out.clear();
        out.reserve(info.point_indices.len());
        for &i in &info.point_indices {
            let p = &cloud.points[i as usize];
            out.push(p.pos, p.color);
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(CellId { x, y, z });
volcast_util::impl_json_struct!(CellInfo {
    id,
    point_count,
    point_indices
});
volcast_util::impl_json_struct!(CellGrid { origin, cell_size });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn pt(x: f32, y: f32, z: f32) -> Point {
        Point::new([x, y, z], [0, 0, 0])
    }

    #[test]
    fn cell_of_basics() {
        let g = CellGrid::new(0.5);
        assert_eq!(g.cell_of(Vec3::new(0.1, 0.1, 0.1)), CellId::new(0, 0, 0));
        assert_eq!(g.cell_of(Vec3::new(0.6, 0.1, 0.1)), CellId::new(1, 0, 0));
        assert_eq!(g.cell_of(Vec3::new(-0.1, 0.0, 0.0)), CellId::new(-1, 0, 0));
        // Boundary: exactly 0.5 belongs to cell 1.
        assert_eq!(g.cell_of(Vec3::new(0.5, 0.0, 0.0)), CellId::new(1, 0, 0));
    }

    #[test]
    fn cell_bounds_contain_their_points() {
        let g = CellGrid::new(0.25);
        for p in [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(-1.7, 0.9, 2.2),
            Vec3::new(5.0, -3.0, 0.0),
        ] {
            let id = g.cell_of(p);
            assert!(g.cell_bounds(id).contains(p), "{p} not in cell {id:?}");
        }
    }

    #[test]
    fn grid_origin_shifts_cells() {
        let g = CellGrid::with_origin(1.0, Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(g.cell_of(Vec3::new(0.6, 0.0, 0.0)), CellId::new(0, 0, 0));
        assert_eq!(g.cell_of(Vec3::new(0.4, 0.0, 0.0)), CellId::new(-1, 0, 0));
    }

    #[test]
    fn partition_covers_all_points_once() {
        let cloud = PointCloud::from_points(vec![
            pt(0.1, 0.1, 0.1),
            pt(0.2, 0.1, 0.1),
            pt(0.9, 0.1, 0.1),
            pt(-0.3, 0.0, 0.0),
        ]);
        let g = CellGrid::new(0.5);
        let cells = g.partition(&cloud);
        let total: usize = cells.iter().map(|c| c.point_count).sum();
        assert_eq!(total, cloud.len());
        // 3 distinct cells.
        assert_eq!(cells.len(), 3);
        // Sorted by id.
        for w in cells.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn extract_returns_cell_points() {
        let cloud = PointCloud::from_points(vec![
            pt(0.1, 0.1, 0.1),
            pt(0.9, 0.1, 0.1),
            pt(0.15, 0.1, 0.1),
        ]);
        let g = CellGrid::new(0.5);
        let cells = g.partition(&cloud);
        let first = cells.iter().find(|c| c.id == CellId::new(0, 0, 0)).unwrap();
        let sub = g.extract(&cloud, first);
        assert_eq!(sub.len(), 2);
        for p in &sub.points {
            assert!(g.cell_bounds(first.id).contains(p.position()));
        }
    }

    #[test]
    fn extract_soa_matches_aos_extract() {
        let body = crate::synthetic::SyntheticBody::default();
        let cloud = body.frame(2, 4_000);
        let g = CellGrid::new(0.5);
        let mut soa = SoAPoints::new();
        for info in &g.partition(&cloud) {
            g.extract_soa_into(&cloud, info, &mut soa);
            let aos = g.extract(&cloud, info);
            assert_eq!(soa.len(), aos.len());
            for (i, p) in aos.points.iter().enumerate() {
                assert_eq!(soa.point(i), *p);
            }
        }
    }

    #[test]
    fn coarser_grid_has_fewer_cells() {
        // Statistical sanity on a synthetic body frame: halving resolution
        // reduces cell count.
        let body = crate::synthetic::SyntheticBody::default();
        let cloud = body.frame(0, 10_000);
        let fine = CellGrid::new(0.25).partition(&cloud).len();
        let mid = CellGrid::new(0.5).partition(&cloud).len();
        let coarse = CellGrid::new(1.0).partition(&cloud).len();
        assert!(fine > mid && mid > coarse, "{fine} > {mid} > {coarse}");
    }

    #[test]
    #[should_panic]
    fn zero_cell_size_panics() {
        let _ = CellGrid::new(0.0);
    }
}

//! Point-cloud substrate for volcast.
//!
//! The paper streams the 8i "soldier" voxelized point-cloud video compressed
//! with Google Draco; neither artifact is redistributable here, so this crate
//! provides the synthetic equivalents (see `DESIGN.md` §1):
//!
//! - [`PointCloud`] / [`VideoSequence`]: frames of colored points,
//! - [`synthetic::SyntheticBody`]: a parametric animated humanoid sampled to
//!   an exact target density (330K/430K/550K points per frame),
//! - [`CellGrid`]: the spatial cell partition (25/50/100 cm cells) that makes
//!   each cell independently prefetchable and decodable, as in ViVo,
//! - [`codec`]: a real octree geometry codec (quantization + occupancy
//!   entropy coding with an adaptive binary range coder) standing in for
//!   Draco, with matching rate behaviour,
//! - [`DecodeModel`]: the client-side decode-throughput ceiling (the paper's
//!   "550K points is the highest density decodable at 30 FPS"),
//! - [`QualityLadder`]: the three-version quality ladder with bitrates,
//! - [`Ladder`]: the canonical quality-level ↔ octree-depth/bytes mapping
//!   shared by the codec's layered mode, rate adaptation, and campus
//!   capacity planning.
//!
//! ```
//! use volcast_pointcloud::{CellGrid, SyntheticBody};
//!
//! // A synthetic frame at an exact density, partitioned into 50 cm cells.
//! let cloud = SyntheticBody::default().frame(0, 2_000);
//! assert_eq!(cloud.len(), 2_000);
//! let cells = CellGrid::new(0.5).partition(&cloud);
//! assert_eq!(cells.iter().map(|c| c.point_count).sum::<usize>(), 2_000);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is `codec::simd`,
// which opts back in for its `core::arch` kernels (every block documented,
// enforced by `clippy::undocumented_unsafe_blocks` in verify.sh). All other
// crates in the workspace stay at `forbid`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod codec;
pub mod decode_model;
pub mod point;
pub mod quality;
pub mod synthetic;
pub mod video;

pub use cells::{CellGrid, CellId, CellInfo};
pub use decode_model::DecodeModel;
pub use point::{Point, PointCloud, SoAPoints};
pub use quality::{Ladder, Quality, QualityLadder, QualityLevel};
pub use synthetic::SyntheticBody;
pub use video::VideoSequence;

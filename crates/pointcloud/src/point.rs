//! Points and point clouds.

use volcast_geom::{Aabb, Vec3};

/// A single colored point.
///
/// Positions are `f32` (sub-millimeter precision over room scale) because a
/// frame holds hundreds of thousands of points and memory bandwidth matters;
/// all analytical math upstream uses `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Position in meters.
    pub pos: [f32; 3],
    /// RGB color.
    pub color: [u8; 3],
}

impl Point {
    /// Creates a point.
    pub fn new(pos: [f32; 3], color: [u8; 3]) -> Self {
        Point { pos, color }
    }

    /// Position as a `Vec3`.
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.pos[0] as f64, self.pos[1] as f64, self.pos[2] as f64)
    }
}

/// One frame of volumetric content: an unordered set of colored points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    /// The points.
    pub points: Vec<Point>,
}

impl PointCloud {
    /// An empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Builds from a vector of points.
    pub fn from_points(points: Vec<Point>) -> Self {
        PointCloud { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Tight axis-aligned bounds of the cloud (empty box when no points).
    pub fn bounds(&self) -> Aabb {
        // Fold in f32 with four independent accumulators (min/max are
        // associative and commutative on NaN-free data, so the regrouping
        // is exact), then widen once: f32 -> f64 is exact and monotone, so
        // the result is bit-identical to folding widened points one by one.
        if self.points.is_empty() {
            return Aabb::empty();
        }
        let mut lo = [[f32::INFINITY; 3]; 4];
        let mut hi = [[f32::NEG_INFINITY; 3]; 4];
        let mut chunks = self.points.chunks_exact(4);
        for chunk in &mut chunks {
            for (lane, p) in chunk.iter().enumerate() {
                for c in 0..3 {
                    lo[lane][c] = lo[lane][c].min(p.pos[c]);
                    hi[lane][c] = hi[lane][c].max(p.pos[c]);
                }
            }
        }
        for p in chunks.remainder() {
            for c in 0..3 {
                lo[0][c] = lo[0][c].min(p.pos[c]);
                hi[0][c] = hi[0][c].max(p.pos[c]);
            }
        }
        for lane in 1..4 {
            for c in 0..3 {
                lo[0][c] = lo[0][c].min(lo[lane][c]);
                hi[0][c] = hi[0][c].max(hi[lane][c]);
            }
        }
        Aabb {
            min: Vec3::new(lo[0][0] as f64, lo[0][1] as f64, lo[0][2] as f64),
            max: Vec3::new(hi[0][0] as f64, hi[0][1] as f64, hi[0][2] as f64),
        }
    }

    /// Centroid of the points; `None` for the empty cloud.
    pub fn centroid(&self) -> Option<Vec3> {
        if self.points.is_empty() {
            return None;
        }
        let sum = self
            .points
            .iter()
            .fold(Vec3::ZERO, |acc, p| acc + p.position());
        Some(sum / self.points.len() as f64)
    }

    /// Deterministically subsamples the cloud to at most `target` points,
    /// taking every k-th point (stride sampling preserves spatial
    /// uniformity for interleaved generators).
    pub fn subsample(&self, target: usize) -> PointCloud {
        if target == 0 {
            return PointCloud::new();
        }
        if self.points.len() <= target {
            return self.clone();
        }
        let stride = self.points.len() as f64 / target as f64;
        let mut pts = Vec::with_capacity(target);
        let mut idx = 0.0f64;
        while pts.len() < target {
            let i = idx as usize;
            if i >= self.points.len() {
                break;
            }
            pts.push(self.points[i]);
            idx += stride;
        }
        PointCloud::from_points(pts)
    }
}

/// Struct-of-arrays point storage: separate `x`/`y`/`z` coordinate arrays
/// plus packed RGB colors (`r | g<<8 | b<<16`).
///
/// The codec's hot path (bounds, quantization, Morton encoding) streams one
/// coordinate lane at a time; SoA keeps each lane contiguous so the SIMD
/// kernels in [`crate::codec::simd`] load full vectors with no gather or
/// transpose. Convert from/to the AoS [`PointCloud`] API at the edges with
/// [`SoAPoints::fill_from_cloud`] / [`SoAPoints::to_cloud_into`]; the
/// conversions are exact (no value changes in either direction), so
/// encoding a converted cloud is byte-identical to encoding the original.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoAPoints {
    xs: Vec<f32>,
    ys: Vec<f32>,
    zs: Vec<f32>,
    /// Packed colors, one per point: `r | g<<8 | b<<16` (top byte zero).
    colors: Vec<u32>,
}

impl SoAPoints {
    /// An empty SoA cloud.
    pub fn new() -> Self {
        SoAPoints::default()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when there are no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Removes all points, retaining the lane allocations.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.colors.clear();
    }

    /// Reserves capacity for `additional` more points in every lane.
    pub fn reserve(&mut self, additional: usize) {
        self.xs.reserve(additional);
        self.ys.reserve(additional);
        self.zs.reserve(additional);
        self.colors.reserve(additional);
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, pos: [f32; 3], color: [u8; 3]) {
        self.xs.push(pos[0]);
        self.ys.push(pos[1]);
        self.zs.push(pos[2]);
        self.colors
            .push(color[0] as u32 | (color[1] as u32) << 8 | (color[2] as u32) << 16);
    }

    /// The x-coordinate lane.
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    /// The y-coordinate lane.
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// The z-coordinate lane.
    pub fn zs(&self) -> &[f32] {
        &self.zs
    }

    /// The packed color lane (`r | g<<8 | b<<16` per point).
    pub fn colors_packed(&self) -> &[u32] {
        &self.colors
    }

    /// The `i`-th point, reassembled as an AoS [`Point`].
    pub fn point(&self, i: usize) -> Point {
        let c = self.colors[i];
        Point::new(
            [self.xs[i], self.ys[i], self.zs[i]],
            [
                (c & 0xFF) as u8,
                ((c >> 8) & 0xFF) as u8,
                ((c >> 16) & 0xFF) as u8,
            ],
        )
    }

    /// Builds from an AoS cloud.
    pub fn from_cloud(cloud: &PointCloud) -> Self {
        let mut out = SoAPoints::new();
        out.fill_from_cloud(cloud);
        out
    }

    /// Refills from an AoS cloud (cleared first), reusing lane allocations.
    pub fn fill_from_cloud(&mut self, cloud: &PointCloud) {
        self.clear();
        self.reserve(cloud.len());
        for p in &cloud.points {
            self.push(p.pos, p.color);
        }
    }

    /// Writes the points back into an AoS cloud (cleared first), reusing its
    /// allocation. Exact inverse of [`SoAPoints::fill_from_cloud`].
    pub fn to_cloud_into(&self, out: &mut PointCloud) {
        out.points.clear();
        out.points.reserve(self.len());
        for i in 0..self.len() {
            out.points.push(self.point(i));
        }
    }

    /// Tight axis-aligned bounds, **bit-identical** to
    /// [`PointCloud::bounds`] on the same points: the same four-lane f32
    /// accumulator grouping (chunks of 4 points, remainder folded into lane
    /// 0, lanes folded left) in the same order, so converting a cloud to SoA
    /// never changes the codec's quantization grid.
    pub fn bounds(&self) -> Aabb {
        if self.xs.is_empty() {
            return Aabb::empty();
        }
        let mut lo = [[f32::INFINITY; 3]; 4];
        let mut hi = [[f32::NEG_INFINITY; 3]; 4];
        let n = self.xs.len();
        let n4 = n - n % 4;
        for i in (0..n4).step_by(4) {
            for lane in 0..4 {
                let p = [self.xs[i + lane], self.ys[i + lane], self.zs[i + lane]];
                for c in 0..3 {
                    lo[lane][c] = lo[lane][c].min(p[c]);
                    hi[lane][c] = hi[lane][c].max(p[c]);
                }
            }
        }
        for i in n4..n {
            let p = [self.xs[i], self.ys[i], self.zs[i]];
            for c in 0..3 {
                lo[0][c] = lo[0][c].min(p[c]);
                hi[0][c] = hi[0][c].max(p[c]);
            }
        }
        for lane in 1..4 {
            for c in 0..3 {
                lo[0][c] = lo[0][c].min(lo[lane][c]);
                hi[0][c] = hi[0][c].max(hi[lane][c]);
            }
        }
        Aabb {
            min: Vec3::new(lo[0][0] as f64, lo[0][1] as f64, lo[0][2] as f64),
            max: Vec3::new(hi[0][0] as f64, hi[0][1] as f64, hi[0][2] as f64),
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Point { pos, color });
volcast_util::impl_json_struct!(PointCloud { points });

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> PointCloud {
        PointCloud::from_points(
            (0..n)
                .map(|i| Point::new([i as f32, 0.0, 0.0], [i as u8, 0, 0]))
                .collect(),
        )
    }

    #[test]
    fn len_and_empty() {
        assert!(PointCloud::new().is_empty());
        assert_eq!(cloud(5).len(), 5);
        assert!(!cloud(1).is_empty());
    }

    #[test]
    fn bounds_are_tight() {
        let c = cloud(3); // x in {0, 1, 2}
        let b = c.bounds();
        assert_eq!(b.min, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 0.0, 0.0));
        assert!(PointCloud::new().bounds().is_empty());
    }

    #[test]
    fn centroid() {
        let c = cloud(3);
        assert_eq!(c.centroid(), Some(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(PointCloud::new().centroid(), None);
    }

    #[test]
    fn subsample_counts() {
        let c = cloud(100);
        assert_eq!(c.subsample(10).len(), 10);
        assert_eq!(c.subsample(100).len(), 100);
        assert_eq!(c.subsample(1000).len(), 100); // no upsampling
        assert_eq!(c.subsample(0).len(), 0);
        assert_eq!(c.subsample(1).len(), 1);
    }

    #[test]
    fn subsample_spreads_across_input() {
        let c = cloud(100);
        let s = c.subsample(10);
        // Stride sampling: first point is index 0, last is near the end.
        assert_eq!(s.points[0].pos[0], 0.0);
        assert!(s.points[9].pos[0] >= 80.0);
    }

    #[test]
    fn point_position_conversion() {
        let p = Point::new([1.5, -2.0, 0.25], [1, 2, 3]);
        assert_eq!(p.position(), Vec3::new(1.5, -2.0, 0.25));
    }
}

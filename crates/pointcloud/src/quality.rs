//! The three-version quality ladder from the paper's experimental setup.
//!
//! The paper encodes the soldier sequence at three point densities — 330K,
//! 430K and 550K points/frame — whose compressed bitrates range from 235 to
//! 364 Mbps. [`Quality`] captures those calibration anchors so the network
//! experiments can compute frame sizes without generating geometry, while
//! [`QualityLadder`] ties the levels to an actual synthetic video.
//!
//! [`Ladder`] is the canonical QualityLevel → octree-depth / bytes mapping
//! shared by the codec's layered configuration, the rate adapter, and the
//! campus simulation's sustainable-load clamp. Before it existed the
//! mapping logic was duplicated across those layers; the older loose
//! accessors ([`Quality::of`], [`QualityLadder::best_within`]) are
//! deprecated in its favor.

/// One of the paper's three quality versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QualityLevel {
    /// 330K points/frame.
    Low,
    /// 430K points/frame.
    Medium,
    /// 550K points/frame (double the highest density used in ViVo; the
    /// highest density Draco-decodable at 30 FPS on the client laptops).
    High,
}

impl QualityLevel {
    /// All levels, lowest first.
    pub const ALL: [QualityLevel; 3] =
        [QualityLevel::Low, QualityLevel::Medium, QualityLevel::High];

    /// Human-readable label matching the paper's table ("330K points").
    pub fn label(self) -> &'static str {
        match self {
            QualityLevel::Low => "330K points",
            QualityLevel::Medium => "430K points",
            QualityLevel::High => "550K points",
        }
    }

    /// The next level down, or `None` at the bottom.
    pub fn lower(self) -> Option<QualityLevel> {
        match self {
            QualityLevel::Low => None,
            QualityLevel::Medium => Some(QualityLevel::Low),
            QualityLevel::High => Some(QualityLevel::Medium),
        }
    }

    /// The next level up, or `None` at the top.
    pub fn higher(self) -> Option<QualityLevel> {
        match self {
            QualityLevel::Low => Some(QualityLevel::Medium),
            QualityLevel::Medium => Some(QualityLevel::High),
            QualityLevel::High => None,
        }
    }
}

/// Calibrated per-level streaming parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Level identifier.
    pub level: QualityLevel,
    /// Target points per frame.
    pub points_per_frame: usize,
    /// Calibrated compressed full-frame bitrate in Mbps at 30 FPS
    /// (paper: 235-364 Mbps across the ladder).
    pub full_frame_mbps: f64,
}

/// Paper-calibrated anchors for a level (internal: the un-deprecated
/// source of truth behind [`Quality::of`] and [`Ladder`]).
fn anchor(level: QualityLevel) -> Quality {
    match level {
        QualityLevel::Low => Quality {
            level,
            points_per_frame: 330_000,
            full_frame_mbps: 235.0,
        },
        QualityLevel::Medium => Quality {
            level,
            points_per_frame: 430_000,
            full_frame_mbps: 294.0,
        },
        QualityLevel::High => Quality {
            level,
            points_per_frame: 550_000,
            full_frame_mbps: 364.0,
        },
    }
}

/// Index of a level in low-to-high ladder order.
fn idx(level: QualityLevel) -> usize {
    match level {
        QualityLevel::Low => 0,
        QualityLevel::Medium => 1,
        QualityLevel::High => 2,
    }
}

impl Quality {
    /// Paper-calibrated parameters for a level.
    ///
    /// Bitrates interpolate the paper's 235-364 Mbps range across the
    /// ladder proportionally to point count.
    #[deprecated(note = "use `quality::Ladder::quality` (the canonical mapping)")]
    pub fn of(level: QualityLevel) -> Quality {
        anchor(level)
    }

    /// Compressed size of one full frame in bytes at 30 FPS.
    pub fn full_frame_bytes(&self) -> f64 {
        self.full_frame_mbps * 1e6 / 8.0 / 30.0
    }

    /// Compressed bytes per point implied by the calibration.
    pub fn bytes_per_point(&self) -> f64 {
        self.full_frame_bytes() / self.points_per_frame as f64
    }
}

/// The full ladder: the three levels of one video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityLadder {
    /// The three calibrated levels, lowest first.
    pub levels: [Quality; 3],
}

impl Default for QualityLadder {
    fn default() -> Self {
        QualityLadder {
            levels: [
                anchor(QualityLevel::Low),
                anchor(QualityLevel::Medium),
                anchor(QualityLevel::High),
            ],
        }
    }
}

impl QualityLadder {
    /// Looks up a level's parameters.
    pub fn get(&self, level: QualityLevel) -> Quality {
        self.levels[idx(level)]
    }

    /// The highest level whose full-frame bitrate fits within `budget_mbps`,
    /// or `None` when even Low does not fit.
    #[deprecated(note = "use `quality::Ladder::best_within` (the canonical mapping)")]
    pub fn best_within(&self, budget_mbps: f64) -> Option<QualityLevel> {
        self.levels
            .iter()
            .rev()
            .find(|q| q.full_frame_mbps <= budget_mbps)
            .map(|q| q.level)
    }
}

/// The canonical QualityLevel → octree-depth / bytes mapping.
///
/// One shared type answers every "what does quality level X mean" question
/// in the workspace:
///
/// - **codec**: the octree depth each level quantizes to (the layered
///   encoder's cumulative layer depths are exactly [`Ladder::depths`]),
/// - **rate adaptation**: calibrated bitrates ([`Ladder::best_within`]),
///   distress clamping ([`Ladder::step_down`]) and the level ↔
///   enhancement-layer-count correspondence of layered delivery,
/// - **campus planning**: the sustainable-load clamp
///   ([`Ladder::sustainable_scale`]) and the nominal planning frame size
///   ([`Ladder::PLANNING_FRAME_BYTES`]).
///
/// | Level  | Points | Mbps | Octree depth | Enhancement layers held |
/// |--------|--------|------|--------------|-------------------------|
/// | Low    | 330K   | 235  | 8            | 0 (base only)           |
/// | Medium | 430K   | 294  | 9            | 1                       |
/// | High   | 550K   | 364  | 10           | 2                       |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ladder {
    /// The three calibrated levels, lowest first.
    levels: [Quality; 3],
    /// Cumulative octree depth per level (strictly increasing): the depth
    /// the layered codec refines to once a receiver holds the base layer
    /// plus that level's enhancement layers.
    depths: [u32; 3],
}

impl Default for Ladder {
    fn default() -> Self {
        Ladder::paper()
    }
}

impl Ladder {
    /// The nominal full-quality planning frame size used by capacity
    /// planning (campus admission): 300 Mbps at 30 FPS. Deliberately a
    /// round planning number, not a ladder anchor — admission headroom is
    /// computed against it, then the clamp scales real traffic.
    pub const PLANNING_FRAME_BYTES: f64 = 300.0e6 / 8.0 / 30.0;

    /// The paper-calibrated ladder: 330K/430K/550K points at octree depths
    /// 8/9/10 (the paper's depth-10 soldier at ~2 mm voxels, with each
    /// coarser level halving the spatial resolution).
    pub fn paper() -> Ladder {
        Ladder {
            levels: [
                anchor(QualityLevel::Low),
                anchor(QualityLevel::Medium),
                anchor(QualityLevel::High),
            ],
            depths: [8, 9, 10],
        }
    }

    /// A level's calibrated streaming parameters.
    pub fn quality(&self, level: QualityLevel) -> Quality {
        self.levels[idx(level)]
    }

    /// A level's octree quantization depth.
    pub fn depth(&self, level: QualityLevel) -> u32 {
        self.depths[idx(level)]
    }

    /// Cumulative octree depths, lowest level first (the layered codec's
    /// layer boundaries: base at `depths()[0]`, each enhancement refining
    /// to the next entry).
    pub fn depths(&self) -> [u32; 3] {
        self.depths
    }

    /// Number of enhancement layers a receiver must hold on top of the
    /// base layer to render this level (0 for Low).
    pub fn enhancement_layers(&self, level: QualityLevel) -> usize {
        idx(level)
    }

    /// The level a receiver renders when holding the base layer plus
    /// `layers` enhancement layers (saturating at High).
    pub fn level_for_layers(&self, layers: usize) -> QualityLevel {
        QualityLevel::ALL[layers.min(QualityLevel::ALL.len() - 1)]
    }

    /// The highest level whose full-frame bitrate fits within
    /// `budget_mbps`, or `None` when even Low does not fit.
    pub fn best_within(&self, budget_mbps: f64) -> Option<QualityLevel> {
        self.levels
            .iter()
            .rev()
            .find(|q| q.full_frame_mbps <= budget_mbps)
            .map(|q| q.level)
    }

    /// Compressed size of one full frame at `level`, in bytes.
    pub fn frame_bytes(&self, level: QualityLevel) -> f64 {
        self.quality(level).full_frame_bytes()
    }

    /// Marginal compressed bytes of layer `layer` (0 = base): the cost of
    /// that layer alone, so base plus the first `k` enhancements sums to
    /// the level-`k` frame size.
    pub fn layer_frame_bytes(&self, layer: usize) -> f64 {
        let layer = layer.min(self.levels.len() - 1);
        if layer == 0 {
            self.levels[0].full_frame_bytes()
        } else {
            self.levels[layer].full_frame_bytes() - self.levels[layer - 1].full_frame_bytes()
        }
    }

    /// Steps `level` down the ladder `steps` times, saturating at Low.
    pub fn step_down(&self, level: QualityLevel, steps: u32) -> QualityLevel {
        let mut level = level;
        for _ in 0..steps {
            match level.lower() {
                Some(l) => level = l,
                None => break,
            }
        }
        level
    }

    /// The campus sustainable-load clamp: given one station's per-frame
    /// airtime demand `demand_s` against a frame interval `interval_s`,
    /// the quality scale (1.0 = full quality) that makes the demand fit.
    /// Infinite demand (unreachable station) clamps to full quality — the
    /// caller gates on reachability separately.
    pub fn sustainable_scale(interval_s: f64, demand_s: f64) -> f64 {
        if demand_s > interval_s && demand_s.is_finite() {
            interval_s / demand_s
        } else {
            1.0
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(QualityLevel { Low, Medium, High });
volcast_util::impl_json_struct!(Quality {
    level,
    points_per_frame,
    full_frame_mbps
});
volcast_util::impl_json_struct!(QualityLadder { levels });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let l = QualityLadder::default();
        assert!(
            l.get(QualityLevel::Low).points_per_frame
                < l.get(QualityLevel::Medium).points_per_frame
        );
        assert!(
            l.get(QualityLevel::Medium).points_per_frame
                < l.get(QualityLevel::High).points_per_frame
        );
        assert!(
            l.get(QualityLevel::Low).full_frame_mbps < l.get(QualityLevel::High).full_frame_mbps
        );
    }

    #[test]
    fn paper_anchor_bitrates() {
        let l = Ladder::paper();
        assert_eq!(l.quality(QualityLevel::Low).full_frame_mbps, 235.0);
        assert_eq!(l.quality(QualityLevel::High).full_frame_mbps, 364.0);
        assert_eq!(l.quality(QualityLevel::High).points_per_frame, 550_000);
        // The deprecated accessor must keep answering identically.
        #[allow(deprecated)]
        for level in QualityLevel::ALL {
            assert_eq!(Quality::of(level), l.quality(level));
        }
    }

    #[test]
    fn frame_bytes_match_bitrate() {
        let q = Ladder::paper().quality(QualityLevel::High);
        // 364 Mbps at 30 FPS ~ 1.52 MB/frame.
        let mb = q.full_frame_bytes() / 1e6;
        assert!((mb - 1.516).abs() < 0.01, "{mb}");
        // Bytes per point ~ 2.7.
        assert!((q.bytes_per_point() - 2.76).abs() < 0.1);
    }

    #[test]
    fn level_ordering_helpers() {
        assert_eq!(QualityLevel::Low.lower(), None);
        assert_eq!(QualityLevel::Low.higher(), Some(QualityLevel::Medium));
        assert_eq!(QualityLevel::High.higher(), None);
        assert_eq!(QualityLevel::High.lower(), Some(QualityLevel::Medium));
        assert!(QualityLevel::Low < QualityLevel::High);
    }

    #[test]
    fn best_within_budget() {
        let l = Ladder::paper();
        assert_eq!(l.best_within(400.0), Some(QualityLevel::High));
        assert_eq!(l.best_within(300.0), Some(QualityLevel::Medium));
        assert_eq!(l.best_within(240.0), Some(QualityLevel::Low));
        assert_eq!(l.best_within(100.0), None);
        // The deprecated QualityLadder accessor answers identically.
        #[allow(deprecated)]
        for budget in [400.0, 300.0, 240.0, 100.0] {
            assert_eq!(
                QualityLadder::default().best_within(budget),
                l.best_within(budget)
            );
        }
    }

    #[test]
    fn ladder_depths_and_layers_correspond() {
        let l = Ladder::paper();
        assert_eq!(l.depths(), [8, 9, 10]);
        assert_eq!(l.depth(QualityLevel::Low), 8);
        assert_eq!(l.depth(QualityLevel::High), 10);
        assert_eq!(l.enhancement_layers(QualityLevel::Low), 0);
        assert_eq!(l.enhancement_layers(QualityLevel::High), 2);
        for level in QualityLevel::ALL {
            assert_eq!(l.level_for_layers(l.enhancement_layers(level)), level);
        }
        assert_eq!(l.level_for_layers(99), QualityLevel::High);
    }

    #[test]
    fn layer_bytes_telescope_to_frame_bytes() {
        let l = Ladder::paper();
        for level in QualityLevel::ALL {
            let layers = l.enhancement_layers(level);
            let sum: f64 = (0..=layers).map(|k| l.layer_frame_bytes(k)).sum();
            assert!((sum - l.frame_bytes(level)).abs() < 1e-9, "{level:?}");
        }
        // Enhancement layers are strictly positive marginal cost.
        assert!(l.layer_frame_bytes(1) > 0.0);
        assert!(l.layer_frame_bytes(2) > 0.0);
    }

    #[test]
    fn step_down_saturates() {
        let l = Ladder::paper();
        assert_eq!(l.step_down(QualityLevel::High, 0), QualityLevel::High);
        assert_eq!(l.step_down(QualityLevel::High, 1), QualityLevel::Medium);
        assert_eq!(l.step_down(QualityLevel::High, 2), QualityLevel::Low);
        assert_eq!(l.step_down(QualityLevel::High, 99), QualityLevel::Low);
        assert_eq!(l.step_down(QualityLevel::Low, 1), QualityLevel::Low);
    }

    #[test]
    fn sustainable_scale_clamps_only_overload() {
        // Fits: identity.
        assert_eq!(Ladder::sustainable_scale(1.0 / 30.0, 0.01), 1.0);
        // Overload: scale = interval / demand.
        let s = Ladder::sustainable_scale(1.0 / 30.0, 1.0 / 15.0);
        assert!((s - 0.5).abs() < 1e-12);
        // Unreachable (infinite demand): the caller's reachability gate
        // owns that case; the clamp stays at full quality.
        assert_eq!(Ladder::sustainable_scale(1.0 / 30.0, f64::INFINITY), 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(QualityLevel::High.label(), "550K points");
        assert_eq!(QualityLevel::ALL.len(), 3);
    }
}

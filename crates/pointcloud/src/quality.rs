//! The three-version quality ladder from the paper's experimental setup.
//!
//! The paper encodes the soldier sequence at three point densities — 330K,
//! 430K and 550K points/frame — whose compressed bitrates range from 235 to
//! 364 Mbps. [`Quality`] captures those calibration anchors so the network
//! experiments can compute frame sizes without generating geometry, while
//! [`QualityLadder`] ties the levels to an actual synthetic video.

/// One of the paper's three quality versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QualityLevel {
    /// 330K points/frame.
    Low,
    /// 430K points/frame.
    Medium,
    /// 550K points/frame (double the highest density used in ViVo; the
    /// highest density Draco-decodable at 30 FPS on the client laptops).
    High,
}

impl QualityLevel {
    /// All levels, lowest first.
    pub const ALL: [QualityLevel; 3] =
        [QualityLevel::Low, QualityLevel::Medium, QualityLevel::High];

    /// Human-readable label matching the paper's table ("330K points").
    pub fn label(self) -> &'static str {
        match self {
            QualityLevel::Low => "330K points",
            QualityLevel::Medium => "430K points",
            QualityLevel::High => "550K points",
        }
    }

    /// The next level down, or `None` at the bottom.
    pub fn lower(self) -> Option<QualityLevel> {
        match self {
            QualityLevel::Low => None,
            QualityLevel::Medium => Some(QualityLevel::Low),
            QualityLevel::High => Some(QualityLevel::Medium),
        }
    }

    /// The next level up, or `None` at the top.
    pub fn higher(self) -> Option<QualityLevel> {
        match self {
            QualityLevel::Low => Some(QualityLevel::Medium),
            QualityLevel::Medium => Some(QualityLevel::High),
            QualityLevel::High => None,
        }
    }
}

/// Calibrated per-level streaming parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Level identifier.
    pub level: QualityLevel,
    /// Target points per frame.
    pub points_per_frame: usize,
    /// Calibrated compressed full-frame bitrate in Mbps at 30 FPS
    /// (paper: 235-364 Mbps across the ladder).
    pub full_frame_mbps: f64,
}

impl Quality {
    /// Paper-calibrated parameters for a level.
    ///
    /// Bitrates interpolate the paper's 235-364 Mbps range across the
    /// ladder proportionally to point count.
    pub fn of(level: QualityLevel) -> Quality {
        match level {
            QualityLevel::Low => Quality {
                level,
                points_per_frame: 330_000,
                full_frame_mbps: 235.0,
            },
            QualityLevel::Medium => Quality {
                level,
                points_per_frame: 430_000,
                full_frame_mbps: 294.0,
            },
            QualityLevel::High => Quality {
                level,
                points_per_frame: 550_000,
                full_frame_mbps: 364.0,
            },
        }
    }

    /// Compressed size of one full frame in bytes at 30 FPS.
    pub fn full_frame_bytes(&self) -> f64 {
        self.full_frame_mbps * 1e6 / 8.0 / 30.0
    }

    /// Compressed bytes per point implied by the calibration.
    pub fn bytes_per_point(&self) -> f64 {
        self.full_frame_bytes() / self.points_per_frame as f64
    }
}

/// The full ladder: the three levels of one video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityLadder {
    /// The three calibrated levels, lowest first.
    pub levels: [Quality; 3],
}

impl Default for QualityLadder {
    fn default() -> Self {
        QualityLadder {
            levels: [
                Quality::of(QualityLevel::Low),
                Quality::of(QualityLevel::Medium),
                Quality::of(QualityLevel::High),
            ],
        }
    }
}

impl QualityLadder {
    /// Looks up a level's parameters.
    pub fn get(&self, level: QualityLevel) -> Quality {
        self.levels[match level {
            QualityLevel::Low => 0,
            QualityLevel::Medium => 1,
            QualityLevel::High => 2,
        }]
    }

    /// The highest level whose full-frame bitrate fits within `budget_mbps`,
    /// or `None` when even Low does not fit.
    pub fn best_within(&self, budget_mbps: f64) -> Option<QualityLevel> {
        self.levels
            .iter()
            .rev()
            .find(|q| q.full_frame_mbps <= budget_mbps)
            .map(|q| q.level)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(QualityLevel { Low, Medium, High });
volcast_util::impl_json_struct!(Quality {
    level,
    points_per_frame,
    full_frame_mbps
});
volcast_util::impl_json_struct!(QualityLadder { levels });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let l = QualityLadder::default();
        assert!(
            l.get(QualityLevel::Low).points_per_frame
                < l.get(QualityLevel::Medium).points_per_frame
        );
        assert!(
            l.get(QualityLevel::Medium).points_per_frame
                < l.get(QualityLevel::High).points_per_frame
        );
        assert!(
            l.get(QualityLevel::Low).full_frame_mbps < l.get(QualityLevel::High).full_frame_mbps
        );
    }

    #[test]
    fn paper_anchor_bitrates() {
        assert_eq!(Quality::of(QualityLevel::Low).full_frame_mbps, 235.0);
        assert_eq!(Quality::of(QualityLevel::High).full_frame_mbps, 364.0);
        assert_eq!(Quality::of(QualityLevel::High).points_per_frame, 550_000);
    }

    #[test]
    fn frame_bytes_match_bitrate() {
        let q = Quality::of(QualityLevel::High);
        // 364 Mbps at 30 FPS ~ 1.52 MB/frame.
        let mb = q.full_frame_bytes() / 1e6;
        assert!((mb - 1.516).abs() < 0.01, "{mb}");
        // Bytes per point ~ 2.7.
        assert!((q.bytes_per_point() - 2.76).abs() < 0.1);
    }

    #[test]
    fn level_ordering_helpers() {
        assert_eq!(QualityLevel::Low.lower(), None);
        assert_eq!(QualityLevel::Low.higher(), Some(QualityLevel::Medium));
        assert_eq!(QualityLevel::High.higher(), None);
        assert_eq!(QualityLevel::High.lower(), Some(QualityLevel::Medium));
        assert!(QualityLevel::Low < QualityLevel::High);
    }

    #[test]
    fn best_within_budget() {
        let l = QualityLadder::default();
        assert_eq!(l.best_within(400.0), Some(QualityLevel::High));
        assert_eq!(l.best_within(300.0), Some(QualityLevel::Medium));
        assert_eq!(l.best_within(240.0), Some(QualityLevel::Low));
        assert_eq!(l.best_within(100.0), None);
    }

    #[test]
    fn labels() {
        assert_eq!(QualityLevel::High.label(), "550K points");
        assert_eq!(QualityLevel::ALL.len(), 3);
    }
}

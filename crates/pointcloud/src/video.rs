//! Volumetric video sequences: frames + quality ladder + cell sizes.

use crate::cells::{CellGrid, CellInfo};
use crate::codec::{encode, CodecConfig, CodecStats, EncodedCloud, Encoder};
use crate::point::{PointCloud, SoAPoints};
use crate::quality::{Quality, QualityLadder, QualityLevel};
use crate::synthetic::SyntheticBody;

/// A volumetric video: a synthetic body animated over `num_frames` frames,
/// generable at any of the ladder's quality levels.
///
/// Frames are generated on demand and deterministically, so experiments can
/// sweep hundreds of frames without holding them in memory.
#[derive(Debug, Clone)]
pub struct VideoSequence {
    /// The animated subject.
    pub body: SyntheticBody,
    /// Quality ladder.
    pub ladder: QualityLadder,
    /// Total number of frames (the paper's IoU plots span ~300 frames).
    pub num_frames: u64,
    /// Frames per second.
    pub fps: f64,
}

impl Default for VideoSequence {
    fn default() -> Self {
        VideoSequence {
            body: SyntheticBody::default(),
            ladder: QualityLadder::default(),
            num_frames: 300,
            fps: 30.0,
        }
    }
}

impl VideoSequence {
    /// Creates a sequence with the given seed and length.
    pub fn new(seed: u64, num_frames: u64) -> Self {
        VideoSequence {
            body: SyntheticBody {
                seed,
                ..Default::default()
            },
            num_frames,
            ..Default::default()
        }
    }

    /// Generates frame `idx` at `level` quality.
    pub fn frame(&self, idx: u64, level: QualityLevel) -> PointCloud {
        let q = self.ladder.get(level);
        self.body
            .frame(idx % self.num_frames.max(1), q.points_per_frame)
    }

    /// Generates frame `idx` at `level` quality into `out` (cleared first),
    /// reusing its allocation across frames.
    pub fn frame_into(&self, idx: u64, level: QualityLevel, out: &mut PointCloud) {
        let q = self.ladder.get(level);
        self.body
            .frame_into(idx % self.num_frames.max(1), q.points_per_frame, out);
    }

    /// Generates a reduced-density frame for fast analytical experiments
    /// (e.g. visibility statistics, where cell occupancy — not raw density —
    /// matters). `points` is the target count.
    pub fn frame_with_density(&self, idx: u64, points: usize) -> PointCloud {
        self.body.frame(idx % self.num_frames.max(1), points)
    }

    /// Reusable-buffer variant of [`VideoSequence::frame_with_density`].
    pub fn frame_with_density_into(&self, idx: u64, points: usize, out: &mut PointCloud) {
        self.body
            .frame_into(idx % self.num_frames.max(1), points, out);
    }

    /// SoA variant of [`VideoSequence::frame_with_density_into`]:
    /// point-for-point identical frames, generated straight into SoA lanes
    /// for the codec's vectorized encode path.
    pub fn frame_with_density_soa_into(&self, idx: u64, points: usize, out: &mut SoAPoints) {
        self.body
            .frame_into_soa(idx % self.num_frames.max(1), points, out);
    }

    /// Encodes a frame, returning the bitstream and codec statistics.
    pub fn encode_frame(
        &self,
        idx: u64,
        level: QualityLevel,
        cfg: &CodecConfig,
    ) -> (EncodedCloud, CodecStats) {
        encode(&self.frame(idx, level), cfg)
    }

    /// Reusable variant of [`VideoSequence::encode_frame`]: generates the
    /// frame into `scratch` and encodes it into `out` through the
    /// caller-owned `enc`. With warmed buffers the whole generate+encode
    /// step is allocation-free; the bitstream is byte-identical to
    /// [`VideoSequence::encode_frame`].
    pub fn encode_frame_into(
        &self,
        idx: u64,
        level: QualityLevel,
        cfg: &CodecConfig,
        enc: &mut Encoder,
        scratch: &mut PointCloud,
        out: &mut Vec<u8>,
    ) -> CodecStats {
        self.frame_into(idx, level, scratch);
        enc.encode_into(scratch, cfg, out)
    }

    /// Partitions a frame into cells, returning both the cells and the
    /// per-cell compressed-size estimate in bytes (proportional share of the
    /// calibrated frame size — cells are coded independently, and their cost
    /// is dominated by point count).
    pub fn partition_frame(
        &self,
        idx: u64,
        level: QualityLevel,
        grid: &CellGrid,
    ) -> (Vec<CellInfo>, Vec<f64>) {
        let quality = self.ladder.get(level);
        let cloud = self.frame(idx, level);
        let cells = grid.partition(&cloud);
        let sizes = cells
            .iter()
            .map(|c| c.point_count as f64 * quality.bytes_per_point())
            .collect();
        (cells, sizes)
    }

    /// The calibrated quality parameters at a level.
    pub fn quality(&self, level: QualityLevel) -> Quality {
        self.ladder.get(level)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(VideoSequence {
    body,
    ladder,
    num_frames,
    fps
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_density_follows_quality() {
        let v = VideoSequence::new(1, 30);
        // Generating full 330K-550K frames is slow for a unit test; use the
        // density passthrough and the ladder's declared counts instead.
        assert_eq!(v.quality(QualityLevel::Low).points_per_frame, 330_000);
        let small = v.frame_with_density(0, 5_000);
        assert_eq!(small.len(), 5_000);
    }

    #[test]
    fn frames_wrap_at_sequence_length() {
        let v = VideoSequence::new(1, 10);
        let a = v.frame_with_density(0, 1_000);
        let b = v.frame_with_density(10, 1_000);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn partition_sizes_sum_to_frame_size() {
        let mut v = VideoSequence::new(2, 30);
        // Shrink the ladder for test speed: pretend Low is 5K points.
        v.ladder.levels[0].points_per_frame = 5_000;
        let grid = CellGrid::new(0.5);
        let (cells, sizes) = v.partition_frame(0, QualityLevel::Low, &grid);
        assert_eq!(cells.len(), sizes.len());
        let total_points: usize = cells.iter().map(|c| c.point_count).sum();
        assert_eq!(total_points, 5_000);
        let total_bytes: f64 = sizes.iter().sum();
        let expect = 5_000.0 * v.quality(QualityLevel::Low).bytes_per_point();
        assert!((total_bytes - expect).abs() < 1e-6);
    }

    #[test]
    fn encode_frame_produces_stats() {
        let mut v = VideoSequence::new(3, 30);
        v.ladder.levels[0].points_per_frame = 3_000;
        let (enc, stats) = v.encode_frame(0, QualityLevel::Low, &CodecConfig::default());
        assert_eq!(stats.input_points, 3_000);
        assert!(enc.size_bytes() > 0);
    }

    #[test]
    fn encode_frame_into_matches_encode_frame() {
        let mut v = VideoSequence::new(3, 30);
        v.ladder.levels[0].points_per_frame = 2_000;
        let cfg = CodecConfig::default();
        let mut enc = Encoder::new();
        let mut scratch = PointCloud::new();
        let mut out = Vec::new();
        for idx in [0u64, 5, 2] {
            let stats = v.encode_frame_into(
                idx,
                QualityLevel::Low,
                &cfg,
                &mut enc,
                &mut scratch,
                &mut out,
            );
            let (expect, expect_stats) = v.encode_frame(idx, QualityLevel::Low, &cfg);
            assert_eq!(out, expect.data, "frame {idx}");
            assert_eq!(stats, expect_stats);
        }
    }
}

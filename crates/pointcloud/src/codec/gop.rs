//! GOP-batched encoding: one deterministic parallel sweep per group of
//! pictures.
//!
//! Frame pipelines that encode a whole GOP (the ladder streams 30-frame
//! groups at 30 FPS) waste the frame loop's serial structure: every frame
//! is independent once its points exist, so generation + encode can sweep
//! the group across `volcast_util::par` workers. [`GopEncoder`] owns one
//! encoder arena per GOP slot; slots persist across GOPs at their
//! high-watermark sizes, so the steady-state batched path is allocation-
//! free (gated by `tests/codec_alloc.rs`), and each frame's bitstream is
//! byte-identical to a serial per-frame [`Encoder::encode_into`] — the
//! sweep only reorders *which thread* runs a slot, never what the slot
//! computes, so results are independent of `VOLCAST_THREADS`.

use super::{CodecConfig, CodecStats, Encoder};
use crate::point::{PointCloud, SoAPoints};
use crate::video::VideoSequence;
use volcast_util::par;
use volcast_util::scratch::Pool;

/// One GOP slot: a private encoder arena plus frame staging, reused across
/// groups.
struct Slot {
    enc: Encoder,
    soa: SoAPoints,
    data: Vec<u8>,
    stats: CodecStats,
}

impl Slot {
    fn new() -> Self {
        Slot {
            enc: Encoder::new(),
            soa: SoAPoints::new(),
            data: Vec::new(),
            stats: CodecStats {
                input_points: 0,
                voxels: 0,
                bytes: 0,
                bits_per_point: 0.0,
            },
        }
    }
}

/// Batched encoder for groups of independent frames.
///
/// Holds `gop_len` slots (grown on demand), each with its own [`Encoder`]
/// so a parallel sweep never shares codec scratch between threads. Output
/// buffers cycle through a [`Pool`] so varying GOP lengths stay bounded.
pub struct GopEncoder {
    slots: Vec<Slot>,
    out_pool: Pool<u8>,
    used: usize,
    /// Whether the current batch's output buffers came from the pool
    /// (encode batches). Generate-only batches skip the pool entirely so
    /// they leave no trace — not even an obs gauge.
    pooled: bool,
}

impl Default for GopEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl GopEncoder {
    /// Creates an encoder with no warmed slots.
    pub fn new() -> Self {
        GopEncoder {
            slots: Vec::new(),
            out_pool: Pool::new("codec.gop.out_pool"),
            used: 0,
            pooled: false,
        }
    }

    /// Prepares `n` slots for a new batch. Encode batches
    /// (`with_output`) recycle the previous batch's output buffers through
    /// the pool and hand each active slot a (warm) buffer back;
    /// generate-only batches never touch the pool, so a pipeline that only
    /// stages points reports no output-pool gauge.
    fn begin_batch(&mut self, n: usize, with_output: bool) {
        if self.pooled {
            for slot in &mut self.slots[..self.used] {
                self.out_pool.put(std::mem::take(&mut slot.data));
            }
        }
        while self.slots.len() < n {
            self.slots.push(Slot::new());
        }
        if with_output {
            for slot in &mut self.slots[..n] {
                slot.data = self.out_pool.take();
                slot.data.clear();
            }
        }
        self.pooled = with_output;
        self.used = n;
    }

    /// Encodes every cloud of a GOP in one parallel sweep.
    ///
    /// Frame `i`'s bitstream ([`GopEncoder::frame_data`]) and stats
    /// ([`GopEncoder::frame_stats`]) are byte-identical to
    /// `Encoder::encode_into(&clouds[i], cfg, ..)` regardless of the
    /// worker count.
    pub fn encode_gop_into(&mut self, clouds: &[PointCloud], cfg: &CodecConfig) {
        self.begin_batch(clouds.len(), true);
        par::par_for_each_mut(&mut self.slots[..clouds.len()], |i, slot| {
            slot.stats = slot.enc.encode_into(&clouds[i], cfg, &mut slot.data);
        });
    }

    /// Generates and encodes a whole GOP of reduced-density analysis
    /// frames (`video` frames `start..start + len` at `points` density) in
    /// one sweep, staging each frame in its slot's SoA lanes.
    ///
    /// Equivalent to `frame_with_density_into` + `encode_into` per frame;
    /// generation and encode both run inside the parallel region.
    pub fn encode_video_gop_into(
        &mut self,
        video: &VideoSequence,
        start: u64,
        len: usize,
        points: usize,
        cfg: &CodecConfig,
    ) {
        self.begin_batch(len, true);
        par::par_for_each_mut(&mut self.slots[..len], |i, slot| {
            video.frame_with_density_soa_into(start + i as u64, points, &mut slot.soa);
            slot.stats = slot.enc.encode_soa_into(&slot.soa, cfg, &mut slot.data);
        });
    }

    /// Generates a GOP of analysis frames into the slots' SoA lanes
    /// without encoding (for pipelines that only need the points). Frame
    /// `i` is available via [`GopEncoder::frame_points`].
    pub fn generate_gop(&mut self, video: &VideoSequence, start: u64, len: usize, points: usize) {
        self.begin_batch(len, false);
        par::par_for_each_mut(&mut self.slots[..len], |i, slot| {
            video.frame_with_density_soa_into(start + i as u64, points, &mut slot.soa);
        });
    }

    /// Number of frames in the current batch.
    pub fn len(&self) -> usize {
        self.used
    }

    /// `true` when no batch has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Frame `i`'s bitstream from the current batch.
    pub fn frame_data(&self, i: usize) -> &[u8] {
        &self.slots[i].data
    }

    /// Frame `i`'s codec statistics from the current batch.
    pub fn frame_stats(&self, i: usize) -> CodecStats {
        self.slots[i].stats
    }

    /// Frame `i`'s staged points (filled by the video-GOP entry points).
    pub fn frame_points(&self, i: usize) -> &SoAPoints {
        &self.slots[i].soa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticBody;

    fn gop_clouds(n: usize, points: usize) -> Vec<PointCloud> {
        let body = SyntheticBody::default();
        (0..n as u64).map(|f| body.frame(f, points)).collect()
    }

    fn assert_matches_serial(threads: usize) {
        par::set_thread_count(threads);
        let clouds = gop_clouds(8, 2_000);
        let cfg = CodecConfig::default();
        let mut gop = GopEncoder::new();
        gop.encode_gop_into(&clouds, &cfg);
        assert_eq!(gop.len(), clouds.len());
        let mut enc = Encoder::new();
        let mut expect = Vec::new();
        for (i, cloud) in clouds.iter().enumerate() {
            let stats = enc.encode_into(cloud, &cfg, &mut expect);
            assert_eq!(gop.frame_data(i), &expect[..], "frame {i}");
            assert_eq!(gop.frame_stats(i), stats, "frame {i}");
        }
        par::set_thread_count(1);
    }

    #[test]
    fn batched_encode_matches_serial_single_thread() {
        assert_matches_serial(1);
    }

    #[test]
    fn batched_encode_matches_serial_eight_threads() {
        assert_matches_serial(8);
    }

    #[test]
    fn video_gop_matches_per_frame_pipeline() {
        let video = VideoSequence::new(9, 30);
        let cfg = CodecConfig::default();
        let mut gop = GopEncoder::new();
        // Start mid-sequence so the wrap-around indexing is exercised too.
        gop.encode_video_gop_into(&video, 27, 6, 1_500, &cfg);
        let mut enc = Encoder::new();
        let mut cloud = PointCloud::new();
        let mut expect = Vec::new();
        for i in 0..6 {
            video.frame_with_density_into(27 + i as u64, 1_500, &mut cloud);
            let stats = enc.encode_into(&cloud, &cfg, &mut expect);
            assert_eq!(gop.frame_data(i), &expect[..], "frame {i}");
            assert_eq!(gop.frame_stats(i), stats, "frame {i}");
        }
    }

    #[test]
    fn generate_gop_stages_identical_points() {
        let video = VideoSequence::new(4, 30);
        let mut gop = GopEncoder::new();
        gop.generate_gop(&video, 3, 5, 1_000);
        let mut cloud = PointCloud::new();
        for i in 0..5 {
            video.frame_with_density_into(3 + i as u64, 1_000, &mut cloud);
            let soa = gop.frame_points(i);
            assert_eq!(soa.len(), cloud.len());
            for (j, p) in cloud.points.iter().enumerate() {
                assert_eq!(soa.point(j), *p);
            }
        }
    }

    #[test]
    fn repeated_batches_recycle_output_buffers() {
        let video = VideoSequence::new(4, 30);
        let cfg = CodecConfig::default();
        let mut gop = GopEncoder::new();
        gop.encode_video_gop_into(&video, 0, 4, 800, &cfg);
        let first: Vec<Vec<u8>> = (0..4).map(|i| gop.frame_data(i).to_vec()).collect();
        gop.encode_video_gop_into(&video, 0, 4, 800, &cfg);
        for (i, d) in first.iter().enumerate() {
            assert_eq!(gop.frame_data(i), &d[..]);
        }
        // Second batch of the same shape takes every buffer from the pool.
        assert_eq!(gop.out_pool.misses(), 4);
    }
}

//! Layered progressive octree coding: base layer + enhancement layers.
//!
//! The single-stream codec ([`super::octree`]) commits a frame to one
//! quantization depth. This module restructures the same voxelization into
//! **octree-depth layers**: a base layer carrying the occupancy tree down
//! to a shallow depth (plus absolute quantized colors at that depth), and
//! enhancement layers each carrying the deeper refinement bits plus
//! *residual* colors against their parent voxels. A decoder holding the
//! base plus any prefix of enhancement layers reconstructs a valid cloud
//! at that prefix's depth — and because the per-voxel color at every depth
//! is the floor-average of the merged input points, **each prefix decodes
//! byte-identically to a single-stream encode of the same cloud at the
//! prefix's depth** (pinned by tests; the full prefix is the ISSUE's
//! base+all-layers ≡ single-bitstream equality).
//!
//! Layer bitstream layout (all integers little-endian):
//!
//! ```text
//! magic "VLYR" | layer u8 | total u8 | depth u8 | color_bits u8
//! | count u32 | prev_depth u8 | prev_count u32
//! | (layer 0 only) min_xyz 3xf32, extent f32, 0 f32, 0 f32
//! | range-coded payload
//! ```
//!
//! The payload is **level-major** (unlike the single stream's pre-order
//! DFS): for each absolute level `prev_depth..depth`, one 8-bit child mask
//! per voxel of that level in ascending Morton order, then per final voxel
//! a `color_bits` residual per channel, `(q_child - q_anchor) mod
//! 2^color_bits`, where the anchor is the voxel's ancestor at `prev_depth`
//! (the virtual root with color 0 for the base layer). Level-major order
//! lets the decoder expand one level at a time with two ping-pong buffers
//! — no recursion, no per-node state — and makes each layer independently
//! range-coded (contexts reset per layer), so a truncated or lost
//! enhancement never corrupts the layers before it.
//!
//! Like the single-stream pair, [`LayeredEncoder`]/[`LayeredDecoder`] own
//! all working memory as [`ScratchVec`]s: encoding or decoding a stream of
//! frames into a reused [`LayeredFrame`]/[`PointCloud`] performs zero heap
//! allocations in steady state.

use super::octree::{
    build_masks_from, CodecConfig, CodecError, Contexts, Encoder, Input, MAX_DEPTH,
};
use super::range::{RangeDecoder, RangeEncoder};
use super::simd::morton_decode;
use crate::point::{Point, PointCloud};
use crate::quality::Ladder;
use volcast_geom::{Aabb, Vec3};
use volcast_util::obs;
use volcast_util::scratch::ScratchVec;

/// Maximum number of layers (base + enhancements) per frame.
pub const MAX_LAYERS: usize = 4;

const LAYER_MAGIC: [u8; 4] = *b"VLYR";
/// Fixed header: magic + layer + total + depth + color_bits + count(u32)
/// + prev_depth + prev_count(u32).
const LAYER_HEADER_LEN: usize = 4 + 1 + 1 + 1 + 1 + 4 + 1 + 4;
/// The base layer additionally carries the bounds block (same 6 f32 as the
/// single-stream header).
const BASE_HEADER_LEN: usize = LAYER_HEADER_LEN + 24;

/// Layered codec parameters: cumulative quantization depths per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredConfig {
    /// Strictly increasing cumulative octree depths; `depths[0]` is the
    /// base layer's depth, `depths.last()` the full resolution.
    pub depths: Vec<u32>,
    /// Color quantization: bits per channel (1..=8), shared by all layers.
    pub color_bits: u32,
}

impl LayeredConfig {
    /// The canonical configuration: layer depths from the quality
    /// [`Ladder`] (base = Low's depth, one enhancement per higher level)
    /// at the default color precision.
    pub fn from_ladder(ladder: &Ladder) -> LayeredConfig {
        LayeredConfig {
            depths: ladder.depths().to_vec(),
            color_bits: CodecConfig::default().color_bits,
        }
    }

    /// Number of layers (base + enhancements).
    pub fn layers(&self) -> usize {
        self.depths.len()
    }

    /// Panics unless depths are strictly increasing within `1..=16`, the
    /// layer count is within [`MAX_LAYERS`], and color bits within `1..=8`.
    fn validate(&self) {
        assert!(
            !self.depths.is_empty() && self.depths.len() <= MAX_LAYERS,
            "layer count must be in 1..={MAX_LAYERS}"
        );
        assert!(
            self.depths.windows(2).all(|w| w[0] < w[1]),
            "layer depths must be strictly increasing"
        );
        assert!(
            *self.depths.first().unwrap() >= 1 && *self.depths.last().unwrap() <= MAX_DEPTH,
            "layer depths must be in 1..=16"
        );
        assert!(
            self.color_bits >= 1 && self.color_bits <= 8,
            "color_bits must be in 1..=8"
        );
    }
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig::from_ladder(&Ladder::paper())
    }
}

/// One encoded frame as a stack of layer bitstreams. Reused across frames:
/// the per-layer buffers retain their capacity.
#[derive(Debug, Default, Clone)]
pub struct LayeredFrame {
    bufs: Vec<Vec<u8>>,
    len: usize,
}

impl LayeredFrame {
    /// Creates an empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded layers, base first.
    pub fn layers(&self) -> &[Vec<u8>] {
        &self.bufs[..self.len]
    }

    /// Total encoded bytes across all layers.
    pub fn total_bytes(&self) -> usize {
        self.layers().iter().map(|b| b.len()).sum()
    }

    /// Clears to `n` empty layers, retaining buffer capacity.
    fn reset(&mut self, n: usize) {
        while self.bufs.len() < n {
            self.bufs.push(Vec::new());
        }
        for b in &mut self.bufs[..n] {
            b.clear();
        }
        self.len = n;
    }
}

/// Per-frame layered compression statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredStats {
    /// Points in the input cloud.
    pub input_points: usize,
    /// Unique voxels at the full (deepest) layer.
    pub voxels: usize,
    /// Number of layers emitted.
    pub layers: usize,
    /// Total compressed bytes across all layers.
    pub total_bytes: usize,
}

/// A reusable layered encoder owning all codec working memory.
pub struct LayeredEncoder {
    /// Voxelizer: quantization, dedup, and color merge at full depth.
    enc: Encoder,
    /// Concatenated per-layer code lists (deepest layer first in memory;
    /// `seg` below maps layer index → range).
    bcodes: ScratchVec<u64>,
    /// Parallel aggregated color sums (u64: coarse voxels merge many
    /// points) and merged point counts.
    bsums: ScratchVec<([u64; 3], u64)>,
    masks: ScratchVec<u8>,
    ctx: Contexts,
    rc: RangeEncoder,
}

impl Default for LayeredEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl LayeredEncoder {
    /// Creates an encoder with cold scratch buffers.
    pub fn new() -> Self {
        LayeredEncoder {
            enc: Encoder::new(),
            bcodes: ScratchVec::new("codec.scratch.layer_codes"),
            bsums: ScratchVec::new("codec.scratch.layer_csums"),
            masks: ScratchVec::new("codec.scratch.layer_masks"),
            ctx: Contexts::new(0),
            rc: RangeEncoder::new(),
        }
    }

    /// Encodes `cloud` into `out` as `cfg.layers()` layer bitstreams.
    ///
    /// # Panics
    /// If `cfg` is invalid (see [`LayeredConfig`] bounds).
    pub fn encode_into(
        &mut self,
        cloud: &PointCloud,
        cfg: &LayeredConfig,
        out: &mut LayeredFrame,
    ) -> LayeredStats {
        cfg.validate();
        let layers = cfg.depths.len();
        let full_depth = *cfg.depths.last().unwrap();
        let full_cfg = CodecConfig {
            depth: full_depth,
            color_bits: cfg.color_bits,
        };
        let bounds = if cloud.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            cloud.bounds()
        };
        let extent = bounds.extent().max_component().max(1e-6);

        // Full-depth voxelization, shared with the single-stream path —
        // identical voxel set and color sums by construction.
        self.enc
            .voxelize(Input::Aos(&cloud.points), bounds, &full_cfg);
        let (codes, csums) = self.enc.voxelized();

        // Aggregate to each layer's depth, deepest first: layer j's voxels
        // are the distinct prefixes of layer j+1's codes, with color sums
        // added across merged children. The floor-average at any depth is
        // therefore the average over all merged *input points*, matching a
        // direct single-stream encode at that depth.
        let bcodes = self.bcodes.begin();
        let bsums = self.bsums.begin();
        let mut seg = [(0usize, 0usize); MAX_LAYERS];
        bcodes.extend_from_slice(codes);
        bsums.extend(
            csums
                .iter()
                .map(|&(s, c)| ([s[0] as u64, s[1] as u64, s[2] as u64], c as u64)),
        );
        seg[layers - 1] = (0, codes.len());
        for j in (0..layers.saturating_sub(1)).rev() {
            let (pstart, plen) = seg[j + 1];
            let shift = 3 * (cfg.depths[j + 1] - cfg.depths[j]);
            let start = bcodes.len();
            let mut i = pstart;
            while i < pstart + plen {
                let prefix = bcodes[i] >> shift;
                let mut sums = [0u64; 3];
                let mut count = 0u64;
                while i < pstart + plen && bcodes[i] >> shift == prefix {
                    let (s, c) = bsums[i];
                    sums[0] += s[0];
                    sums[1] += s[1];
                    sums[2] += s[2];
                    count += c;
                    i += 1;
                }
                bcodes.push(prefix);
                bsums.push((sums, count));
            }
            seg[j] = (start, bcodes.len() - start);
        }

        // Emit each layer: header, level-major occupancy masks for the
        // layer's depth span, then per-voxel color residuals against the
        // layer's anchor (its ancestor at the previous layer's depth).
        out.reset(layers);
        let shift = 8 - cfg.color_bits;
        let cmask = (1u32 << cfg.color_bits) - 1;
        let LayeredEncoder {
            bcodes,
            bsums,
            masks,
            ctx,
            rc,
            ..
        } = self;
        let bcodes = bcodes.get();
        let bsums = bsums.get();
        let qval = |slot: usize, ch: usize| -> u32 {
            let (sums, count) = bsums[slot];
            ((sums[ch] / count) as u32) >> shift
        };
        for k in 0..layers {
            let (cstart, clen) = seg[k];
            let depth = cfg.depths[k];
            let (prev_depth, prev_start, prev_len) = if k == 0 {
                (0u32, 0usize, 0usize)
            } else {
                let (s, l) = seg[k - 1];
                (cfg.depths[k - 1], s, l)
            };
            let buf = &mut out.bufs[k];
            buf.extend_from_slice(&LAYER_MAGIC);
            buf.push(k as u8);
            buf.push(layers as u8);
            buf.push(depth as u8);
            buf.push(cfg.color_bits as u8);
            buf.extend_from_slice(&(clen as u32).to_le_bytes());
            buf.push(prev_depth as u8);
            buf.extend_from_slice(&(prev_len as u32).to_le_bytes());
            if k == 0 {
                for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
                    buf.extend_from_slice(&(v as f32).to_le_bytes());
                }
                for v in [extent, 0.0, 0.0] {
                    buf.extend_from_slice(&(v as f32).to_le_bytes());
                }
            }

            ctx.reset(depth);
            if clen > 0 {
                let layer_codes = &bcodes[cstart..cstart + clen];
                let masks = masks.begin();
                let mut level_off = [0usize; MAX_DEPTH as usize + 1];
                build_masks_from(layer_codes, depth, prev_depth, masks, &mut level_off);
                for level in prev_depth..depth {
                    let lvl = level as usize;
                    for &m in &masks[level_off[lvl]..level_off[lvl + 1]] {
                        for child in 0..8usize {
                            rc.encode_bit(&mut ctx.occupancy[lvl][child], m & (1 << child) != 0);
                        }
                    }
                }
                // Residual colors: anchors walk the previous layer's codes
                // in lockstep (both lists sorted; every prefix exists).
                let pshift = 3 * (depth - prev_depth);
                let mut p = 0usize;
                for (i, &code) in layer_codes.iter().enumerate() {
                    let anchor_q: [u32; 3] = if k == 0 {
                        [0, 0, 0]
                    } else {
                        let prefix = code >> pshift;
                        while bcodes[prev_start + p] < prefix {
                            p += 1;
                        }
                        debug_assert_eq!(bcodes[prev_start + p], prefix);
                        [
                            qval(prev_start + p, 0),
                            qval(prev_start + p, 1),
                            qval(prev_start + p, 2),
                        ]
                    };
                    for (ch, &anchor) in anchor_q.iter().enumerate() {
                        let residual = (qval(cstart + i, ch).wrapping_sub(anchor)) & cmask;
                        rc.encode_bits(&mut ctx.color[ch], residual, cfg.color_bits);
                    }
                }
            }
            rc.finish_into(buf);
        }

        let stats = LayeredStats {
            input_points: cloud.len(),
            voxels: seg[layers - 1].1,
            layers,
            total_bytes: out.total_bytes(),
        };
        if obs::enabled() {
            obs::inc("codec.layered.frames_encoded");
            obs::add("codec.layered.bytes", stats.total_bytes as u64);
            obs::add("codec.layered.voxels", stats.voxels as u64);
        }
        stats
    }
}

/// Decoder progress: the committed reconstruction state after the last
/// accepted layer.
#[derive(Debug, Clone, Copy)]
struct LayerState {
    depth: u32,
    color_bits: u32,
    total: u8,
    next_layer: u8,
    count: usize,
    min: Vec3,
    extent: f64,
}

/// A reusable layered decoder: push layers in order, reconstruct after any
/// prefix.
pub struct LayeredDecoder {
    /// Committed voxel codes at `state.depth`.
    codes: ScratchVec<u64>,
    /// Committed quantized colors (top `color_bits` bits per channel).
    qcols: ScratchVec<[u8; 3]>,
    // Level-expansion ping-pong buffers + anchor index tracking.
    exp_a: ScratchVec<u64>,
    exp_b: ScratchVec<u64>,
    anc_a: ScratchVec<u32>,
    anc_b: ScratchVec<u32>,
    new_q: ScratchVec<[u8; 3]>,
    ctx: Contexts,
    state: Option<LayerState>,
}

impl Default for LayeredDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl LayeredDecoder {
    /// Creates a decoder with cold scratch buffers.
    pub fn new() -> Self {
        LayeredDecoder {
            codes: ScratchVec::new("codec.scratch.dec_layer_codes"),
            qcols: ScratchVec::new("codec.scratch.dec_layer_qcols"),
            exp_a: ScratchVec::new("codec.scratch.dec_layer_exp_a"),
            exp_b: ScratchVec::new("codec.scratch.dec_layer_exp_b"),
            anc_a: ScratchVec::new("codec.scratch.dec_layer_anc_a"),
            anc_b: ScratchVec::new("codec.scratch.dec_layer_anc_b"),
            new_q: ScratchVec::new("codec.scratch.dec_layer_new_q"),
            ctx: Contexts::new(0),
            state: None,
        }
    }

    /// Discards any partial frame: the next layer pushed must be a base
    /// layer. (Pushing a base layer also restarts implicitly.)
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Number of layers applied to the current frame (0 = none).
    pub fn layers_applied(&self) -> usize {
        self.state.map(|s| s.next_layer as usize).unwrap_or(0)
    }

    /// Applies the next layer bitstream. Layers must arrive in order
    /// starting from the base; any validation or payload error poisons the
    /// in-progress frame (the decoder then requires a fresh base layer).
    pub fn push_layer(&mut self, data: &[u8]) -> Result<(), CodecError> {
        match self.try_push_layer(data) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.state = None;
                Err(e)
            }
        }
    }

    fn try_push_layer(&mut self, data: &[u8]) -> Result<(), CodecError> {
        if data.len() < LAYER_HEADER_LEN {
            return Err(CodecError::TruncatedHeader);
        }
        if data[0..4] != LAYER_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let layer = data[4];
        let total = data[5];
        let depth = data[6] as u32;
        let color_bits = data[7] as u32;
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        let prev_depth = data[12] as u32;
        let prev_count = u32::from_le_bytes(data[13..17].try_into().unwrap()) as usize;
        if depth == 0 || depth > MAX_DEPTH {
            return Err(CodecError::InvalidHeader("depth out of range"));
        }
        if color_bits == 0 || color_bits > 8 {
            return Err(CodecError::InvalidHeader("color_bits out of range"));
        }
        if total == 0 || total as usize > MAX_LAYERS || layer >= total {
            return Err(CodecError::InvalidHeader("layer index out of range"));
        }
        if depth < 11 && count as u64 > 1u64 << (3 * depth) {
            return Err(CodecError::InvalidHeader("count exceeds tree capacity"));
        }

        let header_len;
        let min;
        let extent;
        if layer == 0 {
            if data.len() < BASE_HEADER_LEN {
                return Err(CodecError::TruncatedHeader);
            }
            if prev_depth != 0 || prev_count != 0 {
                return Err(CodecError::InvalidHeader("base layer with a parent"));
            }
            let f32_at = |off: usize| -> f64 {
                f32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as f64
            };
            min = Vec3::new(f32_at(17), f32_at(21), f32_at(25));
            extent = f32_at(29);
            if !(extent.is_finite() && extent > 0.0) && count > 0 {
                return Err(CodecError::InvalidHeader("bad extent"));
            }
            header_len = BASE_HEADER_LEN;
            // A base layer restarts the frame unconditionally.
            self.state = None;
        } else {
            let st = self
                .state
                .ok_or(CodecError::InvalidHeader("enhancement without a base"))?;
            if layer != st.next_layer || total != st.total {
                return Err(CodecError::InvalidHeader("layer out of sequence"));
            }
            if depth <= st.depth || prev_depth != st.depth {
                return Err(CodecError::InvalidHeader("layer depth not increasing"));
            }
            if color_bits != st.color_bits {
                return Err(CodecError::InvalidHeader("color_bits changed mid-frame"));
            }
            if prev_count != st.count {
                return Err(CodecError::InvalidHeader("parent count mismatch"));
            }
            if count < prev_count || (prev_count == 0 && count != 0) {
                return Err(CodecError::InvalidHeader("count not monotone"));
            }
            min = st.min;
            extent = st.extent;
            header_len = LAYER_HEADER_LEN;
        }

        // Payload: expand the occupancy one level at a time, tracking each
        // new voxel's anchor (index of its ancestor at prev_depth), then
        // rebuild colors from the anchors plus the coded residuals.
        let LayeredDecoder {
            codes,
            qcols,
            exp_a,
            exp_b,
            anc_a,
            anc_b,
            new_q,
            ctx,
            ..
        } = self;
        ctx.reset(depth);
        let mut dec = RangeDecoder::new(&data[header_len..]);
        let exp_a = exp_a.begin();
        let exp_b = exp_b.begin();
        let anc_a = anc_a.begin();
        let anc_b = anc_b.begin();
        let new_q_buf = new_q.begin();
        if count > 0 {
            // Seed the expansion with the previous layer's codes (or the
            // virtual root for a base layer) and identity anchors; then
            // expand level by level, ping-ponging via buffer swaps.
            exp_a.clear();
            anc_a.clear();
            if layer == 0 {
                exp_a.push(0);
            } else {
                exp_a.extend_from_slice(codes.get());
            }
            anc_a.extend(0..exp_a.len() as u32);
            for level in prev_depth..depth {
                exp_b.clear();
                anc_b.clear();
                for (i, &code) in exp_a.iter().enumerate() {
                    let anchor = anc_a[i];
                    for child in 0..8u64 {
                        if dec.decode_bit(&mut ctx.occupancy[level as usize][child as usize]) {
                            if exp_b.len() >= count {
                                return Err(CodecError::CorruptPayload(
                                    "layer expands beyond the declared count",
                                ));
                            }
                            exp_b.push((code << 3) | child);
                            anc_b.push(anchor);
                        }
                    }
                }
                std::mem::swap(exp_a, exp_b);
                std::mem::swap(anc_a, anc_b);
            }
            let (final_codes, final_anchor) = (&*exp_a, &*anc_a);
            if final_codes.len() != count {
                return Err(CodecError::CorruptPayload(
                    "layer decodes fewer voxels than declared",
                ));
            }
            if dec.is_exhausted() {
                return Err(CodecError::CorruptPayload(
                    "range decoder ran past the end of the occupancy stream",
                ));
            }
            let cmask = (1u32 << color_bits) - 1;
            let prev_q = qcols.get();
            new_q_buf.reserve(count);
            for &anchor in final_anchor.iter() {
                let base: [u8; 3] = if layer == 0 {
                    [0, 0, 0]
                } else {
                    prev_q[anchor as usize]
                };
                let mut q = [0u8; 3];
                for ch in 0..3 {
                    let r = dec.decode_bits(&mut ctx.color[ch], color_bits);
                    q[ch] = ((base[ch] as u32 + r) & cmask) as u8;
                }
                new_q_buf.push(q);
            }
            if dec.is_exhausted() {
                return Err(CodecError::CorruptPayload(
                    "range decoder ran past the end of the color stream",
                ));
            }
            // Commit.
            let codes_buf = codes.begin();
            codes_buf.extend_from_slice(final_codes);
            let qcols_buf = qcols.begin();
            qcols_buf.extend_from_slice(new_q_buf);
        } else {
            codes.begin();
            qcols.begin();
        }
        self.state = Some(LayerState {
            depth,
            color_bits,
            total,
            next_layer: layer + 1,
            count,
            min,
            extent,
        });
        obs::inc("codec.layered.layers_decoded");
        Ok(())
    }

    /// Materializes the current reconstruction (after 1+ layers) into
    /// `out` (cleared first), returning the point count. Positions and
    /// colors follow the exact single-stream decode arithmetic, so a full
    /// prefix reproduces [`super::decode`] byte for byte.
    pub fn reconstruct_into(&self, out: &mut PointCloud) -> Result<usize, CodecError> {
        let st = self
            .state
            .ok_or(CodecError::InvalidHeader("no layers applied"))?;
        out.points.clear();
        if st.count == 0 {
            return Ok(0);
        }
        let levels = 1u32 << st.depth;
        let voxel = st.extent / levels as f64;
        let shift = 8 - st.color_bits;
        let dequant = |v: u32| -> u8 {
            let v = (v << shift) + ((1u32 << shift) >> 1);
            v.min(255) as u8
        };
        out.points.reserve(st.count);
        for (&code, q) in self.codes.get().iter().zip(self.qcols.get()) {
            let (x, y, z) = morton_decode(code, st.depth);
            let pos = st.min
                + Vec3::new(
                    (x as f64 + 0.5) * voxel,
                    (y as f64 + 0.5) * voxel,
                    (z as f64 + 0.5) * voxel,
                );
            out.points.push(Point::new(
                [pos.x as f32, pos.y as f32, pos.z as f32],
                [
                    dequant(q[0] as u32),
                    dequant(q[1] as u32),
                    dequant(q[2] as u32),
                ],
            ));
        }
        Ok(st.count)
    }

    /// Convenience: resets, applies every layer in `layers`, and
    /// reconstructs into `out`.
    pub fn decode_frame_into(
        &mut self,
        layers: &[impl AsRef<[u8]>],
        out: &mut PointCloud,
    ) -> Result<usize, CodecError> {
        self.reset();
        for l in layers {
            self.push_layer(l.as_ref())?;
        }
        self.reconstruct_into(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode, Decoder};
    use crate::synthetic::SyntheticBody;

    fn ladder_cfg() -> LayeredConfig {
        LayeredConfig::default()
    }

    /// The ISSUE's pinned equality: base + all enhancement layers decode
    /// byte-identically to the single-stream bitstream's decode — and, a
    /// stronger structural property, *every* prefix decodes identically to
    /// a single-stream encode at the prefix's depth.
    #[test]
    fn every_prefix_matches_single_stream_decode_at_that_depth() {
        let body = SyntheticBody::default();
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut dec = LayeredDecoder::new();
        let mut frame = LayeredFrame::new();
        for (seed, n) in [(0u64, 4_000usize), (7, 20_000), (13, 1_000)] {
            let cloud = body.frame(seed, n);
            let stats = enc.encode_into(&cloud, &cfg, &mut frame);
            assert_eq!(stats.layers, 3);
            dec.reset();
            for (k, layer) in frame.layers().iter().enumerate() {
                dec.push_layer(layer).unwrap();
                let mut got = PointCloud::new();
                dec.reconstruct_into(&mut got).unwrap();
                let single = encode(
                    &cloud,
                    &CodecConfig {
                        depth: cfg.depths[k],
                        color_bits: cfg.color_bits,
                    },
                )
                .0;
                let expect = decode(&single).unwrap();
                assert_eq!(
                    got.points,
                    expect.points,
                    "seed {seed} n {n} prefix {} layers",
                    k + 1
                );
            }
        }
    }

    #[test]
    fn prefix_decode_is_a_valid_coarse_cloud() {
        let cloud = SyntheticBody::default().frame(3, 8_000);
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut frame = LayeredFrame::new();
        enc.encode_into(&cloud, &cfg, &mut frame);
        let mut dec = LayeredDecoder::new();
        let mut prev_count = 0usize;
        for layer in frame.layers() {
            dec.push_layer(layer).unwrap();
            let mut out = PointCloud::new();
            let n = dec.reconstruct_into(&mut out).unwrap();
            assert!(n > 0 && n >= prev_count, "voxel count must be monotone");
            prev_count = n;
            // Every reconstructed point stays inside the cloud's bounds
            // (inflated by one voxel for center offsets).
            let b = cloud.bounds();
            let slack = b.extent().max_component() / 256.0 + 1e-6;
            for p in &out.points {
                let pos = p.position();
                assert!(pos.x >= b.min.x - slack && pos.x <= b.max.x + slack);
            }
        }
    }

    #[test]
    fn base_layer_is_smaller_and_total_overhead_is_bounded() {
        let cloud = SyntheticBody::default().frame(5, 30_000);
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut frame = LayeredFrame::new();
        let stats = enc.encode_into(&cloud, &cfg, &mut frame);
        let (single, sstats) = encode(&cloud, &CodecConfig::default());
        assert!(
            frame.layers()[0].len() < single.data.len(),
            "base layer must undercut the full stream"
        );
        // Layering costs context resets + extra headers; it must stay a
        // modest constant factor over the single stream.
        assert!(
            (stats.total_bytes as f64) < 1.5 * single.data.len() as f64 + 256.0,
            "layered {} vs single {}",
            stats.total_bytes,
            single.data.len()
        );
        assert_eq!(stats.voxels, sstats.voxels);
    }

    #[test]
    fn reused_instances_match_fresh_instances() {
        let body = SyntheticBody::default();
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut dec = LayeredDecoder::new();
        let mut frame = LayeredFrame::new();
        let mut out = PointCloud::new();
        for f in 0..20u64 {
            let cloud = body.frame(f, 2_000);
            enc.encode_into(&cloud, &cfg, &mut frame);
            let mut fresh_frame = LayeredFrame::new();
            LayeredEncoder::new().encode_into(&cloud, &cfg, &mut fresh_frame);
            assert_eq!(frame.layers(), fresh_frame.layers(), "frame {f}");
            dec.decode_frame_into(frame.layers(), &mut out).unwrap();
            let mut fresh_out = PointCloud::new();
            LayeredDecoder::new()
                .decode_frame_into(frame.layers(), &mut fresh_out)
                .unwrap();
            assert_eq!(out.points, fresh_out.points, "frame {f}");
        }
    }

    #[test]
    fn empty_cloud_layered_round_trip() {
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut frame = LayeredFrame::new();
        let stats = enc.encode_into(&PointCloud::new(), &cfg, &mut frame);
        assert_eq!(stats.voxels, 0);
        let mut dec = LayeredDecoder::new();
        let mut out = PointCloud::new();
        let n = dec.decode_frame_into(frame.layers(), &mut out).unwrap();
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_order_and_mismatched_layers_are_rejected() {
        let cloud = SyntheticBody::default().frame(1, 2_000);
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut frame = LayeredFrame::new();
        enc.encode_into(&cloud, &cfg, &mut frame);
        let mut dec = LayeredDecoder::new();
        // Enhancement before base.
        assert!(matches!(
            dec.push_layer(&frame.layers()[1]),
            Err(CodecError::InvalidHeader(_))
        ));
        // Skipping a layer.
        dec.push_layer(&frame.layers()[0]).unwrap();
        assert!(matches!(
            dec.push_layer(&frame.layers()[2]),
            Err(CodecError::InvalidHeader(_))
        ));
        // After the error the frame is poisoned: even the valid next layer
        // is refused until a base restarts it.
        assert!(dec.push_layer(&frame.layers()[1]).is_err());
        dec.push_layer(&frame.layers()[0]).unwrap();
        dec.push_layer(&frame.layers()[1]).unwrap();
        let mut out = PointCloud::new();
        assert!(dec.reconstruct_into(&mut out).is_ok());
        // A layer from a *different* frame fails the chain checks whenever
        // its voxel counts disagree (checksums are the wire layer's job).
        let other = SyntheticBody::default().frame(9, 3_000);
        let mut other_frame = LayeredFrame::new();
        enc.encode_into(&other, &cfg, &mut other_frame);
        dec.reset();
        dec.push_layer(&frame.layers()[0]).unwrap();
        assert!(dec.push_layer(&other_frame.layers()[1]).is_err());
    }

    #[test]
    fn truncation_and_bit_flips_never_panic() {
        let cloud = SyntheticBody::default().frame(2, 3_000);
        let cfg = ladder_cfg();
        let mut enc = LayeredEncoder::new();
        let mut frame = LayeredFrame::new();
        enc.encode_into(&cloud, &cfg, &mut frame);
        let mut dec = LayeredDecoder::new();
        // Truncations at a spread of cut points in every layer: always an
        // error (base) or an error/poison (enhancements), never a panic.
        for (k, layer) in frame.layers().iter().enumerate() {
            for i in 0..16 {
                let cut = layer.len() * i / 16;
                dec.reset();
                for prev in &frame.layers()[..k] {
                    dec.push_layer(prev).unwrap();
                }
                assert!(
                    dec.push_layer(&layer[..cut]).is_err(),
                    "layer {k} cut {cut}"
                );
            }
        }
        // Random bit flips: a flip that stays self-consistent may decode
        // Ok (integrity belongs to the wire checksums); never a panic and
        // never more voxels than declared.
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0x001a_7e12);
        for trial in 0..200 {
            let k = (trial % frame.layers().len() as u64) as usize;
            let mut mutated = frame.layers()[k].clone();
            let byte = rng.gen_range(0..mutated.len() as u64) as usize;
            mutated[byte] ^= 1 << rng.gen_range(0..8u32);
            dec.reset();
            for prev in &frame.layers()[..k] {
                dec.push_layer(prev).unwrap();
            }
            if dec.push_layer(&mutated).is_ok() {
                let mut out = PointCloud::new();
                if let Ok(n) = dec.reconstruct_into(&mut out) {
                    assert!(n <= 1usize << (3 * cfg.depths[k].min(10)));
                }
            }
        }
    }

    #[test]
    fn two_layer_and_wide_span_configs_round_trip() {
        // Non-ladder shapes: a 2-layer config and a span wider than one
        // level per enhancement.
        let cloud = SyntheticBody::default().frame(4, 5_000);
        for cfg in [
            LayeredConfig {
                depths: vec![5, 9],
                color_bits: 8,
            },
            LayeredConfig {
                depths: vec![3, 6, 8, 10],
                color_bits: 4,
            },
        ] {
            let mut enc = LayeredEncoder::new();
            let mut frame = LayeredFrame::new();
            enc.encode_into(&cloud, &cfg, &mut frame);
            let mut dec = LayeredDecoder::new();
            let mut got = PointCloud::new();
            dec.decode_frame_into(frame.layers(), &mut got).unwrap();
            let single = encode(
                &cloud,
                &CodecConfig {
                    depth: *cfg.depths.last().unwrap(),
                    color_bits: cfg.color_bits,
                },
            )
            .0;
            let mut expect = PointCloud::new();
            Decoder::new().decode_into(&single, &mut expect).unwrap();
            assert_eq!(got.points, expect.points, "{:?}", cfg.depths);
        }
    }
}

//! Per-cell encoding: each spatial cell as an independent bitstream.
//!
//! ViVo-style streaming requires every cell to be *independently
//! prefetchable and decodable* — a client fetches exactly the cells its
//! visibility map lists and decodes them with no cross-cell state. This
//! module provides that: [`encode_cells`] splits a frame by the cell grid
//! and encodes each cell with its own codec instance; any subset of the
//! results can be decoded (in any order) and merged.
//!
//! Independence costs rate: each cell pays its own header and its entropy
//! models start cold. The `cell_overhead` test quantifies this against
//! whole-frame encoding — the realistic price of random access.

use crate::cells::{CellGrid, CellId};
use crate::codec::octree::{
    encode, CodecConfig, CodecError, CodecStats, Decoder, EncodedCloud, Encoder,
};
use crate::point::PointCloud;
use volcast_util::scratch::Pool;

/// One independently decodable cell bitstream.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedCell {
    /// Which cell this is.
    pub id: CellId,
    /// The cell's standalone bitstream.
    pub data: EncodedCloud,
    /// Codec statistics for this cell.
    pub stats: CodecStats,
}

/// Encodes a frame as independent per-cell bitstreams (sorted by cell id).
///
/// Cells are encoded in parallel (they share no codec state by design);
/// the output order is the partition's cell-id order regardless of the
/// thread count.
pub fn encode_cells(cloud: &PointCloud, grid: &CellGrid, cfg: &CodecConfig) -> Vec<EncodedCell> {
    volcast_util::par::par_map(&grid.partition(cloud), |info| {
        let sub = grid.extract(cloud, info);
        let (data, stats) = encode(&sub, cfg);
        // Recorded inside the worker: per-thread sinks merge at the
        // par_map join, so totals match the serial run exactly.
        volcast_util::obs::inc("codec.cells_encoded");
        volcast_util::obs::record("codec.cell_bytes", stats.bytes as u64);
        EncodedCell {
            id: info.id,
            data,
            stats,
        }
    })
}

/// Reusable serial variant of [`encode_cells`] for frame pipelines.
///
/// The caller owns all working memory: the codec `Encoder`, a sub-cloud
/// scratch, a [`Pool`] the cell bitstreams are drawn from, and the output
/// vector. Bitstreams are byte-identical to [`encode_cells`] and arrive in
/// the same cell-id order. Retire each cell's buffer back to the pool once
/// transmitted (`pool.put(cell.data.data)`) and the per-cell byte buffers
/// stop allocating after the first frame. (The partition itself still
/// allocates its index lists.)
pub fn encode_cells_into(
    cloud: &PointCloud,
    grid: &CellGrid,
    cfg: &CodecConfig,
    enc: &mut Encoder,
    sub: &mut PointCloud,
    pool: &mut Pool<u8>,
    out: &mut Vec<EncodedCell>,
) {
    out.clear();
    for info in &grid.partition(cloud) {
        grid.extract_into(cloud, info, sub);
        let mut data = pool.take();
        let stats = enc.encode_into(sub, cfg, &mut data);
        volcast_util::obs::inc("codec.cells_encoded");
        volcast_util::obs::record("codec.cell_bytes", stats.bytes as u64);
        out.push(EncodedCell {
            id: info.id,
            data: EncodedCloud { data },
            stats,
        });
    }
}

/// Decodes any subset of cells and merges them into one cloud.
///
/// Cells are fully independent: this works for any subset, in any order,
/// without the other cells' bytes.
pub fn decode_cells(cells: &[&EncodedCell]) -> Result<PointCloud, CodecError> {
    let mut out = PointCloud::new();
    decode_cells_into(cells, &mut Decoder::new(), &mut out)?;
    Ok(out)
}

/// Reusable variant of [`decode_cells`]: decodes the subset into `out`
/// (cleared first) through a caller-owned [`Decoder`], with no per-cell
/// intermediate clouds.
pub fn decode_cells_into(
    cells: &[&EncodedCell],
    dec: &mut Decoder,
    out: &mut PointCloud,
) -> Result<(), CodecError> {
    out.points.clear();
    for cell in cells {
        dec.decode_append(&cell.data, out)?;
    }
    Ok(())
}

/// Total compressed bytes of a set of cells.
pub fn total_bytes(cells: &[EncodedCell]) -> usize {
    cells.iter().map(|c| c.data.size_bytes()).sum()
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(EncodedCell { id, data, stats });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::octree::decode;
    use crate::synthetic::SyntheticBody;
    use volcast_geom::Vec3;

    fn setup() -> (PointCloud, CellGrid, Vec<EncodedCell>) {
        let cloud = SyntheticBody::default().frame(0, 12_000);
        let grid = CellGrid::new(0.5);
        let cells = encode_cells(
            &cloud,
            &grid,
            &CodecConfig {
                depth: 8,
                color_bits: 6,
            },
        );
        (cloud, grid, cells)
    }

    #[test]
    fn cells_cover_all_points() {
        let (cloud, _, cells) = setup();
        let total: usize = cells.iter().map(|c| c.stats.input_points).sum();
        assert_eq!(total, cloud.len());
        assert!(cells.len() > 5, "body should span many 50cm cells");
        // Sorted by id.
        for w in cells.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn any_subset_decodes_independently() {
        let (_, grid, cells) = setup();
        // Decode only every third cell, in reverse order.
        let subset: Vec<&EncodedCell> = cells.iter().step_by(3).rev().collect();
        let merged = decode_cells(&subset).unwrap();
        let expect: usize = subset.iter().map(|c| c.stats.voxels).sum();
        assert_eq!(merged.len(), expect);
        // Every decoded point lies in one of the subset's cell bounds
        // (within quantization slack of the cell boundary).
        for p in merged.points.iter().step_by(17) {
            let pos = p.position();
            let near_some_cell = subset
                .iter()
                .any(|c| grid.cell_bounds(c.id).distance_to_point(pos) < 0.02);
            assert!(near_some_cell, "decoded point {pos} outside subset cells");
        }
    }

    #[test]
    fn full_set_round_trips_geometry() {
        let (cloud, _, cells) = setup();
        let refs: Vec<&EncodedCell> = cells.iter().collect();
        let merged = decode_cells(&refs).unwrap();
        // Per-cell voxelization: decoded count equals the sum of voxels.
        let expect: usize = cells.iter().map(|c| c.stats.voxels).sum();
        assert_eq!(merged.len(), expect);
        // Bounds agree with the source (within quantization slack).
        let a = cloud.bounds();
        let b = merged.bounds();
        assert!((a.min - b.min).norm() < 0.05, "{} vs {}", a.min, b.min);
        assert!((a.max - b.max).norm() < 0.05);
    }

    #[test]
    fn independence_overhead_is_bounded() {
        let (cloud, _, cells) = setup();
        let cfg = CodecConfig {
            depth: 8,
            color_bits: 6,
        };
        let (whole, _) = crate::codec::octree::encode(&cloud, &cfg);
        let split = total_bytes(&cells);
        let overhead = split as f64 / whole.size_bytes() as f64;
        // Random access costs something, but must stay sane.
        assert!(
            overhead > 1.0,
            "split {split} vs whole {}",
            whole.size_bytes()
        );
        assert!(overhead < 2.5, "per-cell overhead {overhead:.2}x too high");
    }

    #[test]
    fn reusable_cell_pipeline_matches_parallel_path() {
        let (cloud, grid, cells) = setup();
        let cfg = CodecConfig {
            depth: 8,
            color_bits: 6,
        };
        let mut enc = Encoder::new();
        let mut sub = PointCloud::new();
        let mut pool: Pool<u8> = Pool::new("test.codec.cell_pool");
        let mut reused = Vec::new();
        // Two frames through the same scratch; the second must still match
        // and must draw every bitstream buffer from the pool.
        for round in 0..2 {
            encode_cells_into(
                &cloud,
                &grid,
                &cfg,
                &mut enc,
                &mut sub,
                &mut pool,
                &mut reused,
            );
            assert_eq!(reused, cells, "round {round}");
            let misses_before = pool.misses();
            for cell in reused.drain(..) {
                pool.put(cell.data.data);
            }
            assert_eq!(pool.misses(), misses_before);
        }
        // Second frame reused the retired buffers: misses == cells, not 2x.
        assert_eq!(pool.misses(), cells.len());

        // The reusable decode path agrees with decode_cells.
        let refs: Vec<&EncodedCell> = cells.iter().collect();
        let mut dec = Decoder::new();
        let mut merged = PointCloud::new();
        decode_cells_into(&refs, &mut dec, &mut merged).unwrap();
        assert_eq!(merged.points, decode_cells(&refs).unwrap().points);
    }

    #[test]
    fn empty_cloud_yields_no_cells() {
        let grid = CellGrid::new(0.5);
        let cells = encode_cells(&PointCloud::new(), &grid, &CodecConfig::default());
        assert!(cells.is_empty());
        assert_eq!(total_bytes(&cells), 0);
        assert!(decode_cells(&[]).unwrap().is_empty());
    }

    #[test]
    fn cell_ids_match_geometry() {
        let (_, grid, cells) = setup();
        for c in &cells {
            let sub = decode(&c.data).unwrap();
            if let Some(centroid) = sub.centroid() {
                // The decoded centroid lies inside (or hugs) its cell.
                assert!(
                    grid.cell_bounds(c.id).distance_to_point(centroid) < 0.05,
                    "centroid {centroid} far from cell {:?}",
                    c.id
                );
            }
        }
        let _ = Vec3::ZERO; // keep the geom import exercised
    }
}

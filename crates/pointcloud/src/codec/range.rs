//! Adaptive binary range coder (LZMA-style).
//!
//! This is the entropy-coding engine under the octree codec: a carry-aware
//! range encoder over binary symbols with 11-bit adaptive probabilities.
//! Each [`BitModel`] tracks the probability of a `0` bit and adapts with an
//! exponential moving average (shift 5), the classic LZMA configuration.
//!
//! The bit path is branchless: the symbol selects range/low updates and the
//! model delta through a mask instead of a compare-and-branch, which the
//! ~30%-biased occupancy bits of the octree would otherwise mispredict
//! constantly. The renormalization loop must stay a `while`: with `p0` near
//! its bounds the post-bit range can be as small as `2^13` (e.g. range
//! `2^24`, `p0 = 2047` leaves `range - bound = 8192`), which needs two
//! 8-bit shifts to clear `TOP`.
//!
//! [`RangeEncoder`] is reusable: [`RangeEncoder::finish_into`] flushes into
//! a caller buffer and resets, so a persistent encoder performs zero heap
//! allocations per stream once its internal buffer has warmed up.

/// Number of probability bits (probabilities live in `0..2^11`).
const PROB_BITS: u32 = 11;
/// Total probability mass.
const PROB_ONE: u16 = 1 << PROB_BITS;
/// Adaptation rate (larger = slower adaptation).
const ADAPT_SHIFT: u32 = 5;
/// Renormalization threshold.
const TOP: u32 = 1 << 24;

/// An adaptive probability model for a single binary context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitModel {
    /// Probability that the next bit is 0, scaled by `2^11`.
    p0: u16,
}

impl Default for BitModel {
    fn default() -> Self {
        BitModel { p0: PROB_ONE / 2 }
    }
}

impl BitModel {
    /// A fresh model with no bias.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current probability of zero, in `(0, 1)`.
    pub fn prob_zero(&self) -> f64 {
        self.p0 as f64 / PROB_ONE as f64
    }

    /// Branchless exponential-moving-average update: equivalent to
    /// `if bit { p0 -= p0 >> 5 } else { p0 += (PROB_ONE - p0) >> 5 }`.
    /// `mask` is all-ones when the bit is set (shared with the coder's
    /// range/low select so it is computed once per bit).
    #[inline(always)]
    fn update_masked(&mut self, mask: u16) {
        let delta =
            ((self.p0 >> ADAPT_SHIFT) & mask) | (((PROB_ONE - self.p0) >> ADAPT_SHIFT) & !mask);
        self.p0 = (self.p0.wrapping_sub(delta) & mask) | (self.p0.wrapping_add(delta) & !mask);
    }

    // Branch-form entry point kept for the tests that pin the branchless
    // update against the reference formula; the coders call
    // `update_masked` directly with their already-computed mask.
    #[cfg(test)]
    #[inline(always)]
    fn update(&mut self, bit: bool) {
        self.update_masked((bit as u16).wrapping_neg());
    }
}

/// Range encoder producing a compressed byte stream.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    pending: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            pending: 0,
            out: Vec::new(),
        }
    }

    /// Rewinds to the fresh-encoder state, retaining the internal buffer's
    /// capacity so the next stream encodes allocation-free.
    pub fn reset(&mut self) {
        self.low = 0;
        self.range = u32::MAX;
        self.cache = 0;
        self.pending = 0;
        self.out.clear();
    }

    /// Encodes one bit under the given adaptive model.
    #[inline(always)]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * model.p0 as u32;
        // Branchless select: mask is all-ones when the bit is set.
        let mask = (bit as u32).wrapping_neg();
        self.low += (bound & mask) as u64;
        self.range = ((self.range - bound) & mask) | (bound & !mask);
        model.update_masked(mask as u16);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `n` raw bits (MSB first) of `value` under per-position models.
    pub fn encode_bits(&mut self, models: &mut [BitModel], value: u32, n: u32) {
        // Slicing up front lets the per-bit loop run without bounds checks.
        let models = &mut models[..n as usize];
        for (i, m) in models.iter_mut().enumerate() {
            let bit = (value >> (n - 1 - i as u32)) & 1 == 1;
            self.encode_bit(m, bit);
        }
    }

    #[inline(always)]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            while self.pending > 0 {
                self.out.push(0xFFu8.wrapping_add(carry));
                self.pending -= 1;
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        } else {
            self.pending += 1;
        }
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    #[inline]
    fn flush(&mut self) {
        for _ in 0..5 {
            self.shift_low();
        }
    }

    /// Flushes the encoder and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush();
        self.out
    }

    /// Flushes the stream, appends it to `dst`, and resets for the next
    /// stream. The reusable-encoder counterpart to [`RangeEncoder::finish`]:
    /// byte-for-byte identical output, no allocation beyond `dst` growth.
    pub fn finish_into(&mut self, dst: &mut Vec<u8>) {
        self.flush();
        dst.extend_from_slice(&self.out);
        self.reset();
    }
}

/// Range decoder consuming a stream produced by [`RangeEncoder`].
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            code: 0,
            range: u32::MAX,
            input,
            pos: 0,
        };
        // Prime with 5 bytes (first is the encoder's synthetic zero byte).
        for _ in 0..5 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline(always)]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit under the given adaptive model.
    #[inline(always)]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> bool {
        let bound = (self.range >> PROB_BITS) * model.p0 as u32;
        let bit = self.code >= bound;
        let mask = (bit as u32).wrapping_neg();
        self.code -= bound & mask;
        self.range = ((self.range - bound) & mask) | (bound & !mask);
        model.update_masked(mask as u16);
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }

    /// Decodes `n` bits (MSB first) under per-position models.
    pub fn decode_bits(&mut self, models: &mut [BitModel], n: u32) -> u32 {
        let models = &mut models[..n as usize];
        let mut v = 0u32;
        for m in models.iter_mut() {
            v = (v << 1) | self.decode_bit(m) as u32;
        }
        v
    }

    /// Bytes consumed so far (including the 5 priming bytes).
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }

    /// True once the decoder has read past the end of its input (reads
    /// past the end zero-fill rather than panic). A well-formed stream is
    /// never over-read — [`RangeEncoder::finish`] emits exactly the bytes
    /// the matching decode consumes — so exhaustion means the payload was
    /// truncated or corrupted and the decoded symbols are garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos > self.input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcast_util::rng::Rng;

    fn round_trip(bits: &[bool], contexts: usize, ctx_of: impl Fn(usize) -> usize) -> usize {
        let mut enc_models = vec![BitModel::new(); contexts];
        let mut enc = RangeEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            enc.encode_bit(&mut enc_models[ctx_of(i)], b);
        }
        let data = enc.finish();
        let mut dec_models = vec![BitModel::new(); contexts];
        let mut dec = RangeDecoder::new(&data);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut dec_models[ctx_of(i)]), b, "bit {i}");
        }
        data.len()
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        let data = enc.finish();
        let _ = RangeDecoder::new(&data); // must not panic
    }

    #[test]
    fn single_bits() {
        round_trip(&[true], 1, |_| 0);
        round_trip(&[false], 1, |_| 0);
    }

    #[test]
    fn random_bits_round_trip() {
        let mut rng = Rng::seed_from_u64(42);
        let bits: Vec<bool> = (0..50_000).map(|_| rng.gen()).collect();
        let size = round_trip(&bits, 4, |i| i % 4);
        // Incompressible: size close to 50_000/8 bytes.
        assert!(size > 5_500 && size < 7_000, "size {size}");
    }

    #[test]
    fn skewed_bits_compress() {
        let mut rng = Rng::seed_from_u64(7);
        let bits: Vec<bool> = (0..50_000).map(|_| rng.gen::<f64>() < 0.05).collect();
        let size = round_trip(&bits, 1, |_| 0);
        // Entropy ~0.29 bits/bit -> ~1800 bytes; allow adaptation slack.
        assert!(size < 2_600, "size {size}");
    }

    #[test]
    fn all_zero_bits_compress_hard() {
        let bits = vec![false; 100_000];
        let size = round_trip(&bits, 1, |_| 0);
        assert!(size < 600, "size {size}");
    }

    #[test]
    fn alternating_pattern_with_two_contexts() {
        // With per-parity contexts, an alternating pattern is near-free.
        let bits: Vec<bool> = (0..20_000).map(|i| i % 2 == 0).collect();
        let size = round_trip(&bits, 2, |i| i % 2);
        assert!(size < 400, "size {size}");
    }

    #[test]
    fn multibit_round_trip() {
        let mut rng = Rng::seed_from_u64(99);
        let values: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..256)).collect();
        let mut models = vec![BitModel::new(); 8];
        let mut enc = RangeEncoder::new();
        for &v in &values {
            enc.encode_bits(&mut models, v, 8);
        }
        let data = enc.finish();
        let mut models = vec![BitModel::new(); 8];
        let mut dec = RangeDecoder::new(&data);
        for &v in &values {
            assert_eq!(dec.decode_bits(&mut models, 8), v);
        }
    }

    #[test]
    fn model_adapts_toward_observed_bias() {
        let mut m = BitModel::new();
        assert!((m.prob_zero() - 0.5).abs() < 1e-9);
        for _ in 0..200 {
            m.update(false);
        }
        assert!(m.prob_zero() > 0.95);
        for _ in 0..400 {
            m.update(true);
        }
        assert!(m.prob_zero() < 0.05);
    }

    #[test]
    fn branchless_update_matches_reference() {
        // Pin the mask-select update against the straightforward branchy
        // formula across every reachable probability state.
        for start in 1u16..PROB_ONE {
            for bit in [false, true] {
                let mut m = BitModel { p0: start };
                m.update(bit);
                let expected = if bit {
                    start - (start >> ADAPT_SHIFT)
                } else {
                    start + ((PROB_ONE - start) >> ADAPT_SHIFT)
                };
                assert_eq!(m.p0, expected, "p0={start} bit={bit}");
            }
        }
    }

    #[test]
    fn reused_encoder_is_byte_identical_to_fresh() {
        let mut rng = Rng::seed_from_u64(1234);
        let streams: Vec<Vec<bool>> = (0..5)
            .map(|_| (0..8_000).map(|_| rng.gen::<f64>() < 0.3).collect())
            .collect();
        let mut reused = RangeEncoder::new();
        for bits in &streams {
            let mut fresh = RangeEncoder::new();
            let mut fresh_models = [BitModel::new(); 8];
            let mut reused_models = [BitModel::new(); 8];
            let mut reused_out = Vec::new();
            for (i, &b) in bits.iter().enumerate() {
                fresh.encode_bit(&mut fresh_models[i % 8], b);
                reused.encode_bit(&mut reused_models[i % 8], b);
            }
            reused.finish_into(&mut reused_out);
            assert_eq!(fresh.finish(), reused_out);
        }
    }

    #[test]
    fn decoder_tolerates_truncated_input() {
        // Decoding garbage must not panic (it will produce wrong bits, but
        // the caller validates counts); this exercises the zero-fill path.
        let mut m = BitModel::new();
        let mut dec = RangeDecoder::new(&[1, 2, 3]);
        assert!(dec.is_exhausted(), "priming already over-read 3 bytes");
        for _ in 0..64 {
            let _ = dec.decode_bit(&mut m);
        }
    }

    #[test]
    fn full_decode_never_exhausts_valid_input() {
        let mut rng = Rng::seed_from_u64(21);
        let bits: Vec<bool> = (0..10_000).map(|_| rng.gen::<f64>() < 0.3).collect();
        let mut models = [BitModel::new(); 4];
        let mut enc = RangeEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            enc.encode_bit(&mut models[i % 4], b);
        }
        let data = enc.finish();
        let mut models = [BitModel::new(); 4];
        let mut dec = RangeDecoder::new(&data);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut models[i % 4]), b);
            assert!(!dec.is_exhausted(), "over-read at bit {i}");
        }
        // Any truncation of the same stream is detected by the time the
        // full symbol count has been pulled out: the decode is byte-exact
        // with the true decode up to the cut, so the byte the true decode
        // would read there becomes the first zero-fill read.
        for cut in 0..data.len() {
            let mut models = [BitModel::new(); 4];
            let mut dec = RangeDecoder::new(&data[..cut]);
            for i in 0..bits.len() {
                let _ = dec.decode_bit(&mut models[i % 4]);
            }
            assert!(dec.is_exhausted(), "cut at {cut} went undetected");
        }
    }
}

//! Octree point-cloud codec (Draco substitute).
//!
//! Encoding pipeline:
//!
//! 1. Quantize point positions to `depth` bits per axis inside the cloud's
//!    bounding box (voxelization). Duplicate voxels are merged, averaging
//!    colors — the same lossy behaviour as voxelized Draco geometry.
//! 2. Sort voxels in Morton (Z-curve) order and walk the implied octree
//!    depth-first, entropy-coding each node's 8-bit occupancy mask with an
//!    adaptive binary range coder, contexts keyed by (tree level, child
//!    index).
//! 3. Quantize colors to `color_bits` per channel and code them in leaf
//!    order with per-bit-position contexts per channel.
//!
//! Decoding reverses the walk exactly (the context state machine is
//! deterministic), reconstructing voxel centers and colors.
//!
//! Rate behaviour: 300K-550K-point human-surface clouds land at roughly
//! 6-12 bits/point geometry + colors, i.e. frame sizes comparable to the
//! 235-364 Mbps @ 30 FPS ladder reported in the paper.
//!
//! Frame pipelines should hold a stateful [`Encoder`]/[`Decoder`]: all
//! codec working memory (voxel staging, radix/bitmap scratch, contexts,
//! range coder) persists across frames, making steady-state encode/decode
//! allocation-free with byte-identical bitstreams. The free
//! [`encode`]/[`decode`] functions delegate to thread-local instances.
//!
//! The encode hot path (quantization + Morton interleave) runs through the
//! explicit SIMD kernels in [`simd`], selected at runtime per CPU with a
//! byte-identical scalar fallback (`VOLCAST_NO_SIMD=1` forces it). Whole
//! groups of frames batch through [`GopEncoder`], which sweeps one private
//! encoder arena per frame across the `volcast_util::par` workers — same
//! bitstreams as the serial loop at any thread count.
//!
//! For progressive delivery, [`LayeredEncoder`]/[`LayeredDecoder`] split
//! the same voxelization into a shallow base layer plus enhancement layers
//! of deeper refinement bits and residual colors; any prefix of layers
//! decodes to the single-stream result at that prefix's depth (see
//! [`layered`](self::LayeredEncoder)).
//!
//! ```
//! use volcast_pointcloud::codec::{encode, decode, CodecConfig};
//! use volcast_pointcloud::SyntheticBody;
//!
//! let cloud = SyntheticBody::default().frame(0, 5_000);
//! let (bitstream, stats) = encode(&cloud, &CodecConfig::default());
//! assert!(stats.bits_per_point < 40.0);
//! let decoded = decode(&bitstream).unwrap();
//! assert_eq!(decoded.len(), stats.voxels);
//! ```

mod cells;
mod gop;
mod layered;
mod octree;
mod range;
pub mod simd;

pub use cells::{
    decode_cells, decode_cells_into, encode_cells, encode_cells_into, total_bytes, EncodedCell,
};
pub use gop::GopEncoder;
pub use layered::{
    LayeredConfig, LayeredDecoder, LayeredEncoder, LayeredFrame, LayeredStats, MAX_LAYERS,
};
pub use octree::{
    decode, encode, CodecConfig, CodecError, CodecStats, Decoder, EncodedCloud, Encoder,
};
pub use range::{BitModel, RangeDecoder, RangeEncoder};

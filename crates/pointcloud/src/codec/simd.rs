//! Vectorized quantization + Morton encoding with runtime backend dispatch.
//!
//! This is the only module in the workspace allowed to contain `unsafe`
//! (besides the counting test allocator): the SIMD kernels here use
//! `core::arch` intrinsics behind a [`Backend`] selected once per process.
//! Every backend produces **byte-identical** output to [`Backend::Scalar`],
//! which is the portable reference; `VOLCAST_NO_SIMD=1` forces the scalar
//! path so CI exercises both.
//!
//! The hot kernel fuses three steps over a frame of points:
//!
//! 1. **Quantize** each coordinate: `q = trunc((x as f64 - min) * scale)`
//!    clamped to `0..=max_q`. The scalar reference clamps after an `as i64`
//!    saturating cast; the SIMD paths instead clamp *in the f64 domain*
//!    (`max(t, 0.0)` then `min(t, max_q as f64)`) before truncating. The two
//!    agree for **all** inputs: NaN maps to 0 under both (the x86 `maxpd`
//!    NaN rule returns the second operand, i.e. `0.0`; NEON `FCVTZU`
//!    converts NaN to 0; Rust's float→int cast saturates NaN to 0), ±∞ and
//!    out-of-range values clamp to the same endpoints (`max_q < 2^16` is
//!    exactly representable in f64), and in-range values truncate toward
//!    zero identically.
//! 2. **Morton-encode** the three quantized axes with the magic-mask
//!    bit-spread ([`part1by2`]), vectorized across 64-bit lanes.
//! 3. **Pack** `(code << 24) | rgb` into one `u64` per point (valid while
//!    `3 * depth + 24 <= 64`, i.e. `depth <=` [`PACKED_MAX_DEPTH`]), so the
//!    downstream radix sort moves 8-byte elements instead of 16-byte
//!    (code, color) pairs. Sorting these packed words by their code field
//!    with a *stable* sort, then merging runs with commutative color sums,
//!    yields exactly the same voxel stream as sorting (code, color) pairs.
#![allow(unsafe_code)]

use std::sync::OnceLock;

use crate::point::{Point, SoAPoints};

/// Deepest octree for which `(code << 24) | color` fits a `u64`
/// (`3 * 13 + 24 = 63` bits). Deeper trees use the unpacked pair path.
pub const PACKED_MAX_DEPTH: u32 = 13;

/// Bit offset of the Morton code inside a packed voxel word; the low 24
/// bits hold the packed RGB color (`r | g<<8 | b<<16`).
pub const COLOR_SHIFT: u32 = 24;

/// Per-frame quantization parameters derived from the cloud bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Minimum corner of the bounding box (f64, as stored in the header).
    pub min: [f64; 3],
    /// `2^depth / extent`: world units to voxel units.
    pub scale: f64,
    /// Largest valid voxel coordinate, `2^depth - 1`.
    pub max_q: u32,
    /// Octree depth (bits per axis).
    pub depth: u32,
}

/// A SIMD backend. All variants produce byte-identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference path (always available).
    Scalar,
    /// AVX2: 4 points per iteration on 256-bit lanes.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    Avx2,
    /// NEON: 4 points per iteration on paired 128-bit lanes.
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// The backend selected for this process: the widest supported SIMD path,
/// unless `VOLCAST_NO_SIMD=1` forces [`Backend::Scalar`]. Detected once and
/// cached.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

fn detect() -> Backend {
    if std::env::var("VOLCAST_NO_SIMD").as_deref() == Ok("1") {
        return Backend::Scalar;
    }
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// Packs one color triple the way the bitstream expects (`r | g<<8 | b<<16`).
#[inline(always)]
pub fn pack_color(color: [u8; 3]) -> u32 {
    color[0] as u32 | (color[1] as u32) << 8 | (color[2] as u32) << 16
}

/// Spreads the low 21 bits of `v` so each lands at bit `3i` (the classic
/// magic-mask "part1by2" used by fast Morton coders).
#[inline(always)]
pub fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x1F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x1F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: gathers every third bit back into the low bits.
#[inline(always)]
pub fn compact1by2(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x1F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x1F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x as u32
}

/// 3D Morton encode: interleaves the low `depth` bits of x, y, z
/// (x at bit `3i+2`, y at `3i+1`, z at `3i`).
#[inline(always)]
pub fn morton_encode(x: u32, y: u32, z: u32, depth: u32) -> u64 {
    debug_assert!(depth <= 16 && (x | y | z) >> depth == 0);
    (part1by2(x as u64) << 2) | (part1by2(y as u64) << 1) | part1by2(z as u64)
}

/// Inverse of [`morton_encode`].
#[inline(always)]
pub fn morton_decode(code: u64, _depth: u32) -> (u32, u32, u32) {
    (
        compact1by2(code >> 2),
        compact1by2(code >> 1),
        compact1by2(code),
    )
}

/// The scalar reference for one point: quantize + Morton + pack. Truncation
/// (`as i64`) plus the full clamp is exactly `floor().clamp(..)`: for
/// `t >= 0` they agree, and any `t < 0` clamps to 0 under both (NaN/inf
/// saturate identically).
#[inline(always)]
fn pack_one(x: f32, y: f32, z: f32, color: u32, q: &QuantParams) -> u64 {
    let m = q.max_q as i64;
    let qx = (((x as f64 - q.min[0]) * q.scale) as i64).clamp(0, m) as u32;
    let qy = (((y as f64 - q.min[1]) * q.scale) as i64).clamp(0, m) as u32;
    let qz = (((z as f64 - q.min[2]) * q.scale) as i64).clamp(0, m) as u32;
    (morton_encode(qx, qy, qz, q.depth) << COLOR_SHIFT) | color as u64
}

fn scalar_lanes(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    colors: &[u32],
    q: &QuantParams,
    out: &mut [u64],
) {
    for i in 0..xs.len() {
        out[i] = pack_one(xs[i], ys[i], zs[i], colors[i], q);
    }
}

fn scalar_points(points: &[Point], q: &QuantParams, out: &mut [u64]) {
    for (o, p) in out.iter_mut().zip(points.iter()) {
        *o = pack_one(p.pos[0], p.pos[1], p.pos[2], pack_color(p.color), q);
    }
}

/// AoS inputs are transposed into stack blocks of this many points before
/// hitting a lane kernel, amortizing the dispatch call without reading the
/// `Point` struct's padding byte.
const BLOCK: usize = 128;

fn lanes_dispatch(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    colors: &[u32],
    q: &QuantParams,
    out: &mut [u64],
) {
    debug_assert!(xs.len() == out.len() && ys.len() == out.len() && zs.len() == out.len());
    debug_assert!(colors.len() == out.len());
    match backend {
        Backend::Scalar => scalar_lanes(xs, ys, zs, colors, q, out),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `Backend::Avx2` is only ever constructed by `detect()`
        // after `is_x86_feature_detected!("avx2")` succeeded, or by tests on
        // hosts where `active()` already reported it; the CPU supports AVX2.
        Backend::Avx2 => unsafe { avx2::lanes(xs, ys, zs, colors, q, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline feature of every aarch64 target this
        // workspace builds for.
        Backend::Neon => unsafe { neon::lanes(xs, ys, zs, colors, q, out) },
    }
}

/// Quantizes, Morton-encodes and packs every point of a SoA cloud into
/// `out` (cleared and resized first): one `u64` of `(code << 24) | rgb` per
/// point, in input order. Requires `q.depth <= PACKED_MAX_DEPTH`.
pub fn quantize_morton_soa(backend: Backend, soa: &SoAPoints, q: &QuantParams, out: &mut Vec<u64>) {
    debug_assert!(q.depth <= PACKED_MAX_DEPTH);
    out.clear();
    out.resize(soa.len(), 0);
    lanes_dispatch(
        backend,
        soa.xs(),
        soa.ys(),
        soa.zs(),
        soa.colors_packed(),
        q,
        out,
    );
}

/// [`quantize_morton_soa`] for an AoS point slice: chunks of `BLOCK`
/// points are transposed into stack lanes (safe field reads — the `Point`
/// padding byte is never touched) and run through the same kernels.
pub fn quantize_morton_points(
    backend: Backend,
    points: &[Point],
    q: &QuantParams,
    out: &mut Vec<u64>,
) {
    debug_assert!(q.depth <= PACKED_MAX_DEPTH);
    out.clear();
    out.resize(points.len(), 0);
    if backend == Backend::Scalar {
        scalar_points(points, q, out);
        return;
    }
    let mut bx = [0f32; BLOCK];
    let mut by = [0f32; BLOCK];
    let mut bz = [0f32; BLOCK];
    let mut bc = [0u32; BLOCK];
    for (blk_idx, blk) in points.chunks(BLOCK).enumerate() {
        for (j, p) in blk.iter().enumerate() {
            bx[j] = p.pos[0];
            by[j] = p.pos[1];
            bz[j] = p.pos[2];
            bc[j] = pack_color(p.color);
        }
        let n = blk.len();
        lanes_dispatch(
            backend,
            &bx[..n],
            &by[..n],
            &bz[..n],
            &bc[..n],
            q,
            &mut out[blk_idx * BLOCK..blk_idx * BLOCK + n],
        );
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    use super::{pack_one, QuantParams};
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// One magic-mask spread step on 4 u64 lanes.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn spread_step<const SHIFT: i32>(x: __m256i, mask: i64) -> __m256i {
        _mm256_and_si256(
            _mm256_or_si256(x, _mm256_slli_epi64::<SHIFT>(x)),
            _mm256_set1_epi64x(mask),
        )
    }

    /// [`super::part1by2`] on 4 u64 lanes.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn part1by2_x4(v: __m256i) -> __m256i {
        let x = _mm256_and_si256(v, _mm256_set1_epi64x(0x1F_FFFF));
        let x = spread_step::<32>(x, 0x1F_0000_0000_FFFF);
        let x = spread_step::<16>(x, 0x1F_0000_FF00_00FF);
        let x = spread_step::<8>(x, 0x100F_00F0_0F00_F00F);
        let x = spread_step::<4>(x, 0x10C3_0C30_C30C_30C3);
        spread_step::<2>(x, 0x1249_2492_4924_9249)
    }

    /// Quantizes 4 f32 coordinates to u64 voxel indices: widen to f64,
    /// `(x - min) * scale`, clamp to `[0, max_q]` in the f64 domain, then
    /// truncate. See the module docs for the proof this matches the scalar
    /// `as i64`-then-clamp reference on every input including NaN/±inf
    /// (`maxpd`/`minpd` return the second operand on NaN, so NaN → 0.0).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn quant4(v: __m128, min: __m256d, scale: __m256d, hi: __m256d) -> __m256i {
        let t = _mm256_mul_pd(_mm256_sub_pd(_mm256_cvtps_pd(v), min), scale);
        let t = _mm256_min_pd(_mm256_max_pd(t, _mm256_setzero_pd()), hi);
        _mm256_cvtepu32_epi64(_mm256_cvttpd_epi32(t))
    }

    /// The packed quantize+Morton kernel: 4 points per iteration, scalar
    /// tail. Byte-identical to [`super::scalar_lanes`].
    #[target_feature(enable = "avx2")]
    pub(super) fn lanes(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        colors: &[u32],
        q: &QuantParams,
        out: &mut [u64],
    ) {
        let n = xs.len();
        let minx = _mm256_set1_pd(q.min[0]);
        let miny = _mm256_set1_pd(q.min[1]);
        let minz = _mm256_set1_pd(q.min[2]);
        let scale = _mm256_set1_pd(q.scale);
        let hi = _mm256_set1_pd(q.max_q as f64);
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` and all slices have length `n` (checked
            // by the dispatcher), so each 4-lane unaligned load is in
            // bounds.
            let (vx, vy, vz, vc) = unsafe {
                (
                    _mm_loadu_ps(xs.as_ptr().add(i)),
                    _mm_loadu_ps(ys.as_ptr().add(i)),
                    _mm_loadu_ps(zs.as_ptr().add(i)),
                    _mm_loadu_si128(colors.as_ptr().add(i) as *const __m128i),
                )
            };
            let px = part1by2_x4(quant4(vx, minx, scale, hi));
            let py = part1by2_x4(quant4(vy, miny, scale, hi));
            let pz = part1by2_x4(quant4(vz, minz, scale, hi));
            let code = _mm256_or_si256(
                _mm256_or_si256(_mm256_slli_epi64::<2>(px), _mm256_slli_epi64::<1>(py)),
                pz,
            );
            let packed = _mm256_or_si256(
                _mm256_slli_epi64::<{ super::COLOR_SHIFT as i32 }>(code),
                _mm256_cvtepu32_epi64(vc),
            );
            // SAFETY: `i + 4 <= n == out.len()`, so the 4-lane unaligned
            // store is in bounds.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, packed) };
            i += 4;
        }
        for j in i..n {
            out[j] = pack_one(xs[j], ys[j], zs[j], colors[j], q);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{pack_one, QuantParams};
    use core::arch::aarch64::*;

    /// One magic-mask spread step on 2 u64 lanes.
    #[target_feature(enable = "neon")]
    #[inline]
    fn spread_step<const SHIFT: i32>(x: uint64x2_t, mask: u64) -> uint64x2_t {
        vandq_u64(vorrq_u64(x, vshlq_n_u64::<SHIFT>(x)), vdupq_n_u64(mask))
    }

    /// [`super::part1by2`] on 2 u64 lanes.
    #[target_feature(enable = "neon")]
    #[inline]
    fn part1by2_x2(v: uint64x2_t) -> uint64x2_t {
        let x = vandq_u64(v, vdupq_n_u64(0x1F_FFFF));
        let x = spread_step::<32>(x, 0x1F_0000_0000_FFFF);
        let x = spread_step::<16>(x, 0x1F_0000_FF00_00FF);
        let x = spread_step::<8>(x, 0x100F_00F0_0F00_F00F);
        let x = spread_step::<4>(x, 0x10C3_0C30_C30C_30C3);
        spread_step::<2>(x, 0x1249_2492_4924_9249)
    }

    /// Quantizes 2 f64 coordinates to u64 voxel indices with the f64-domain
    /// clamp (module docs): NaN survives FMAX/FMIN and `FCVTZU` then maps
    /// it to 0, matching the scalar saturating cast.
    #[target_feature(enable = "neon")]
    #[inline]
    fn quant2(d: float64x2_t, min: float64x2_t, scale: float64x2_t, hi: float64x2_t) -> uint64x2_t {
        let t = vmulq_f64(vsubq_f64(d, min), scale);
        let t = vminq_f64(vmaxq_f64(t, vdupq_n_f64(0.0)), hi);
        vcvtq_u64_f64(t)
    }

    /// Morton code for 2 already-quantized lanes.
    #[target_feature(enable = "neon")]
    #[inline]
    fn code2(x: uint64x2_t, y: uint64x2_t, z: uint64x2_t) -> uint64x2_t {
        vorrq_u64(
            vorrq_u64(
                vshlq_n_u64::<2>(part1by2_x2(x)),
                vshlq_n_u64::<1>(part1by2_x2(y)),
            ),
            part1by2_x2(z),
        )
    }

    /// The packed quantize+Morton kernel: 4 points per iteration as two
    /// 2-lane halves, scalar tail. Byte-identical to
    /// [`super::scalar_lanes`].
    #[target_feature(enable = "neon")]
    pub(super) fn lanes(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        colors: &[u32],
        q: &QuantParams,
        out: &mut [u64],
    ) {
        let n = xs.len();
        let minx = vdupq_n_f64(q.min[0]);
        let miny = vdupq_n_f64(q.min[1]);
        let minz = vdupq_n_f64(q.min[2]);
        let scale = vdupq_n_f64(q.scale);
        let hi = vdupq_n_f64(q.max_q as f64);
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` and all slices have length `n` (checked
            // by the dispatcher), so each 4-lane load is in bounds.
            let (vx, vy, vz, vc) = unsafe {
                (
                    vld1q_f32(xs.as_ptr().add(i)),
                    vld1q_f32(ys.as_ptr().add(i)),
                    vld1q_f32(zs.as_ptr().add(i)),
                    vld1q_u32(colors.as_ptr().add(i)),
                )
            };
            let code_lo = code2(
                quant2(vcvt_f64_f32(vget_low_f32(vx)), minx, scale, hi),
                quant2(vcvt_f64_f32(vget_low_f32(vy)), miny, scale, hi),
                quant2(vcvt_f64_f32(vget_low_f32(vz)), minz, scale, hi),
            );
            let code_hi = code2(
                quant2(vcvt_high_f64_f32(vx), minx, scale, hi),
                quant2(vcvt_high_f64_f32(vy), miny, scale, hi),
                quant2(vcvt_high_f64_f32(vz), minz, scale, hi),
            );
            let packed_lo = vorrq_u64(
                vshlq_n_u64::<{ super::COLOR_SHIFT as i32 }>(code_lo),
                vmovl_u32(vget_low_u32(vc)),
            );
            let packed_hi = vorrq_u64(
                vshlq_n_u64::<{ super::COLOR_SHIFT as i32 }>(code_hi),
                vmovl_u32(vget_high_u32(vc)),
            );
            // SAFETY: `i + 4 <= n == out.len()`, so both 2-lane stores are
            // in bounds.
            unsafe {
                vst1q_u64(out.as_mut_ptr().add(i), packed_lo);
                vst1q_u64(out.as_mut_ptr().add(i + 2), packed_hi);
            }
            i += 4;
        }
        for j in i..n {
            out[j] = pack_one(xs[j], ys[j], zs[j], colors[j], q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcast_util::rng::Rng;

    fn params(depth: u32) -> QuantParams {
        QuantParams {
            min: [-1.25, 0.0, 3.5],
            scale: (1u64 << depth) as f64 / 2.75,
            max_q: (1u32 << depth) - 1,
            depth,
        }
    }

    fn random_soa(rng: &mut Rng, n: usize) -> SoAPoints {
        let mut soa = SoAPoints::new();
        for _ in 0..n {
            let r = |rng: &mut Rng| (rng.gen_range(0..10_000) as f32) / 1_000.0 - 2.0;
            soa.push(
                [r(rng), r(rng), r(rng)],
                [
                    rng.gen_range(0..256) as u8,
                    rng.gen_range(0..256) as u8,
                    rng.gen_range(0..256) as u8,
                ],
            );
        }
        soa
    }

    #[test]
    fn active_backend_matches_scalar_on_random_lanes() {
        let mut rng = Rng::seed_from_u64(0x51AD);
        for depth in [1u32, 7, 10, PACKED_MAX_DEPTH] {
            let q = params(depth);
            // Lengths straddle the 4-lane width to exercise the tail.
            for n in [0usize, 1, 3, 4, 5, 257] {
                let soa = random_soa(&mut rng, n);
                let mut scalar = Vec::new();
                let mut vector = Vec::new();
                quantize_morton_soa(Backend::Scalar, &soa, &q, &mut scalar);
                quantize_morton_soa(active(), &soa, &q, &mut vector);
                assert_eq!(scalar, vector, "depth={depth} n={n}");
            }
        }
    }

    #[test]
    fn aos_and_soa_inputs_pack_identically() {
        let mut rng = Rng::seed_from_u64(0xA05);
        let q = params(9);
        let soa = random_soa(&mut rng, 517); // > BLOCK, non-multiple tail
        let mut cloud = crate::point::PointCloud::new();
        soa.to_cloud_into(&mut cloud);
        for backend in [Backend::Scalar, active()] {
            let mut from_soa = Vec::new();
            let mut from_aos = Vec::new();
            quantize_morton_soa(backend, &soa, &q, &mut from_soa);
            quantize_morton_points(backend, &cloud.points, &q, &mut from_aos);
            assert_eq!(from_soa, from_aos, "{backend:?}");
        }
    }

    #[test]
    fn non_finite_coordinates_clamp_identically() {
        let q = params(8);
        let mut soa = SoAPoints::new();
        for x in [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1e30,
            -1e30,
            f32::MIN_POSITIVE,
        ] {
            soa.push([x, x, x], [1, 2, 3]);
        }
        // Pad past one full vector so the special values go down the SIMD
        // lanes, not just the scalar tail.
        for _ in 0..8 {
            soa.push([0.5, 0.5, 0.5], [9, 9, 9]);
        }
        let mut scalar = Vec::new();
        let mut vector = Vec::new();
        quantize_morton_soa(Backend::Scalar, &soa, &q, &mut scalar);
        quantize_morton_soa(active(), &soa, &q, &mut vector);
        assert_eq!(scalar, vector);
    }

    #[test]
    fn packed_word_round_trips_code_and_color() {
        let q = QuantParams {
            min: [0.0; 3],
            scale: 1.0,
            max_q: (1 << PACKED_MAX_DEPTH) - 1,
            depth: PACKED_MAX_DEPTH,
        };
        let m = q.max_q as f32;
        let mut soa = SoAPoints::new();
        soa.push([m, m, m], [255, 255, 255]);
        let mut out = Vec::new();
        quantize_morton_soa(Backend::Scalar, &soa, &q, &mut out);
        let code = out[0] >> COLOR_SHIFT;
        assert_eq!(morton_decode(code, q.depth), (q.max_q, q.max_q, q.max_q));
        assert_eq!(out[0] & ((1 << COLOR_SHIFT) - 1), 0xFF_FFFF);
        // The deepest packed word still fits: top bit index 3*13+24-1 = 62.
        assert!(out[0].leading_zeros() >= 1);
    }

    #[test]
    fn forced_scalar_env_is_respected_when_set() {
        // `active()` caches process-wide, so only assert the env contract
        // when the harness actually set it (verify.sh runs the suite under
        // VOLCAST_NO_SIMD=1).
        if std::env::var("VOLCAST_NO_SIMD").as_deref() == Ok("1") {
            assert_eq!(active(), Backend::Scalar);
        }
    }
}

//! Octree geometry + color coding. See module docs in [`super`].
//!
//! The hot path is the stateful [`Encoder`]/[`Decoder`] pair: they own all
//! working memory (voxel staging, radix-sort scratch, Morton code lists,
//! context models, the range coder) as [`ScratchVec`]s, so encoding or
//! decoding a stream of frames performs **zero heap allocations in steady
//! state** — every buffer warms to its high-watermark and is reused. The
//! free [`encode`]/[`decode`] functions delegate to a thread-local instance
//! and stay the convenient entry points; bitstreams are byte-for-byte
//! identical either way.
// Fixed-size index loops (angle dims, octree children, AP slots) read
// clearer than iterator chains in this module.
#![allow(clippy::needless_range_loop)]

use std::cell::RefCell;

use super::range::{BitModel, RangeDecoder, RangeEncoder};
use crate::point::{Point, PointCloud};
use volcast_geom::{Aabb, Vec3};
use volcast_util::obs;
use volcast_util::scratch::ScratchVec;

/// Codec parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecConfig {
    /// Geometry quantization: bits per axis (octree depth). The paper-scale
    /// human body at depth 10 gives ~2 mm voxels.
    pub depth: u32,
    /// Color quantization: bits per channel (1..=8).
    pub color_bits: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            depth: 10,
            color_bits: 6,
        }
    }
}

/// Why a bitstream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The header is shorter than the fixed header size.
    TruncatedHeader,
    /// Bad magic bytes.
    BadMagic,
    /// Header fields are inconsistent (e.g. zero depth, absurd counts).
    InvalidHeader(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::TruncatedHeader => write!(f, "truncated header"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::InvalidHeader(why) => write!(f, "invalid header: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded cloud: header + entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedCloud {
    /// Serialized bitstream (header + payload).
    pub data: Vec<u8>,
}

impl EncodedCloud {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Compression statistics for instrumentation and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    /// Points in the input cloud.
    pub input_points: usize,
    /// Unique voxels after quantization (= decoded point count).
    pub voxels: usize,
    /// Compressed size in bytes.
    pub bytes: usize,
    /// Compressed bits per input point.
    pub bits_per_point: f64,
}

const MAGIC: [u8; 4] = *b"VOCT";
const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 24;
const MAX_DEPTH: u32 = 16;

/// Spreads the low 21 bits of `v` so each lands at bit `3i` (the classic
/// magic-mask "part1by2" used by fast Morton coders).
#[inline(always)]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x1F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x1F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: gathers every third bit back into the low bits.
#[inline(always)]
fn compact1by2(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x1F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x1F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x as u32
}

/// 3D Morton encode: interleaves the low `depth` bits of x, y, z
/// (x at bit `3i+2`, y at `3i+1`, z at `3i`).
#[inline(always)]
fn morton_encode(x: u32, y: u32, z: u32, depth: u32) -> u64 {
    debug_assert!(depth <= MAX_DEPTH && (x | y | z) >> depth == 0);
    (part1by2(x as u64) << 2) | (part1by2(y as u64) << 1) | part1by2(z as u64)
}

/// Inverse of [`morton_encode`].
#[inline(always)]
fn morton_decode(code: u64, _depth: u32) -> (u32, u32, u32) {
    (
        compact1by2(code >> 2),
        compact1by2(code >> 1),
        compact1by2(code),
    )
}

/// A quantized point mid-sort: (morton code, packed RGB color). Keeping the
/// element at 16 bytes (colors packed `r | g<<8 | b<<16`) instead of a
/// 24-byte sums-and-count tuple cuts radix-sort memory traffic by a third;
/// per-voxel color sums are expanded only at merge time.
type Voxel = (u64, u32);

/// Widest radix digit; 2^11 counters (8 KiB) still live comfortably in L1.
const RADIX_MAX_DIGIT_BITS: u32 = 11;

/// Stable LSD radix sort of voxels by Morton code, ping-ponging between
/// `voxels` and `tmp`. The digit width adapts to the key: passes are
/// minimized first (`ceil(key_bits / 11)`), then the bits are split evenly
/// across them, so a depth-7 tree (21-bit keys) sorts in two 11-bit passes
/// and a depth-10 tree (30 bits) in three 10-bit passes. Passes whose digit
/// is constant across all keys are skipped. Any digit split of a stable LSD
/// sort yields the same permutation (keys ordered, ties in input order), so
/// the downstream bitstream is unaffected by the width choice. The sorted
/// data always ends up back in `voxels`.
/// Histogram tables for [`radix_sort_by_code`]: one per possible pass
/// (48-bit keys need at most `ceil(48/11) = 5`). Owned by the [`Encoder`]
/// so repeated encodes never re-zero the full 40 KiB — only the prefixes a
/// given key width actually uses.
type RadixCounts = [[u32; 1 << RADIX_MAX_DIGIT_BITS]; 5];

fn radix_sort_by_code(
    voxels: &mut Vec<Voxel>,
    tmp: &mut Vec<Voxel>,
    counts: &mut RadixCounts,
    key_bits: u32,
) {
    if voxels.len() < 2 {
        return;
    }
    tmp.clear();
    tmp.resize(voxels.len(), (0, 0));
    let passes = key_bits.div_ceil(RADIX_MAX_DIGIT_BITS);
    let digit_bits = key_bits.div_ceil(passes);
    let mask = (1u64 << digit_bits) - 1;
    // All pass histograms in one read of the data (the tables are a few
    // KiB each and L1-resident), instead of a separate counting pass per
    // scatter.
    for table in counts.iter_mut().take(passes as usize) {
        table[..1usize << digit_bits].fill(0);
    }
    for v in voxels.iter() {
        let mut k = v.0;
        for table in counts.iter_mut().take(passes as usize) {
            table[(k & mask) as usize] += 1;
            k >>= digit_bits;
        }
    }
    for pass in 0..passes {
        let shift = pass * digit_bits;
        let counts = &mut counts[pass as usize][..1usize << digit_bits];
        if counts.iter().any(|&c| c as usize == voxels.len()) {
            continue; // every key shares this digit; nothing to reorder
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let n = *c;
            *c = sum;
            sum += n;
        }
        for v in voxels.iter() {
            let digit = ((v.0 >> shift) & mask) as usize;
            tmp[counts[digit] as usize] = *v;
            counts[digit] += 1;
        }
        std::mem::swap(voxels, tmp);
    }
}

struct Contexts {
    /// Occupancy bit contexts: [level][child_index].
    occupancy: Vec<[BitModel; 8]>,
    /// Color bit contexts: [channel][bit position].
    color: [[BitModel; 8]; 3],
}

impl Contexts {
    fn new(depth: u32) -> Self {
        Contexts {
            occupancy: vec![[BitModel::new(); 8]; depth as usize],
            color: [[BitModel::new(); 8]; 3],
        }
    }

    /// Returns every model to the unbiased state, reusing the occupancy
    /// allocation (it only grows when a deeper tree is requested).
    fn reset(&mut self, depth: u32) {
        self.occupancy.clear();
        self.occupancy.resize(depth as usize, [BitModel::new(); 8]);
        self.color = [[BitModel::new(); 8]; 3];
    }
}

/// A reusable octree encoder owning all codec working memory.
///
/// One instance encodes a stream of frames with zero steady-state heap
/// allocations (beyond growth of the caller's output buffer): voxel
/// staging, radix scratch, code list, context models, and the range coder
/// are all retained across calls at their high-watermark sizes. Output is
/// byte-for-byte identical to the free [`encode`] function.
pub struct Encoder {
    voxels: ScratchVec<Voxel>,
    radix_tmp: ScratchVec<Voxel>,
    radix_counts: Box<RadixCounts>,
    codes: ScratchVec<u64>,
    /// Per-unique-voxel color channel sums and merged point count.
    csums: ScratchVec<([u32; 3], u32)>,
    ctx: Contexts,
    rc: RangeEncoder,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an encoder with empty (cold) scratch buffers.
    pub fn new() -> Self {
        Encoder {
            voxels: ScratchVec::new("codec.scratch.voxels"),
            radix_tmp: ScratchVec::new("codec.scratch.radix_tmp"),
            radix_counts: Box::new([[0; 1 << RADIX_MAX_DIGIT_BITS]; 5]),
            codes: ScratchVec::new("codec.scratch.codes"),
            csums: ScratchVec::new("codec.scratch.csums"),
            ctx: Contexts::new(0),
            rc: RangeEncoder::new(),
        }
    }

    /// Encodes `cloud` into `out` (cleared first), returning statistics.
    ///
    /// # Panics
    /// If `cfg.depth` is outside `1..=16` or `cfg.color_bits` outside `1..=8`.
    pub fn encode_into(
        &mut self,
        cloud: &PointCloud,
        cfg: &CodecConfig,
        out: &mut Vec<u8>,
    ) -> CodecStats {
        assert!(
            cfg.depth >= 1 && cfg.depth <= MAX_DEPTH,
            "depth must be in 1..=16"
        );
        assert!(
            cfg.color_bits >= 1 && cfg.color_bits <= 8,
            "color_bits must be in 1..=8"
        );
        out.clear();

        let bounds = if cloud.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            cloud.bounds()
        };
        let extent = bounds.extent().max_component().max(1e-6);
        let levels = 1u32 << cfg.depth;
        let scale = levels as f64 / extent;

        // Voxelize: quantize into the staging buffer, colors packed so the
        // sort element stays 16 bytes. Truncation (`as i64`) plus the full
        // clamp is exactly `floor().clamp(..)`: for v >= 0 they agree, and
        // any v < 0 clamps to 0 under both (NaN/inf saturate identically).
        let voxels = self.voxels.begin();
        let m = (levels - 1) as i64;
        let (mnx, mny, mnz) = (bounds.min.x, bounds.min.y, bounds.min.z);
        voxels.extend(cloud.points.iter().map(|p| {
            let x = (((p.pos[0] as f64 - mnx) * scale) as i64).clamp(0, m) as u32;
            let y = (((p.pos[1] as f64 - mny) * scale) as i64).clamp(0, m) as u32;
            let z = (((p.pos[2] as f64 - mnz) * scale) as i64).clamp(0, m) as u32;
            let packed = p.color[0] as u32 | (p.color[1] as u32) << 8 | (p.color[2] as u32) << 16;
            (morton_encode(x, y, z, cfg.depth), packed)
        }));
        radix_sort_by_code(
            voxels,
            self.radix_tmp.begin(),
            &mut self.radix_counts,
            3 * cfg.depth,
        );

        // Merge duplicate voxels (sorted => runs), summing colors and
        // counts so each voxel's color decodes to the *average* (floor of
        // sum/count) of its merged points.
        let codes = self.codes.begin();
        let csums = self.csums.begin();
        codes.reserve(voxels.len());
        csums.reserve(voxels.len());
        let mut i = 0usize;
        while i < voxels.len() {
            let code = voxels[i].0;
            let mut sums = [0u32; 3];
            let mut count = 0u32;
            while i < voxels.len() && voxels[i].0 == code {
                let c = voxels[i].1;
                sums[0] += c & 0xFF;
                sums[1] += (c >> 8) & 0xFF;
                sums[2] += (c >> 16) & 0xFF;
                count += 1;
                i += 1;
            }
            codes.push(code);
            csums.push((sums, count));
        }

        // Header.
        out.reserve(HEADER_LEN + codes.len());
        out.extend_from_slice(&MAGIC);
        out.push(cfg.depth as u8);
        out.push(cfg.color_bits as u8);
        out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        for v in [extent, 0.0, 0.0] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        debug_assert_eq!(out.len(), HEADER_LEN);

        // Payload.
        self.ctx.reset(cfg.depth);
        if !codes.is_empty() {
            encode_node(&mut self.rc, &mut self.ctx, codes, 0, cfg.depth);
            // Colors in Morton (leaf) order.
            let shift = 8 - cfg.color_bits;
            for &(sums, count) in csums.iter() {
                for ch in 0..3 {
                    let avg = sums[ch] / count;
                    self.rc
                        .encode_bits(&mut self.ctx.color[ch], avg >> shift, cfg.color_bits);
                }
            }
        }
        self.rc.finish_into(out);

        let stats = CodecStats {
            input_points: cloud.len(),
            voxels: codes.len(),
            bytes: out.len(),
            bits_per_point: if cloud.is_empty() {
                0.0
            } else {
                out.len() as f64 * 8.0 / cloud.len() as f64
            },
        };
        if obs::enabled() {
            obs::inc("codec.clouds_encoded");
            obs::add("codec.input_points", stats.input_points as u64);
            obs::add("codec.voxels", stats.voxels as u64);
            obs::add("codec.bytes", stats.bytes as u64);
        }
        stats
    }

    /// Convenience wrapper allocating a fresh [`EncodedCloud`].
    pub fn encode(&mut self, cloud: &PointCloud, cfg: &CodecConfig) -> (EncodedCloud, CodecStats) {
        let mut data = Vec::new();
        let stats = self.encode_into(cloud, cfg, &mut data);
        (EncodedCloud { data }, stats)
    }
}

/// A reusable octree decoder owning all codec working memory.
///
/// The mirror of [`Encoder`]: code lists and context models persist across
/// calls, so decoding a stream of frames into a reused [`PointCloud`]
/// allocates nothing in steady state.
pub struct Decoder {
    codes: ScratchVec<u64>,
    ctx: Contexts,
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder {
    /// Creates a decoder with empty (cold) scratch buffers.
    pub fn new() -> Self {
        Decoder {
            codes: ScratchVec::new("codec.scratch.dec_codes"),
            ctx: Contexts::new(0),
        }
    }

    /// Decodes `encoded`, **appending** the voxel points to `out` (for
    /// merging multi-cell streams). Returns the number of points appended.
    pub fn decode_append(
        &mut self,
        encoded: &EncodedCloud,
        out: &mut PointCloud,
    ) -> Result<usize, CodecError> {
        let data = &encoded.data;
        if data.len() < HEADER_LEN {
            return Err(CodecError::TruncatedHeader);
        }
        if data[0..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let depth = data[4] as u32;
        let color_bits = data[5] as u32;
        if depth == 0 || depth > MAX_DEPTH {
            return Err(CodecError::InvalidHeader("depth out of range"));
        }
        if color_bits == 0 || color_bits > 8 {
            return Err(CodecError::InvalidHeader("color_bits out of range"));
        }
        let count = u32::from_le_bytes(data[6..10].try_into().unwrap()) as usize;
        let f32_at = |off: usize| -> f64 {
            f32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as f64
        };
        let min = Vec3::new(f32_at(10), f32_at(14), f32_at(18));
        let extent = f32_at(22);
        if !(extent.is_finite() && extent > 0.0) && count > 0 {
            return Err(CodecError::InvalidHeader("bad extent"));
        }
        if count == 0 {
            obs::inc("codec.clouds_decoded");
            return Ok(0);
        }

        let levels = 1u32 << depth;
        let voxel = extent / levels as f64;

        self.ctx.reset(depth);
        let mut dec = RangeDecoder::new(&data[HEADER_LEN..]);
        let codes = self.codes.begin();
        codes.reserve(count);
        decode_node(&mut dec, &mut self.ctx, 0u64, 0, depth, codes, count);

        out.points.reserve(codes.len());
        let shift = 8 - color_bits;
        // Reconstruct quantized colors at bucket centers.
        let dequant = |v: u32| -> u8 {
            let v = (v << shift) + ((1u32 << shift) >> 1);
            v.min(255) as u8
        };
        for &code in codes.iter() {
            let (x, y, z) = morton_decode(code, depth);
            let pos = min
                + Vec3::new(
                    (x as f64 + 0.5) * voxel,
                    (y as f64 + 0.5) * voxel,
                    (z as f64 + 0.5) * voxel,
                );
            let r = dec.decode_bits(&mut self.ctx.color[0], color_bits);
            let g = dec.decode_bits(&mut self.ctx.color[1], color_bits);
            let b = dec.decode_bits(&mut self.ctx.color[2], color_bits);
            out.points.push(Point::new(
                [pos.x as f32, pos.y as f32, pos.z as f32],
                [dequant(r), dequant(g), dequant(b)],
            ));
        }
        obs::inc("codec.clouds_decoded");
        Ok(codes.len())
    }

    /// Decodes `encoded` into `out` (cleared first). Returns the decoded
    /// point count.
    pub fn decode_into(
        &mut self,
        encoded: &EncodedCloud,
        out: &mut PointCloud,
    ) -> Result<usize, CodecError> {
        out.points.clear();
        self.decode_append(encoded, out)
    }
}

thread_local! {
    static THREAD_ENCODER: RefCell<Encoder> = RefCell::new(Encoder::new());
    static THREAD_DECODER: RefCell<Decoder> = RefCell::new(Decoder::new());
}

/// Encodes a cloud. Returns the bitstream and compression statistics.
///
/// Delegates to a thread-local [`Encoder`], so repeated calls on one thread
/// reuse the codec's working memory; only the returned bitstream allocates.
pub fn encode(cloud: &PointCloud, cfg: &CodecConfig) -> (EncodedCloud, CodecStats) {
    THREAD_ENCODER.with(|enc| enc.borrow_mut().encode(cloud, cfg))
}

/// Decodes a bitstream back into a voxelized point cloud.
///
/// Delegates to a thread-local [`Decoder`]; only the returned cloud
/// allocates.
pub fn decode(encoded: &EncodedCloud) -> Result<PointCloud, CodecError> {
    THREAD_DECODER.with(|dec| {
        let mut cloud = PointCloud::new();
        dec.borrow_mut().decode_into(encoded, &mut cloud)?;
        Ok(cloud)
    })
}

/// When child ranges are at most this long, partition by linear scan;
/// longer ranges use binary search (`partition_point`). The bitstream does
/// not depend on this choice — only the partitioning cost does.
const LINEAR_SCAN_MAX: usize = 64;

/// Recursive DFS over the sorted Morton codes. `level` counts down; at each
/// node the 3-bit child group is at bit offset `3 * (level - 1)`.
fn encode_node(
    enc: &mut RangeEncoder,
    ctx: &mut Contexts,
    codes: &[u64],
    depth_from_root: u32,
    total_depth: u32,
) {
    let level_shift = 3 * (total_depth - depth_from_root - 1);
    // Partition children: codes are sorted, so each child occupies a
    // contiguous range.
    let mut ranges: [(usize, usize); 8] = [(0, 0); 8];
    let mut start = 0usize;
    for child in 0..8u64 {
        let end = if codes.len() - start > LINEAR_SCAN_MAX {
            // Digits are ascending in the sorted slice; everything before
            // `start` has a digit < `child`, so `<= child` flips exactly at
            // this child's boundary.
            start + codes[start..].partition_point(|&c| (c >> level_shift) & 0b111 <= child)
        } else {
            codes[start..]
                .iter()
                .position(|&c| (c >> level_shift) & 0b111 != child)
                .map(|p| start + p)
                .unwrap_or(codes.len())
        };
        ranges[child as usize] = (start, end);
        start = end;
    }
    // Emit occupancy bits.
    for child in 0..8usize {
        let occupied = ranges[child].1 > ranges[child].0;
        enc.encode_bit(
            &mut ctx.occupancy[depth_from_root as usize][child],
            occupied,
        );
    }
    // Recurse.
    if depth_from_root + 1 < total_depth {
        for child in 0..8usize {
            let (s, e) = ranges[child];
            if e > s {
                encode_node(enc, ctx, &codes[s..e], depth_from_root + 1, total_depth);
            }
        }
    }
}

fn decode_node(
    dec: &mut RangeDecoder,
    ctx: &mut Contexts,
    prefix: u64,
    depth_from_root: u32,
    total_depth: u32,
    out: &mut Vec<u64>,
    limit: usize,
) {
    let mut occ = [false; 8];
    for (child, o) in occ.iter_mut().enumerate() {
        *o = dec.decode_bit(&mut ctx.occupancy[depth_from_root as usize][child]);
    }
    for (child, &o) in occ.iter().enumerate() {
        if !o {
            continue;
        }
        if out.len() >= limit {
            // Corrupt stream protection: never exceed the declared count.
            return;
        }
        let code = (prefix << 3) | child as u64;
        if depth_from_root + 1 == total_depth {
            out.push(code);
        } else {
            decode_node(dec, ctx, code, depth_from_root + 1, total_depth, out, limit);
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(CodecConfig { depth, color_bits });
volcast_util::impl_json_struct!(EncodedCloud { data });
volcast_util::impl_json_struct!(CodecStats {
    input_points,
    voxels,
    bytes,
    bits_per_point
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticBody;

    /// Bit-by-bit reference Morton implementations (the original loop
    /// formulations) pinning the magic-mask versions.
    fn morton_encode_ref(x: u32, y: u32, z: u32, depth: u32) -> u64 {
        let mut code = 0u64;
        for i in (0..depth).rev() {
            code = (code << 3)
                | (((x >> i) & 1) as u64) << 2
                | (((y >> i) & 1) as u64) << 1
                | ((z >> i) & 1) as u64;
        }
        code
    }

    fn morton_decode_ref(code: u64, depth: u32) -> (u32, u32, u32) {
        let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
        for i in 0..depth {
            let group = (code >> (3 * i)) & 0b111;
            x |= (((group >> 2) & 1) as u32) << i;
            y |= (((group >> 1) & 1) as u32) << i;
            z |= ((group & 1) as u32) << i;
        }
        (x, y, z)
    }

    #[test]
    fn morton_round_trip() {
        for depth in [1u32, 4, 10, 16] {
            let m = (1u32 << depth) - 1;
            for (x, y, z) in [(0, 0, 0), (1 & m, 2 & m, 3 & m), (m, m, m), (m / 2, 0, m)] {
                let code = morton_encode(x, y, z, depth);
                assert_eq!(morton_decode(code, depth), (x, y, z));
            }
        }
    }

    #[test]
    fn morton_magic_masks_match_bit_loop_reference() {
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0xC0DE);
        for depth in [1u32, 5, 8, 13, 16] {
            let m = (1u32 << depth) - 1;
            for _ in 0..200 {
                let (x, y, z) = (
                    rng.gen_range(0..=m as u64) as u32,
                    rng.gen_range(0..=m as u64) as u32,
                    rng.gen_range(0..=m as u64) as u32,
                );
                let code = morton_encode(x, y, z, depth);
                assert_eq!(code, morton_encode_ref(x, y, z, depth));
                assert_eq!(morton_decode(code, depth), morton_decode_ref(code, depth));
            }
        }
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0x5047);
        for (n, key_bits) in [
            (0usize, 30u32),
            (1, 3),
            (17, 12),
            (1000, 21),
            (1000, 30),
            (5000, 48),
        ] {
            let voxels: Vec<Voxel> = (0..n)
                .map(|i| {
                    let code = rng.gen_range(0..1u64 << key_bits.min(63));
                    (code, i as u32)
                })
                .collect();
            let mut expected = voxels.clone();
            expected.sort_by_key(|v| v.0); // stable comparison sort
            let mut got = voxels;
            let mut tmp = Vec::new();
            let mut counts = Box::new([[0; 1 << RADIX_MAX_DIGIT_BITS]; 5]);
            radix_sort_by_code(&mut got, &mut tmp, &mut counts, key_bits);
            assert_eq!(got, expected, "n={n} bits={key_bits}");
        }
    }

    #[test]
    fn morton_order_groups_spatially() {
        // The first octant (low halves) must sort before the last octant.
        let depth = 4;
        let a = morton_encode(0, 0, 0, depth);
        let b = morton_encode(7, 7, 7, depth);
        let c = morton_encode(8, 8, 8, depth);
        assert!(a < b && b < c);
    }

    #[test]
    fn empty_cloud_round_trip() {
        let (enc, stats) = encode(&PointCloud::new(), &CodecConfig::default());
        assert_eq!(stats.voxels, 0);
        let dec = decode(&enc).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn single_point_round_trip() {
        let cloud = PointCloud::from_points(vec![Point::new([1.0, 2.0, 3.0], [200, 100, 50])]);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.voxels, 1);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 1);
        // Degenerate bounds: extent clamp keeps the voxel near the point.
        let p = dec.points[0].position();
        assert!((p - Vec3::new(1.0, 2.0, 3.0)).norm() < 0.01, "{p}");
    }

    #[test]
    fn duplicate_voxels_average_colors() {
        // Two points in the same voxel: the decoded color must be the
        // floor of the channel-wise mean (not last-write-wins).
        let cloud = PointCloud::from_points(vec![
            Point::new([0.0, 0.0, 0.0], [10, 20, 30]),
            Point::new([0.0, 0.0, 0.0], [13, 21, 33]),
            Point::new([1.0, 1.0, 1.0], [0, 0, 0]), // non-degenerate bounds
        ]);
        let cfg = CodecConfig {
            depth: 4,
            color_bits: 8, // lossless channel: decoded == stored average
        };
        let (enc, stats) = encode(&cloud, &cfg);
        assert_eq!(stats.voxels, 2);
        let dec = decode(&enc).unwrap();
        let merged = dec
            .points
            .iter()
            .find(|p| p.position().norm() < 0.2)
            .expect("merged voxel near origin");
        // floor((10+13)/2), floor((20+21)/2), floor((30+33)/2)
        assert_eq!(merged.color, [11, 20, 31]);
    }

    #[test]
    fn body_round_trip_geometry_error_bounded() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let cfg = CodecConfig {
            depth: 9,
            color_bits: 6,
        };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), stats.voxels);
        // Voxel size = extent / 2^9; max quantization error = voxel * sqrt(3)/2.
        let extent = cloud.bounds().extent().max_component();
        let max_err = extent / 512.0 * 3f64.sqrt() / 2.0 + 1e-6;
        // Every decoded point must be within max_err of some original point.
        // (Spot-check a sample for test speed.)
        for d in dec.points.iter().step_by(97) {
            let dp = d.position();
            let best = cloud
                .points
                .iter()
                .map(|o| o.position().distance(dp))
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= max_err,
                "decoded point {dp} off by {best} > {max_err}"
            );
        }
    }

    #[test]
    fn reused_encoder_decoder_match_fresh_instances() {
        let body = SyntheticBody::default();
        let cfg = CodecConfig {
            depth: 9,
            color_bits: 5,
        };
        let mut reused_enc = Encoder::new();
        let mut reused_dec = Decoder::new();
        let mut stream = Vec::new();
        let mut decoded = PointCloud::new();
        for frame in 0..100u64 {
            let cloud = body.frame(frame, 1_500);
            let fresh = Encoder::new().encode(&cloud, &cfg).0;
            let stats = reused_enc.encode_into(&cloud, &cfg, &mut stream);
            assert_eq!(stream, fresh.data, "frame {frame} bitstream");
            let n = reused_dec
                .decode_into(
                    &EncodedCloud {
                        data: stream.clone(),
                    },
                    &mut decoded,
                )
                .unwrap();
            assert_eq!(n, stats.voxels);
            let mut fresh_cloud = PointCloud::new();
            Decoder::new()
                .decode_into(&fresh, &mut fresh_cloud)
                .unwrap();
            assert_eq!(decoded.points, fresh_cloud.points, "frame {frame} points");
        }
    }

    #[test]
    fn compression_is_effective() {
        let cloud = SyntheticBody::default().frame(0, 50_000);
        let (_, stats) = encode(&cloud, &CodecConfig::default());
        // Raw: 12 bytes position + 3 bytes color = 120 bits/point.
        assert!(
            stats.bits_per_point < 40.0,
            "bits per point {}",
            stats.bits_per_point
        );
        assert!(stats.bits_per_point > 2.0);
    }

    #[test]
    fn deeper_quantization_costs_more_bits() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let (_, s8) = encode(
            &cloud,
            &CodecConfig {
                depth: 8,
                color_bits: 6,
            },
        );
        let (_, s11) = encode(
            &cloud,
            &CodecConfig {
                depth: 11,
                color_bits: 6,
            },
        );
        assert!(s11.bytes > s8.bytes);
    }

    #[test]
    fn color_fidelity_within_quantization() {
        let cloud = PointCloud::from_points(vec![
            Point::new([0.0, 0.0, 0.0], [255, 0, 128]),
            Point::new([1.0, 1.0, 1.0], [0, 255, 64]),
        ]);
        let cfg = CodecConfig {
            depth: 8,
            color_bits: 6,
        };
        let (enc, _) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        let step = 1u32 << (8 - cfg.color_bits); // 4
        for d in &dec.points {
            let orig = cloud
                .points
                .iter()
                .min_by(|a, b| {
                    let da = a.position().distance(d.position());
                    let db = b.position().distance(d.position());
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            for ch in 0..3 {
                let err = (d.color[ch] as i32 - orig.color[ch] as i32).unsigned_abs();
                assert!(err <= step, "channel {ch} err {err}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        assert_eq!(
            decode(&EncodedCloud {
                data: vec![1, 2, 3]
            }),
            Err(CodecError::TruncatedHeader)
        );
        let mut bad_magic = vec![0u8; HEADER_LEN + 8];
        bad_magic[0..4].copy_from_slice(b"NOPE");
        assert_eq!(
            decode(&EncodedCloud { data: bad_magic }),
            Err(CodecError::BadMagic)
        );
        // Bad depth.
        let mut bad_depth = vec![0u8; HEADER_LEN + 8];
        bad_depth[0..4].copy_from_slice(&MAGIC);
        bad_depth[4] = 0;
        bad_depth[5] = 6;
        assert!(matches!(
            decode(&EncodedCloud { data: bad_depth }),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn corrupt_payload_does_not_panic_or_overrun() {
        let cloud = SyntheticBody::default().frame(0, 2_000);
        let (mut enc, stats) = encode(&cloud, &CodecConfig::default());
        // Truncate the payload savagely.
        enc.data.truncate(HEADER_LEN + 8);
        let dec = decode(&enc).unwrap();
        assert!(dec.len() <= stats.voxels);
    }

    #[test]
    fn stats_are_consistent() {
        let cloud = SyntheticBody::default().frame(3, 10_000);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.input_points, 10_000);
        assert_eq!(stats.bytes, enc.size_bytes());
        assert!(stats.voxels <= stats.input_points);
        assert!((stats.bits_per_point - enc.size_bytes() as f64 * 8.0 / 10_000.0).abs() < 1e-9);
    }
}

//! Octree geometry + color coding. See module docs in [`super`].
// Fixed-size index loops (angle dims, octree children, AP slots) read
// clearer than iterator chains in this module.
#![allow(clippy::needless_range_loop)]

use super::range::{BitModel, RangeDecoder, RangeEncoder};
use crate::point::{Point, PointCloud};
use volcast_geom::{Aabb, Vec3};
use volcast_util::obs;

/// Codec parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecConfig {
    /// Geometry quantization: bits per axis (octree depth). The paper-scale
    /// human body at depth 10 gives ~2 mm voxels.
    pub depth: u32,
    /// Color quantization: bits per channel (1..=8).
    pub color_bits: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            depth: 10,
            color_bits: 6,
        }
    }
}

/// Why a bitstream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The header is shorter than the fixed header size.
    TruncatedHeader,
    /// Bad magic bytes.
    BadMagic,
    /// Header fields are inconsistent (e.g. zero depth, absurd counts).
    InvalidHeader(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::TruncatedHeader => write!(f, "truncated header"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::InvalidHeader(why) => write!(f, "invalid header: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded cloud: header + entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedCloud {
    /// Serialized bitstream (header + payload).
    pub data: Vec<u8>,
}

impl EncodedCloud {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Compression statistics for instrumentation and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    /// Points in the input cloud.
    pub input_points: usize,
    /// Unique voxels after quantization (= decoded point count).
    pub voxels: usize,
    /// Compressed size in bytes.
    pub bytes: usize,
    /// Compressed bits per input point.
    pub bits_per_point: f64,
}

const MAGIC: [u8; 4] = *b"VOCT";
const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 24;
const MAX_DEPTH: u32 = 16;

/// 3D Morton encode: interleaves the low `depth` bits of x, y, z.
fn morton_encode(x: u32, y: u32, z: u32, depth: u32) -> u64 {
    let mut code = 0u64;
    for i in (0..depth).rev() {
        code = (code << 3)
            | (((x >> i) & 1) as u64) << 2
            | (((y >> i) & 1) as u64) << 1
            | ((z >> i) & 1) as u64;
    }
    code
}

/// Inverse of [`morton_encode`].
fn morton_decode(code: u64, depth: u32) -> (u32, u32, u32) {
    let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
    for i in 0..depth {
        let group = (code >> (3 * i)) & 0b111;
        x |= (((group >> 2) & 1) as u32) << i;
        y |= (((group >> 1) & 1) as u32) << i;
        z |= ((group & 1) as u32) << i;
    }
    (x, y, z)
}

struct Contexts {
    /// Occupancy bit contexts: [level][child_index].
    occupancy: Vec<[BitModel; 8]>,
    /// Color bit contexts: [channel][bit position].
    color: [[BitModel; 8]; 3],
}

impl Contexts {
    fn new(depth: u32) -> Self {
        Contexts {
            occupancy: vec![[BitModel::new(); 8]; depth as usize],
            color: [[BitModel::new(); 8]; 3],
        }
    }
}

/// Encodes a cloud. Returns the bitstream and compression statistics.
pub fn encode(cloud: &PointCloud, cfg: &CodecConfig) -> (EncodedCloud, CodecStats) {
    assert!(
        cfg.depth >= 1 && cfg.depth <= MAX_DEPTH,
        "depth must be in 1..=16"
    );
    assert!(
        cfg.color_bits >= 1 && cfg.color_bits <= 8,
        "color_bits must be in 1..=8"
    );

    let bounds = if cloud.is_empty() {
        Aabb::new(Vec3::ZERO, Vec3::ZERO)
    } else {
        cloud.bounds()
    };
    let extent = bounds.extent().max_component().max(1e-6);
    let levels = 1u32 << cfg.depth;
    let scale = levels as f64 / extent;

    // Voxelize: quantize and merge duplicates (color-averaged).
    let mut voxels: Vec<(u64, [u32; 3], u32)> = cloud
        .points
        .iter()
        .map(|p| {
            let rel = (p.position() - bounds.min) * scale;
            let q = |v: f64| (v.floor() as i64).clamp(0, (levels - 1) as i64) as u32;
            let (x, y, z) = (q(rel.x), q(rel.y), q(rel.z));
            (
                morton_encode(x, y, z, cfg.depth),
                [p.color[0] as u32, p.color[1] as u32, p.color[2] as u32],
                1u32,
            )
        })
        .collect();
    voxels.sort_unstable_by_key(|v| v.0);
    // Merge duplicates, summing colors for averaging.
    let mut merged: Vec<(u64, [u32; 3], u32)> = Vec::with_capacity(voxels.len());
    for v in voxels {
        match merged.last_mut() {
            Some(last) if last.0 == v.0 => {
                for c in 0..3 {
                    last.1[c] += v.1[c];
                }
                last.2 += v.2;
            }
            _ => merged.push(v),
        }
    }

    let codes: Vec<u64> = merged.iter().map(|v| v.0).collect();

    // Header.
    let mut data = Vec::with_capacity(HEADER_LEN + merged.len());
    data.extend_from_slice(&MAGIC);
    data.push(cfg.depth as u8);
    data.push(cfg.color_bits as u8);
    data.extend_from_slice(&(merged.len() as u32).to_le_bytes());
    for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
        data.extend_from_slice(&(v as f32).to_le_bytes());
    }
    for v in [extent, 0.0, 0.0] {
        data.extend_from_slice(&(v as f32).to_le_bytes());
    }
    debug_assert_eq!(data.len(), HEADER_LEN);

    // Payload.
    let mut ctx = Contexts::new(cfg.depth);
    let mut enc = RangeEncoder::new();
    if !codes.is_empty() {
        encode_node(&mut enc, &mut ctx, &codes, 0, cfg.depth);
        // Colors in Morton (leaf) order.
        let shift = 8 - cfg.color_bits;
        for v in &merged {
            for ch in 0..3 {
                let avg = v.1[ch] / v.2;
                enc.encode_bits(&mut ctx.color[ch], avg >> shift, cfg.color_bits);
            }
        }
    }
    data.extend_from_slice(&enc.finish());

    let stats = CodecStats {
        input_points: cloud.len(),
        voxels: merged.len(),
        bytes: data.len(),
        bits_per_point: if cloud.is_empty() {
            0.0
        } else {
            data.len() as f64 * 8.0 / cloud.len() as f64
        },
    };
    if obs::enabled() {
        obs::inc("codec.clouds_encoded");
        obs::add("codec.input_points", stats.input_points as u64);
        obs::add("codec.voxels", stats.voxels as u64);
        obs::add("codec.bytes", stats.bytes as u64);
    }
    (EncodedCloud { data }, stats)
}

/// Recursive DFS over the sorted Morton codes. `level` counts down; at each
/// node the 3-bit child group is at bit offset `3 * (level - 1)`.
fn encode_node(
    enc: &mut RangeEncoder,
    ctx: &mut Contexts,
    codes: &[u64],
    depth_from_root: u32,
    total_depth: u32,
) {
    let level_shift = 3 * (total_depth - depth_from_root - 1);
    // Partition children: codes are sorted, so each child occupies a
    // contiguous range.
    let mut ranges: [(usize, usize); 8] = [(0, 0); 8];
    let mut start = 0usize;
    for child in 0..8u64 {
        let end = codes[start..]
            .iter()
            .position(|&c| (c >> level_shift) & 0b111 != child)
            .map(|p| start + p)
            .unwrap_or(codes.len());
        ranges[child as usize] = (start, end);
        start = end;
    }
    // Emit occupancy bits.
    for child in 0..8usize {
        let occupied = ranges[child].1 > ranges[child].0;
        enc.encode_bit(
            &mut ctx.occupancy[depth_from_root as usize][child],
            occupied,
        );
    }
    // Recurse.
    if depth_from_root + 1 < total_depth {
        for child in 0..8usize {
            let (s, e) = ranges[child];
            if e > s {
                encode_node(enc, ctx, &codes[s..e], depth_from_root + 1, total_depth);
            }
        }
    }
}

/// Decodes a bitstream back into a voxelized point cloud.
pub fn decode(encoded: &EncodedCloud) -> Result<PointCloud, CodecError> {
    let data = &encoded.data;
    if data.len() < HEADER_LEN {
        return Err(CodecError::TruncatedHeader);
    }
    if data[0..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let depth = data[4] as u32;
    let color_bits = data[5] as u32;
    if depth == 0 || depth > MAX_DEPTH {
        return Err(CodecError::InvalidHeader("depth out of range"));
    }
    if color_bits == 0 || color_bits > 8 {
        return Err(CodecError::InvalidHeader("color_bits out of range"));
    }
    let count = u32::from_le_bytes(data[6..10].try_into().unwrap()) as usize;
    let f32_at =
        |off: usize| -> f64 { f32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as f64 };
    let min = Vec3::new(f32_at(10), f32_at(14), f32_at(18));
    let extent = f32_at(22);
    if !(extent.is_finite() && extent > 0.0) && count > 0 {
        return Err(CodecError::InvalidHeader("bad extent"));
    }
    if count == 0 {
        return Ok(PointCloud::new());
    }

    let levels = 1u32 << depth;
    let voxel = extent / levels as f64;

    let mut ctx = Contexts::new(depth);
    let mut dec = RangeDecoder::new(&data[HEADER_LEN..]);
    let mut codes = Vec::with_capacity(count);
    decode_node(&mut dec, &mut ctx, 0u64, 0, depth, &mut codes, count);

    let mut points = Vec::with_capacity(codes.len());
    let shift = 8 - color_bits;
    // Reconstruct quantized colors at bucket centers.
    let dequant = |v: u32| -> u8 {
        let v = (v << shift) + ((1u32 << shift) >> 1);
        v.min(255) as u8
    };
    for &code in &codes {
        let (x, y, z) = morton_decode(code, depth);
        let pos = min
            + Vec3::new(
                (x as f64 + 0.5) * voxel,
                (y as f64 + 0.5) * voxel,
                (z as f64 + 0.5) * voxel,
            );
        let r = dec.decode_bits(&mut ctx.color[0], color_bits);
        let g = dec.decode_bits(&mut ctx.color[1], color_bits);
        let b = dec.decode_bits(&mut ctx.color[2], color_bits);
        points.push(Point::new(
            [pos.x as f32, pos.y as f32, pos.z as f32],
            [dequant(r), dequant(g), dequant(b)],
        ));
    }
    obs::inc("codec.clouds_decoded");
    Ok(PointCloud::from_points(points))
}

fn decode_node(
    dec: &mut RangeDecoder,
    ctx: &mut Contexts,
    prefix: u64,
    depth_from_root: u32,
    total_depth: u32,
    out: &mut Vec<u64>,
    limit: usize,
) {
    let mut occ = [false; 8];
    for (child, o) in occ.iter_mut().enumerate() {
        *o = dec.decode_bit(&mut ctx.occupancy[depth_from_root as usize][child]);
    }
    for (child, &o) in occ.iter().enumerate() {
        if !o {
            continue;
        }
        if out.len() >= limit {
            // Corrupt stream protection: never exceed the declared count.
            return;
        }
        let code = (prefix << 3) | child as u64;
        if depth_from_root + 1 == total_depth {
            out.push(code);
        } else {
            decode_node(dec, ctx, code, depth_from_root + 1, total_depth, out, limit);
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(CodecConfig { depth, color_bits });
volcast_util::impl_json_struct!(EncodedCloud { data });
volcast_util::impl_json_struct!(CodecStats {
    input_points,
    voxels,
    bytes,
    bits_per_point
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticBody;

    #[test]
    fn morton_round_trip() {
        for depth in [1u32, 4, 10, 16] {
            let m = (1u32 << depth) - 1;
            for (x, y, z) in [(0, 0, 0), (1 & m, 2 & m, 3 & m), (m, m, m), (m / 2, 0, m)] {
                let code = morton_encode(x, y, z, depth);
                assert_eq!(morton_decode(code, depth), (x, y, z));
            }
        }
    }

    #[test]
    fn morton_order_groups_spatially() {
        // The first octant (low halves) must sort before the last octant.
        let depth = 4;
        let a = morton_encode(0, 0, 0, depth);
        let b = morton_encode(7, 7, 7, depth);
        let c = morton_encode(8, 8, 8, depth);
        assert!(a < b && b < c);
    }

    #[test]
    fn empty_cloud_round_trip() {
        let (enc, stats) = encode(&PointCloud::new(), &CodecConfig::default());
        assert_eq!(stats.voxels, 0);
        let dec = decode(&enc).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn single_point_round_trip() {
        let cloud = PointCloud::from_points(vec![Point::new([1.0, 2.0, 3.0], [200, 100, 50])]);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.voxels, 1);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 1);
        // Degenerate bounds: extent clamp keeps the voxel near the point.
        let p = dec.points[0].position();
        assert!((p - Vec3::new(1.0, 2.0, 3.0)).norm() < 0.01, "{p}");
    }

    #[test]
    fn body_round_trip_geometry_error_bounded() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let cfg = CodecConfig {
            depth: 9,
            color_bits: 6,
        };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), stats.voxels);
        // Voxel size = extent / 2^9; max quantization error = voxel * sqrt(3)/2.
        let extent = cloud.bounds().extent().max_component();
        let max_err = extent / 512.0 * 3f64.sqrt() / 2.0 + 1e-6;
        // Every decoded point must be within max_err of some original point.
        // (Spot-check a sample for test speed.)
        for d in dec.points.iter().step_by(97) {
            let dp = d.position();
            let best = cloud
                .points
                .iter()
                .map(|o| o.position().distance(dp))
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= max_err,
                "decoded point {dp} off by {best} > {max_err}"
            );
        }
    }

    #[test]
    fn compression_is_effective() {
        let cloud = SyntheticBody::default().frame(0, 50_000);
        let (_, stats) = encode(&cloud, &CodecConfig::default());
        // Raw: 12 bytes position + 3 bytes color = 120 bits/point.
        assert!(
            stats.bits_per_point < 40.0,
            "bits per point {}",
            stats.bits_per_point
        );
        assert!(stats.bits_per_point > 2.0);
    }

    #[test]
    fn deeper_quantization_costs_more_bits() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let (_, s8) = encode(
            &cloud,
            &CodecConfig {
                depth: 8,
                color_bits: 6,
            },
        );
        let (_, s11) = encode(
            &cloud,
            &CodecConfig {
                depth: 11,
                color_bits: 6,
            },
        );
        assert!(s11.bytes > s8.bytes);
    }

    #[test]
    fn color_fidelity_within_quantization() {
        let cloud = PointCloud::from_points(vec![
            Point::new([0.0, 0.0, 0.0], [255, 0, 128]),
            Point::new([1.0, 1.0, 1.0], [0, 255, 64]),
        ]);
        let cfg = CodecConfig {
            depth: 8,
            color_bits: 6,
        };
        let (enc, _) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        let step = 1u32 << (8 - cfg.color_bits); // 4
        for d in &dec.points {
            let orig = cloud
                .points
                .iter()
                .min_by(|a, b| {
                    let da = a.position().distance(d.position());
                    let db = b.position().distance(d.position());
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            for ch in 0..3 {
                let err = (d.color[ch] as i32 - orig.color[ch] as i32).unsigned_abs();
                assert!(err <= step, "channel {ch} err {err}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        assert_eq!(
            decode(&EncodedCloud {
                data: vec![1, 2, 3]
            }),
            Err(CodecError::TruncatedHeader)
        );
        let mut bad_magic = vec![0u8; HEADER_LEN + 8];
        bad_magic[0..4].copy_from_slice(b"NOPE");
        assert_eq!(
            decode(&EncodedCloud { data: bad_magic }),
            Err(CodecError::BadMagic)
        );
        // Bad depth.
        let mut bad_depth = vec![0u8; HEADER_LEN + 8];
        bad_depth[0..4].copy_from_slice(&MAGIC);
        bad_depth[4] = 0;
        bad_depth[5] = 6;
        assert!(matches!(
            decode(&EncodedCloud { data: bad_depth }),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn corrupt_payload_does_not_panic_or_overrun() {
        let cloud = SyntheticBody::default().frame(0, 2_000);
        let (mut enc, stats) = encode(&cloud, &CodecConfig::default());
        // Truncate the payload savagely.
        enc.data.truncate(HEADER_LEN + 8);
        let dec = decode(&enc).unwrap();
        assert!(dec.len() <= stats.voxels);
    }

    #[test]
    fn stats_are_consistent() {
        let cloud = SyntheticBody::default().frame(3, 10_000);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.input_points, 10_000);
        assert_eq!(stats.bytes, enc.size_bytes());
        assert!(stats.voxels <= stats.input_points);
        assert!((stats.bits_per_point - enc.size_bytes() as f64 * 8.0 / 10_000.0).abs() < 1e-9);
    }
}

//! Octree geometry + color coding. See module docs in [`super`].
//!
//! The hot path is the stateful [`Encoder`]/[`Decoder`] pair: they own all
//! working memory (voxel staging, radix-sort scratch, Morton code lists,
//! context models, the range coder) as [`ScratchVec`]s, so encoding or
//! decoding a stream of frames performs **zero heap allocations in steady
//! state** — every buffer warms to its high-watermark and is reused. The
//! free [`encode`]/[`decode`] functions delegate to a thread-local instance
//! and stay the convenient entry points; bitstreams are byte-for-byte
//! identical either way.
//!
//! Encode internals (all proven bitstream-identical to the scalar
//! pre-SoA pipeline by the `bitstream_matches_pre_simd_reference_pipeline`
//! test and the bench harness's faithful-copy gate):
//!
//! - Quantization + Morton encoding run through [`super::simd`] (runtime
//!   backend dispatch, scalar fallback). For `depth <=`
//!   [`PACKED_MAX_DEPTH`] each point becomes a single packed
//!   `(code << 24) | rgb` word, halving radix-sort traffic; deeper trees
//!   fall back to scalar `(code, rgb)` pairs.
//! - The stable LSD radix sort is generic over the element type with a key
//!   extractor, up to 15-bit digits.
//! - The occupancy tree is built *flat*: one linear scan of the sorted
//!   unique codes per level collects each node's 8-bit child mask into a
//!   level-major byte array (no per-node allocations, no pointers), then an
//!   iterative pre-order cursor walk feeds the masks to the range coder in
//!   exactly the order the old recursive DFS did.
// Fixed-size index loops (angle dims, octree children, AP slots) read
// clearer than iterator chains in this module.
#![allow(clippy::needless_range_loop)]

use std::cell::RefCell;

use super::range::{BitModel, RangeDecoder, RangeEncoder};
use super::simd::{
    self, morton_decode, morton_encode, pack_color, Backend, QuantParams, COLOR_SHIFT,
    PACKED_MAX_DEPTH,
};
use crate::point::{Point, PointCloud, SoAPoints};
use volcast_geom::{Aabb, Vec3};
use volcast_util::obs;
use volcast_util::scratch::ScratchVec;

/// Codec parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecConfig {
    /// Geometry quantization: bits per axis (octree depth). The paper-scale
    /// human body at depth 10 gives ~2 mm voxels.
    pub depth: u32,
    /// Color quantization: bits per channel (1..=8).
    pub color_bits: u32,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            depth: 10,
            color_bits: 6,
        }
    }
}

/// Why a bitstream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The header is shorter than the fixed header size.
    TruncatedHeader,
    /// Bad magic bytes.
    BadMagic,
    /// Header fields are inconsistent (e.g. zero depth, absurd counts).
    InvalidHeader(&'static str),
    /// The entropy-coded payload is truncated or internally inconsistent
    /// with the header (e.g. it decodes fewer voxels than declared, or the
    /// range decoder ran off the end of the buffer). Bit flips that keep
    /// the payload self-consistent are *not* detectable here — integrity
    /// checks belong to the transport (see `volcast-net::wire` checksums).
    CorruptPayload(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::TruncatedHeader => write!(f, "truncated header"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::InvalidHeader(why) => write!(f, "invalid header: {why}"),
            CodecError::CorruptPayload(why) => write!(f, "corrupt payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded cloud: header + entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedCloud {
    /// Serialized bitstream (header + payload).
    pub data: Vec<u8>,
}

impl EncodedCloud {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Compression statistics for instrumentation and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    /// Points in the input cloud.
    pub input_points: usize,
    /// Unique voxels after quantization (= decoded point count).
    pub voxels: usize,
    /// Compressed size in bytes.
    pub bytes: usize,
    /// Compressed bits per input point.
    pub bits_per_point: f64,
}

const MAGIC: [u8; 4] = *b"VOCT";
const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 24;
pub(super) const MAX_DEPTH: u32 = 16;

/// A quantized point on the deep (`depth > PACKED_MAX_DEPTH`) path:
/// (morton code, packed RGB color). The shallow path packs both into one
/// `u64` instead (see [`super::simd`]), halving sort traffic.
type Voxel = (u64, u32);

/// Widest radix digit; chosen so a 30-bit key (depth 10) sorts in two
/// passes instead of three. Keys narrower than one digit still split
/// evenly (a 21-bit key sorts as two 11-bit passes, tables L1-resident).
const RADIX_MAX_DIGIT_BITS: u32 = 15;

/// Largest Morton key (`3 * depth` bits) deduplicated through the flat
/// occupancy bitmap instead of a sort: 2^24 bits = 2 MiB of persistent
/// encoder scratch at the cap, falling fast with depth (256 KiB at depth
/// 7). Beyond this the bitmap would dwarf the point data and the radix
/// sort takes over.
const BITMAP_MAX_KEY_BITS: u32 = 24;

/// Stable LSD radix sort by an extracted `u64` key, ping-ponging between
/// `items` and `tmp`. The digit width adapts to the key: passes are
/// minimized first (`ceil(key_bits / 15)`), then the bits are split evenly
/// across them. Passes whose digit is constant across all keys are skipped.
/// Any digit split of a stable LSD sort yields the same permutation (keys
/// ordered, ties in input order), so the downstream bitstream is unaffected
/// by the width choice. The sorted data always ends up back in `items`.
/// `counts` holds all pass histograms in one flat buffer (cleared and
/// resized per call; capacity is retained, so steady state allocates
/// nothing) and they are filled in a single read of the data.
fn radix_sort<T, K>(
    items: &mut Vec<T>,
    tmp: &mut Vec<T>,
    counts: &mut Vec<u32>,
    key_bits: u32,
    key: K,
) where
    T: Copy + Default,
    K: Fn(&T) -> u64,
{
    if items.len() < 2 {
        return;
    }
    tmp.clear();
    tmp.resize(items.len(), T::default());
    let passes = key_bits.div_ceil(RADIX_MAX_DIGIT_BITS);
    let digit_bits = key_bits.div_ceil(passes);
    let width = 1usize << digit_bits;
    let mask = (width - 1) as u64;
    counts.clear();
    counts.resize(passes as usize * width, 0);
    for it in items.iter() {
        let mut k = key(it);
        for table in counts.chunks_exact_mut(width) {
            table[(k & mask) as usize] += 1;
            k >>= digit_bits;
        }
    }
    for pass in 0..passes {
        let shift = pass * digit_bits;
        let counts = &mut counts[pass as usize * width..][..width];
        if counts.iter().any(|&c| c as usize == items.len()) {
            continue; // every key shares this digit; nothing to reorder
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let n = *c;
            *c = sum;
            sum += n;
        }
        for it in items.iter() {
            let digit = ((key(it) >> shift) & mask) as usize;
            tmp[counts[digit] as usize] = *it;
            counts[digit] += 1;
        }
        std::mem::swap(items, tmp);
    }
}

pub(super) struct Contexts {
    /// Occupancy bit contexts: [level][child_index].
    pub(super) occupancy: Vec<[BitModel; 8]>,
    /// Color bit contexts: [channel][bit position].
    pub(super) color: [[BitModel; 8]; 3],
}

impl Contexts {
    pub(super) fn new(depth: u32) -> Self {
        Contexts {
            occupancy: vec![[BitModel::new(); 8]; depth as usize],
            color: [[BitModel::new(); 8]; 3],
        }
    }

    /// Returns every model to the unbiased state, reusing the occupancy
    /// allocation (it only grows when a deeper tree is requested).
    pub(super) fn reset(&mut self, depth: u32) {
        self.occupancy.clear();
        self.occupancy.resize(depth as usize, [BitModel::new(); 8]);
        self.color = [[BitModel::new(); 8]; 3];
    }
}

/// Collects the flat occupancy tree: for each level `L` in `0..depth`, one
/// 8-bit child mask per distinct length-`L` Morton prefix, in prefix
/// (= first appearance in the sorted codes) order, appended level-major to
/// `masks`. `level_off[L]..level_off[L+1]` brackets level `L`'s masks.
fn build_masks(codes: &[u64], depth: u32, masks: &mut Vec<u8>, level_off: &mut [usize]) {
    build_masks_from(codes, depth, 0, masks, level_off)
}

/// [`build_masks`] restricted to absolute levels `from_level..depth` (the
/// layered encoder emits only the levels an enhancement layer spans).
/// `level_off` entries below `from_level` are left untouched; `codes` must
/// be non-empty sorted depth-`depth` Morton codes.
pub(super) fn build_masks_from(
    codes: &[u64],
    depth: u32,
    from_level: u32,
    masks: &mut Vec<u8>,
    level_off: &mut [usize],
) {
    masks.reserve(2 * codes.len());
    for level in from_level..depth {
        level_off[level as usize] = masks.len();
        let pshift = 3 * (depth - level); // bits below this level's prefix
        let cshift = pshift - 3;
        let mut prev_prefix = u64::MAX; // codes are < 2^48: safe sentinel
        let mut cur = 0u8;
        for &c in codes {
            let prefix = c >> pshift;
            let bit = 1u8 << ((c >> cshift) & 0b111);
            if prefix == prev_prefix {
                cur |= bit;
            } else {
                if prev_prefix != u64::MAX {
                    masks.push(cur);
                }
                prev_prefix = prefix;
                cur = bit;
            }
        }
        masks.push(cur);
    }
    level_off[depth as usize] = masks.len();
}

/// Entropy-codes the flat occupancy tree in pre-order. A pre-order walk
/// with children visited in ascending index order reaches the level-`L`
/// nodes in Morton-prefix order — exactly the order [`build_masks`] stored
/// them — so per-level cursors replace child pointers entirely. The
/// emitted bit sequence (and every adaptive context update) is identical
/// to the old recursive `encode_node` DFS.
fn emit_flat(
    rc: &mut RangeEncoder,
    ctx: &mut Contexts,
    masks: &[u8],
    level_off: &[usize],
    depth: u32,
) {
    fn emit_mask(rc: &mut RangeEncoder, models: &mut [BitModel; 8], mask: u8) {
        for child in 0..8usize {
            rc.encode_bit(&mut models[child], mask & (1 << child) != 0);
        }
    }
    let mut cursors = [0usize; MAX_DEPTH as usize];
    let root = masks[level_off[0]];
    emit_mask(rc, &mut ctx.occupancy[0], root);
    cursors[0] = 1;
    // Explicit DFS stack of (node level, unvisited-children mask); depth is
    // at most MAX_DEPTH, so it lives on the stack.
    let mut stack = [(0u8, 0u8); MAX_DEPTH as usize];
    stack[0] = (0, root);
    let mut sp = 1usize;
    while sp > 0 {
        let (level, rem) = stack[sp - 1];
        if rem == 0 {
            sp -= 1;
            continue;
        }
        stack[sp - 1].1 = rem & (rem - 1); // consume the lowest child first
        let child_level = level as usize + 1;
        if child_level as u32 == depth {
            continue; // children at the leaf level carry no mask
        }
        let m = masks[level_off[child_level] + cursors[child_level]];
        cursors[child_level] += 1;
        emit_mask(rc, &mut ctx.occupancy[child_level], m);
        stack[sp] = (child_level as u8, m);
        sp += 1;
    }
}

/// Encoder input: AoS or SoA, identical bitstreams (SoA conversion is
/// value-exact and `SoAPoints::bounds` mirrors `PointCloud::bounds`).
pub(super) enum Input<'a> {
    Aos(&'a [Point]),
    Soa(&'a SoAPoints),
}

impl Input<'_> {
    fn len(&self) -> usize {
        match self {
            Input::Aos(points) => points.len(),
            Input::Soa(soa) => soa.len(),
        }
    }
}

/// A reusable octree encoder owning all codec working memory.
///
/// One instance encodes a stream of frames with zero steady-state heap
/// allocations (beyond growth of the caller's output buffer): voxel
/// staging, radix scratch, code list, context models, and the range coder
/// are all retained across calls at their high-watermark sizes. Output is
/// byte-for-byte identical to the free [`encode`] function.
pub struct Encoder {
    /// Packed `(code << 24) | rgb` staging (shallow path).
    packed: ScratchVec<u64>,
    packed_tmp: ScratchVec<u64>,
    /// `(code, rgb)` staging (deep path, `depth > PACKED_MAX_DEPTH`).
    deep: ScratchVec<Voxel>,
    deep_tmp: ScratchVec<Voxel>,
    /// Flat radix histograms; cleared+resized per sort, capacity retained.
    radix_counts: Vec<u32>,
    /// Morton-space occupancy bitmap (shallow keys only, one bit per
    /// possible code; <= 2 MiB, see [`BITMAP_MAX_KEY_BITS`]).
    occ: Vec<u64>,
    /// Exclusive prefix popcounts over `occ` words: rank of the first code
    /// in each word among all occupied codes.
    word_rank: Vec<u32>,
    codes: ScratchVec<u64>,
    /// Per-unique-voxel color channel sums and merged point count.
    csums: ScratchVec<([u32; 3], u32)>,
    /// Level-major flat occupancy masks.
    masks: ScratchVec<u8>,
    ctx: Contexts,
    rc: RangeEncoder,
    backend: Backend,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an encoder with empty (cold) scratch buffers, using the
    /// process-wide [`simd::active`] backend.
    pub fn new() -> Self {
        Self::with_backend(simd::active())
    }

    /// Creates an encoder pinned to a specific SIMD backend (for tests and
    /// benchmarks; all backends produce byte-identical bitstreams).
    pub fn with_backend(backend: Backend) -> Self {
        Encoder {
            packed: ScratchVec::new("codec.scratch.packed"),
            packed_tmp: ScratchVec::new("codec.scratch.packed_tmp"),
            deep: ScratchVec::new("codec.scratch.deep"),
            deep_tmp: ScratchVec::new("codec.scratch.deep_tmp"),
            radix_counts: Vec::new(),
            occ: Vec::new(),
            word_rank: Vec::new(),
            codes: ScratchVec::new("codec.scratch.codes"),
            csums: ScratchVec::new("codec.scratch.csums"),
            masks: ScratchVec::new("codec.scratch.masks"),
            ctx: Contexts::new(0),
            rc: RangeEncoder::new(),
            backend,
        }
    }

    /// Encodes `cloud` into `out` (cleared first), returning statistics.
    ///
    /// # Panics
    /// If `cfg.depth` is outside `1..=16` or `cfg.color_bits` outside `1..=8`.
    pub fn encode_into(
        &mut self,
        cloud: &PointCloud,
        cfg: &CodecConfig,
        out: &mut Vec<u8>,
    ) -> CodecStats {
        let bounds = if cloud.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            cloud.bounds()
        };
        self.encode_common(Input::Aos(&cloud.points), bounds, cfg, out)
    }

    /// Encodes a SoA cloud into `out` (cleared first). The bitstream is
    /// byte-identical to [`Encoder::encode_into`] on the AoS equivalent.
    ///
    /// # Panics
    /// If `cfg.depth` is outside `1..=16` or `cfg.color_bits` outside `1..=8`.
    pub fn encode_soa_into(
        &mut self,
        soa: &SoAPoints,
        cfg: &CodecConfig,
        out: &mut Vec<u8>,
    ) -> CodecStats {
        let bounds = if soa.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            soa.bounds()
        };
        self.encode_common(Input::Soa(soa), bounds, cfg, out)
    }

    /// Quantizes, deduplicates, and color-merges `input` at `cfg.depth`,
    /// leaving the sorted unique Morton codes and per-voxel color sums
    /// readable via [`Encoder::voxelized`]. Shared by the single-stream
    /// emit path and the layered encoder; identical voxel sets either way.
    ///
    /// # Panics
    /// If `cfg.depth` is outside `1..=16` or `cfg.color_bits` outside `1..=8`.
    pub(super) fn voxelize(&mut self, input: Input<'_>, bounds: Aabb, cfg: &CodecConfig) {
        assert!(
            cfg.depth >= 1 && cfg.depth <= MAX_DEPTH,
            "depth must be in 1..=16"
        );
        assert!(
            cfg.color_bits >= 1 && cfg.color_bits <= 8,
            "color_bits must be in 1..=8"
        );

        let extent = bounds.extent().max_component().max(1e-6);
        let levels = 1u32 << cfg.depth;
        let scale = levels as f64 / extent;
        let q = QuantParams {
            min: [bounds.min.x, bounds.min.y, bounds.min.z],
            scale,
            max_q: levels - 1,
            depth: cfg.depth,
        };

        // Voxelize + sort + merge duplicate voxels (sorted => runs),
        // summing colors and counts so each voxel's color decodes to the
        // *average* (floor of sum/count) of its merged points.
        let codes = self.codes.begin();
        let csums = self.csums.begin();
        if cfg.depth <= PACKED_MAX_DEPTH {
            // Shallow path: one packed u64 per point through the SIMD
            // kernels. Stability of the radix sort keeps equal-code words
            // in input order; color sums are commutative anyway, so the
            // merged stream matches the pair path bit for bit.
            let packed = self.packed.begin();
            match input {
                Input::Aos(points) => {
                    simd::quantize_morton_points(self.backend, points, &q, packed)
                }
                Input::Soa(soa) => simd::quantize_morton_soa(self.backend, soa, &q, packed),
            }
            if 3 * cfg.depth <= BITMAP_MAX_KEY_BITS && !packed.is_empty() {
                // Bitmap dedup: the key space is small enough that a flat
                // occupancy bitmap replaces the sort entirely. Scanning the
                // bitmap yields the unique codes already in ascending
                // (Morton) order, and prefix popcounts give each point's
                // voxel slot in O(1), so color sums accumulate in input
                // order with no 16-byte scatter passes. Identical output to
                // sort+merge: the code list is the same sorted set, and the
                // per-voxel sums are commutative.
                let words = (1usize << (3 * cfg.depth)).div_ceil(64);
                self.occ.clear();
                self.occ.resize(words, 0);
                for &w in packed.iter() {
                    let code = (w >> COLOR_SHIFT) as usize;
                    self.occ[code >> 6] |= 1u64 << (code & 63);
                }
                self.word_rank.clear();
                self.word_rank.reserve(words);
                codes.reserve(packed.len().min(1usize << (3 * cfg.depth)));
                let mut total = 0u32;
                for (wi, &bits) in self.occ.iter().enumerate() {
                    self.word_rank.push(total);
                    let base = (wi as u64) << 6;
                    let mut b = bits;
                    while b != 0 {
                        codes.push(base | b.trailing_zeros() as u64);
                        b &= b - 1;
                    }
                    total += bits.count_ones();
                }
                csums.resize(codes.len(), ([0; 3], 0));
                for &w in packed.iter() {
                    let code = (w >> COLOR_SHIFT) as usize;
                    let below = self.occ[code >> 6] & ((1u64 << (code & 63)) - 1);
                    let slot = (self.word_rank[code >> 6] + below.count_ones()) as usize;
                    let c = (w & ((1 << COLOR_SHIFT) - 1)) as u32;
                    let e = &mut csums[slot];
                    e.0[0] += c & 0xFF;
                    e.0[1] += (c >> 8) & 0xFF;
                    e.0[2] += (c >> 16) & 0xFF;
                    e.1 += 1;
                }
            } else {
                radix_sort(
                    packed,
                    self.packed_tmp.begin(),
                    &mut self.radix_counts,
                    3 * cfg.depth,
                    |v| v >> COLOR_SHIFT,
                );
                codes.reserve(packed.len());
                csums.reserve(packed.len());
                let mut i = 0usize;
                while i < packed.len() {
                    let code = packed[i] >> COLOR_SHIFT;
                    let mut sums = [0u32; 3];
                    let mut count = 0u32;
                    while i < packed.len() && packed[i] >> COLOR_SHIFT == code {
                        let c = (packed[i] & ((1 << COLOR_SHIFT) - 1)) as u32;
                        sums[0] += c & 0xFF;
                        sums[1] += (c >> 8) & 0xFF;
                        sums[2] += (c >> 16) & 0xFF;
                        count += 1;
                        i += 1;
                    }
                    codes.push(code);
                    csums.push((sums, count));
                }
            }
        } else {
            // Deep path (depth 14..=16): codes no longer co-pack with the
            // color, so fall back to scalar (code, rgb) pairs.
            let deep = self.deep.begin();
            let m = q.max_q as i64;
            let quant = |pos: [f32; 3]| {
                let x = (((pos[0] as f64 - q.min[0]) * q.scale) as i64).clamp(0, m) as u32;
                let y = (((pos[1] as f64 - q.min[1]) * q.scale) as i64).clamp(0, m) as u32;
                let z = (((pos[2] as f64 - q.min[2]) * q.scale) as i64).clamp(0, m) as u32;
                morton_encode(x, y, z, cfg.depth)
            };
            match input {
                Input::Aos(points) => {
                    deep.extend(points.iter().map(|p| (quant(p.pos), pack_color(p.color))));
                }
                Input::Soa(soa) => {
                    deep.reserve(soa.len());
                    for i in 0..soa.len() {
                        deep.push((
                            quant([soa.xs()[i], soa.ys()[i], soa.zs()[i]]),
                            soa.colors_packed()[i],
                        ));
                    }
                }
            }
            radix_sort(
                deep,
                self.deep_tmp.begin(),
                &mut self.radix_counts,
                3 * cfg.depth,
                |v| v.0,
            );
            codes.reserve(deep.len());
            csums.reserve(deep.len());
            let mut i = 0usize;
            while i < deep.len() {
                let code = deep[i].0;
                let mut sums = [0u32; 3];
                let mut count = 0u32;
                while i < deep.len() && deep[i].0 == code {
                    let c = deep[i].1;
                    sums[0] += c & 0xFF;
                    sums[1] += (c >> 8) & 0xFF;
                    sums[2] += (c >> 16) & 0xFF;
                    count += 1;
                    i += 1;
                }
                codes.push(code);
                csums.push((sums, count));
            }
        }
    }

    /// The last [`Encoder::voxelize`] results: `(codes, color_sums)` —
    /// sorted unique Morton codes and per-voxel `([r, g, b] sums, count)`.
    pub(super) fn voxelized(&self) -> (&[u64], &[([u32; 3], u32)]) {
        (self.codes.get(), self.csums.get())
    }

    fn encode_common(
        &mut self,
        input: Input<'_>,
        bounds: Aabb,
        cfg: &CodecConfig,
        out: &mut Vec<u8>,
    ) -> CodecStats {
        out.clear();
        let input_points = input.len();
        self.voxelize(input, bounds, cfg);
        let extent = bounds.extent().max_component().max(1e-6);
        let Encoder {
            codes,
            csums,
            masks,
            ctx,
            rc,
            ..
        } = self;
        let codes = codes.get();
        let csums = csums.get();

        // Header.
        out.reserve(HEADER_LEN + codes.len());
        out.extend_from_slice(&MAGIC);
        out.push(cfg.depth as u8);
        out.push(cfg.color_bits as u8);
        out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        for v in [extent, 0.0, 0.0] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        debug_assert_eq!(out.len(), HEADER_LEN);

        // Payload.
        ctx.reset(cfg.depth);
        if !codes.is_empty() {
            let masks = masks.begin();
            let mut level_off = [0usize; MAX_DEPTH as usize + 1];
            build_masks(codes, cfg.depth, masks, &mut level_off);
            emit_flat(rc, ctx, masks, &level_off, cfg.depth);
            // Colors in Morton (leaf) order.
            let shift = 8 - cfg.color_bits;
            for &(sums, count) in csums.iter() {
                for ch in 0..3 {
                    let avg = sums[ch] / count;
                    rc.encode_bits(&mut ctx.color[ch], avg >> shift, cfg.color_bits);
                }
            }
        }
        rc.finish_into(out);

        let stats = CodecStats {
            input_points,
            voxels: codes.len(),
            bytes: out.len(),
            bits_per_point: if input_points == 0 {
                0.0
            } else {
                out.len() as f64 * 8.0 / input_points as f64
            },
        };
        if obs::enabled() {
            obs::inc("codec.clouds_encoded");
            obs::add("codec.input_points", stats.input_points as u64);
            obs::add("codec.voxels", stats.voxels as u64);
            obs::add("codec.bytes", stats.bytes as u64);
        }
        stats
    }

    /// Convenience wrapper allocating a fresh [`EncodedCloud`].
    pub fn encode(&mut self, cloud: &PointCloud, cfg: &CodecConfig) -> (EncodedCloud, CodecStats) {
        let mut data = Vec::new();
        let stats = self.encode_into(cloud, cfg, &mut data);
        (EncodedCloud { data }, stats)
    }
}

/// A reusable octree decoder owning all codec working memory.
///
/// The mirror of [`Encoder`]: code lists and context models persist across
/// calls, so decoding a stream of frames into a reused [`PointCloud`]
/// allocates nothing in steady state.
pub struct Decoder {
    codes: ScratchVec<u64>,
    ctx: Contexts,
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder {
    /// Creates a decoder with empty (cold) scratch buffers.
    pub fn new() -> Self {
        Decoder {
            codes: ScratchVec::new("codec.scratch.dec_codes"),
            ctx: Contexts::new(0),
        }
    }

    /// Decodes `encoded`, **appending** the voxel points to `out` (for
    /// merging multi-cell streams). Returns the number of points appended.
    pub fn decode_append(
        &mut self,
        encoded: &EncodedCloud,
        out: &mut PointCloud,
    ) -> Result<usize, CodecError> {
        let data = &encoded.data;
        if data.len() < HEADER_LEN {
            return Err(CodecError::TruncatedHeader);
        }
        if data[0..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let depth = data[4] as u32;
        let color_bits = data[5] as u32;
        if depth == 0 || depth > MAX_DEPTH {
            return Err(CodecError::InvalidHeader("depth out of range"));
        }
        if color_bits == 0 || color_bits > 8 {
            return Err(CodecError::InvalidHeader("color_bits out of range"));
        }
        let count = u32::from_le_bytes(data[6..10].try_into().unwrap()) as usize;
        let f32_at = |off: usize| -> f64 {
            f32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as f64
        };
        let min = Vec3::new(f32_at(10), f32_at(14), f32_at(18));
        let extent = f32_at(22);
        if !(extent.is_finite() && extent > 0.0) && count > 0 {
            return Err(CodecError::InvalidHeader("bad extent"));
        }
        if count == 0 {
            obs::inc("codec.clouds_decoded");
            return Ok(0);
        }

        // A depth-d tree holds at most 8^d leaves; a count beyond that can
        // only come from a corrupted or hostile header.
        if depth < 11 && count as u64 > 1u64 << (3 * depth) {
            return Err(CodecError::InvalidHeader("count exceeds tree capacity"));
        }

        let levels = 1u32 << depth;
        let voxel = extent / levels as f64;

        self.ctx.reset(depth);
        let mut dec = RangeDecoder::new(&data[HEADER_LEN..]);
        let codes = self.codes.begin();
        // `count` is attacker-controlled (up to u32::MAX = 32 GiB of u64s);
        // cap the up-front reservation and let a genuine large stream grow
        // amortized. `decode_node` never pushes past `count` either way.
        codes.reserve(count.min(1 << 22));
        decode_node(&mut dec, &mut self.ctx, 0u64, 0, depth, codes, count);
        if codes.len() != count {
            return Err(CodecError::CorruptPayload(
                "payload decodes fewer voxels than the header declares",
            ));
        }
        if dec.is_exhausted() {
            return Err(CodecError::CorruptPayload(
                "range decoder ran past the end of the occupancy stream",
            ));
        }

        let appended_from = out.points.len();
        out.points.reserve(codes.len());
        let shift = 8 - color_bits;
        // Reconstruct quantized colors at bucket centers.
        let dequant = |v: u32| -> u8 {
            let v = (v << shift) + ((1u32 << shift) >> 1);
            v.min(255) as u8
        };
        for &code in codes.iter() {
            let (x, y, z) = morton_decode(code, depth);
            let pos = min
                + Vec3::new(
                    (x as f64 + 0.5) * voxel,
                    (y as f64 + 0.5) * voxel,
                    (z as f64 + 0.5) * voxel,
                );
            let r = dec.decode_bits(&mut self.ctx.color[0], color_bits);
            let g = dec.decode_bits(&mut self.ctx.color[1], color_bits);
            let b = dec.decode_bits(&mut self.ctx.color[2], color_bits);
            out.points.push(Point::new(
                [pos.x as f32, pos.y as f32, pos.z as f32],
                [dequant(r), dequant(g), dequant(b)],
            ));
        }
        if dec.is_exhausted() {
            // Truncation hit inside the color stream: the positions were
            // fine but the colors are garbage. Roll back the append so the
            // caller never observes a half-decoded cloud.
            out.points.truncate(appended_from);
            return Err(CodecError::CorruptPayload(
                "range decoder ran past the end of the color stream",
            ));
        }
        obs::inc("codec.clouds_decoded");
        Ok(codes.len())
    }

    /// Decodes `encoded` into `out` (cleared first). Returns the decoded
    /// point count.
    pub fn decode_into(
        &mut self,
        encoded: &EncodedCloud,
        out: &mut PointCloud,
    ) -> Result<usize, CodecError> {
        out.points.clear();
        self.decode_append(encoded, out)
    }
}

thread_local! {
    static THREAD_ENCODER: RefCell<Encoder> = RefCell::new(Encoder::new());
    static THREAD_DECODER: RefCell<Decoder> = RefCell::new(Decoder::new());
}

/// Encodes a cloud. Returns the bitstream and compression statistics.
///
/// Delegates to a thread-local [`Encoder`], so repeated calls on one thread
/// reuse the codec's working memory; only the returned bitstream allocates.
pub fn encode(cloud: &PointCloud, cfg: &CodecConfig) -> (EncodedCloud, CodecStats) {
    THREAD_ENCODER.with(|enc| enc.borrow_mut().encode(cloud, cfg))
}

/// Decodes a bitstream back into a voxelized point cloud.
///
/// Delegates to a thread-local [`Decoder`]; only the returned cloud
/// allocates.
pub fn decode(encoded: &EncodedCloud) -> Result<PointCloud, CodecError> {
    THREAD_DECODER.with(|dec| {
        let mut cloud = PointCloud::new();
        dec.borrow_mut().decode_into(encoded, &mut cloud)?;
        Ok(cloud)
    })
}

fn decode_node(
    dec: &mut RangeDecoder,
    ctx: &mut Contexts,
    prefix: u64,
    depth_from_root: u32,
    total_depth: u32,
    out: &mut Vec<u64>,
    limit: usize,
) {
    let mut occ = [false; 8];
    for (child, o) in occ.iter_mut().enumerate() {
        *o = dec.decode_bit(&mut ctx.occupancy[depth_from_root as usize][child]);
    }
    for (child, &o) in occ.iter().enumerate() {
        if !o {
            continue;
        }
        if out.len() >= limit {
            // Corrupt stream protection: never exceed the declared count.
            return;
        }
        let code = (prefix << 3) | child as u64;
        if depth_from_root + 1 == total_depth {
            out.push(code);
        } else {
            decode_node(dec, ctx, code, depth_from_root + 1, total_depth, out, limit);
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(CodecConfig { depth, color_bits });
volcast_util::impl_json_struct!(EncodedCloud { data });
volcast_util::impl_json_struct!(CodecStats {
    input_points,
    voxels,
    bytes,
    bits_per_point
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticBody;

    /// Bit-by-bit reference Morton implementations (the original loop
    /// formulations) pinning the magic-mask versions.
    fn morton_encode_ref(x: u32, y: u32, z: u32, depth: u32) -> u64 {
        let mut code = 0u64;
        for i in (0..depth).rev() {
            code = (code << 3)
                | (((x >> i) & 1) as u64) << 2
                | (((y >> i) & 1) as u64) << 1
                | ((z >> i) & 1) as u64;
        }
        code
    }

    fn morton_decode_ref(code: u64, depth: u32) -> (u32, u32, u32) {
        let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
        for i in 0..depth {
            let group = (code >> (3 * i)) & 0b111;
            x |= (((group >> 2) & 1) as u32) << i;
            y |= (((group >> 1) & 1) as u32) << i;
            z |= ((group & 1) as u32) << i;
        }
        (x, y, z)
    }

    /// The pre-SoA/SIMD encode pipeline (PR 4 shape): scalar f64
    /// quantization, stable comparison sort of (code, color) pairs, run
    /// merge, and the recursive context-coded DFS. Every new-path bitstream
    /// must match this byte for byte.
    fn reference_encode(cloud: &PointCloud, cfg: &CodecConfig) -> Vec<u8> {
        fn ref_encode_node(
            enc: &mut RangeEncoder,
            ctx: &mut Contexts,
            codes: &[u64],
            depth_from_root: u32,
            total_depth: u32,
        ) {
            let level_shift = 3 * (total_depth - depth_from_root - 1);
            let mut ranges: [(usize, usize); 8] = [(0, 0); 8];
            let mut start = 0usize;
            for child in 0..8u64 {
                let end = start
                    + codes[start..]
                        .iter()
                        .take_while(|&&c| (c >> level_shift) & 0b111 == child)
                        .count();
                ranges[child as usize] = (start, end);
                start = end;
            }
            for child in 0..8usize {
                enc.encode_bit(
                    &mut ctx.occupancy[depth_from_root as usize][child],
                    ranges[child].1 > ranges[child].0,
                );
            }
            if depth_from_root + 1 < total_depth {
                for &(s, e) in &ranges {
                    if e > s {
                        ref_encode_node(enc, ctx, &codes[s..e], depth_from_root + 1, total_depth);
                    }
                }
            }
        }

        let bounds = if cloud.is_empty() {
            Aabb::new(Vec3::ZERO, Vec3::ZERO)
        } else {
            cloud.bounds()
        };
        let extent = bounds.extent().max_component().max(1e-6);
        let levels = 1u32 << cfg.depth;
        let scale = levels as f64 / extent;
        let m = (levels - 1) as i64;
        let mut voxels: Vec<(u64, u32)> = cloud
            .points
            .iter()
            .map(|p| {
                let x = (((p.pos[0] as f64 - bounds.min.x) * scale) as i64).clamp(0, m) as u32;
                let y = (((p.pos[1] as f64 - bounds.min.y) * scale) as i64).clamp(0, m) as u32;
                let z = (((p.pos[2] as f64 - bounds.min.z) * scale) as i64).clamp(0, m) as u32;
                (morton_encode(x, y, z, cfg.depth), pack_color(p.color))
            })
            .collect();
        voxels.sort_by_key(|v| v.0); // stable
        let mut codes = Vec::new();
        let mut csums: Vec<([u32; 3], u32)> = Vec::new();
        let mut i = 0usize;
        while i < voxels.len() {
            let code = voxels[i].0;
            let mut sums = [0u32; 3];
            let mut count = 0u32;
            while i < voxels.len() && voxels[i].0 == code {
                let c = voxels[i].1;
                sums[0] += c & 0xFF;
                sums[1] += (c >> 8) & 0xFF;
                sums[2] += (c >> 16) & 0xFF;
                count += 1;
                i += 1;
            }
            codes.push(code);
            csums.push((sums, count));
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(cfg.depth as u8);
        out.push(cfg.color_bits as u8);
        out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        for v in [bounds.min.x, bounds.min.y, bounds.min.z] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        for v in [extent, 0.0, 0.0] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        let mut rc = RangeEncoder::new();
        let mut ctx = Contexts::new(cfg.depth);
        if !codes.is_empty() {
            ref_encode_node(&mut rc, &mut ctx, &codes, 0, cfg.depth);
            let shift = 8 - cfg.color_bits;
            for &(sums, count) in &csums {
                for ch in 0..3 {
                    let avg = sums[ch] / count;
                    rc.encode_bits(&mut ctx.color[ch], avg >> shift, cfg.color_bits);
                }
            }
        }
        rc.finish_into(&mut out);
        out
    }

    #[test]
    fn morton_round_trip() {
        for depth in [1u32, 4, 10, 16] {
            let m = (1u32 << depth) - 1;
            for (x, y, z) in [(0, 0, 0), (1 & m, 2 & m, 3 & m), (m, m, m), (m / 2, 0, m)] {
                let code = morton_encode(x, y, z, depth);
                assert_eq!(morton_decode(code, depth), (x, y, z));
            }
        }
    }

    #[test]
    fn morton_magic_masks_match_bit_loop_reference() {
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0xC0DE);
        for depth in [1u32, 5, 8, 13, 16] {
            let m = (1u32 << depth) - 1;
            for _ in 0..200 {
                let (x, y, z) = (
                    rng.gen_range(0..=m as u64) as u32,
                    rng.gen_range(0..=m as u64) as u32,
                    rng.gen_range(0..=m as u64) as u32,
                );
                let code = morton_encode(x, y, z, depth);
                assert_eq!(code, morton_encode_ref(x, y, z, depth));
                assert_eq!(morton_decode(code, depth), morton_decode_ref(code, depth));
            }
        }
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0x5047);
        for (n, key_bits) in [
            (0usize, 30u32),
            (1, 3),
            (17, 12),
            (1000, 21),
            (1000, 30),
            (5000, 48),
        ] {
            let voxels: Vec<Voxel> = (0..n)
                .map(|i| {
                    let code = rng.gen_range(0..1u64 << key_bits.min(63));
                    (code, i as u32)
                })
                .collect();
            let mut expected = voxels.clone();
            expected.sort_by_key(|v| v.0); // stable comparison sort
            let mut got = voxels;
            let mut tmp = Vec::new();
            let mut counts = Vec::new();
            radix_sort(&mut got, &mut tmp, &mut counts, key_bits, |v: &Voxel| v.0);
            assert_eq!(got, expected, "n={n} bits={key_bits}");
        }
    }

    #[test]
    fn radix_sort_packed_words_matches_comparison_sort() {
        // The shallow path sorts packed (code << 24 | color) words by the
        // code field only: ties must stay in input order so the merge sees
        // the same color sequence as the pair path.
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0xBEEF);
        let words: Vec<u64> = (0..4000)
            .map(|i| (rng.gen_range(0..1u64 << 21) << COLOR_SHIFT) | (i as u64 & 0xFF_FFFF))
            .collect();
        let mut expected = words.clone();
        expected.sort_by_key(|w| w >> COLOR_SHIFT);
        let mut got = words;
        let mut tmp = Vec::new();
        let mut counts = Vec::new();
        radix_sort(&mut got, &mut tmp, &mut counts, 21, |w: &u64| {
            w >> COLOR_SHIFT
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn bitstream_matches_pre_simd_reference_pipeline() {
        // The hard gate for the SoA/SIMD rewrite: every path (AoS, SoA,
        // forced-scalar backend; shallow packed and deep pair pipelines)
        // must reproduce the old encoder's bytes exactly.
        let body = SyntheticBody::default();
        for (depth, n) in [
            (1u32, 700usize),
            (4, 5_000),
            (7, 20_000),
            (10, 20_000),
            (13, 6_000), // deepest packed-word depth
            (14, 6_000), // shallowest pair-path depth
            (16, 6_000),
        ] {
            let cloud = body.frame(depth as u64, n);
            let cfg = CodecConfig {
                depth,
                color_bits: 6,
            };
            let expected = reference_encode(&cloud, &cfg);
            let mut got = Vec::new();
            Encoder::new().encode_into(&cloud, &cfg, &mut got);
            assert_eq!(got, expected, "depth {depth} aos");
            let soa = SoAPoints::from_cloud(&cloud);
            let mut got_soa = Vec::new();
            Encoder::new().encode_soa_into(&soa, &cfg, &mut got_soa);
            assert_eq!(got_soa, expected, "depth {depth} soa");
            let mut got_scalar = Vec::new();
            Encoder::with_backend(Backend::Scalar).encode_into(&cloud, &cfg, &mut got_scalar);
            assert_eq!(got_scalar, expected, "depth {depth} forced scalar");
        }
    }

    #[test]
    fn morton_order_groups_spatially() {
        // The first octant (low halves) must sort before the last octant.
        let depth = 4;
        let a = morton_encode(0, 0, 0, depth);
        let b = morton_encode(7, 7, 7, depth);
        let c = morton_encode(8, 8, 8, depth);
        assert!(a < b && b < c);
    }

    #[test]
    fn empty_cloud_round_trip() {
        let (enc, stats) = encode(&PointCloud::new(), &CodecConfig::default());
        assert_eq!(stats.voxels, 0);
        let dec = decode(&enc).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn single_point_round_trip() {
        let cloud = PointCloud::from_points(vec![Point::new([1.0, 2.0, 3.0], [200, 100, 50])]);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.voxels, 1);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 1);
        // Degenerate bounds: extent clamp keeps the voxel near the point.
        let p = dec.points[0].position();
        assert!((p - Vec3::new(1.0, 2.0, 3.0)).norm() < 0.01, "{p}");
    }

    #[test]
    fn duplicate_voxels_average_colors() {
        // Two points in the same voxel: the decoded color must be the
        // floor of the channel-wise mean (not last-write-wins).
        let cloud = PointCloud::from_points(vec![
            Point::new([0.0, 0.0, 0.0], [10, 20, 30]),
            Point::new([0.0, 0.0, 0.0], [13, 21, 33]),
            Point::new([1.0, 1.0, 1.0], [0, 0, 0]), // non-degenerate bounds
        ]);
        let cfg = CodecConfig {
            depth: 4,
            color_bits: 8, // lossless channel: decoded == stored average
        };
        let (enc, stats) = encode(&cloud, &cfg);
        assert_eq!(stats.voxels, 2);
        let dec = decode(&enc).unwrap();
        let merged = dec
            .points
            .iter()
            .find(|p| p.position().norm() < 0.2)
            .expect("merged voxel near origin");
        // floor((10+13)/2), floor((20+21)/2), floor((30+33)/2)
        assert_eq!(merged.color, [11, 20, 31]);
    }

    #[test]
    fn body_round_trip_geometry_error_bounded() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let cfg = CodecConfig {
            depth: 9,
            color_bits: 6,
        };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), stats.voxels);
        // Voxel size = extent / 2^9; max quantization error = voxel * sqrt(3)/2.
        let extent = cloud.bounds().extent().max_component();
        let max_err = extent / 512.0 * 3f64.sqrt() / 2.0 + 1e-6;
        // Every decoded point must be within max_err of some original point.
        // (Spot-check a sample for test speed.)
        for d in dec.points.iter().step_by(97) {
            let dp = d.position();
            let best = cloud
                .points
                .iter()
                .map(|o| o.position().distance(dp))
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= max_err,
                "decoded point {dp} off by {best} > {max_err}"
            );
        }
    }

    #[test]
    fn deep_tree_round_trip() {
        // The pair path (depth > PACKED_MAX_DEPTH) must round-trip too.
        let cloud = SyntheticBody::default().frame(0, 3_000);
        let cfg = CodecConfig {
            depth: 15,
            color_bits: 6,
        };
        let (enc, stats) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), stats.voxels);
        assert!(stats.voxels > 0);
    }

    #[test]
    fn reused_encoder_decoder_match_fresh_instances() {
        let body = SyntheticBody::default();
        let cfg = CodecConfig {
            depth: 9,
            color_bits: 5,
        };
        let mut reused_enc = Encoder::new();
        let mut reused_dec = Decoder::new();
        let mut stream = Vec::new();
        let mut decoded = PointCloud::new();
        for frame in 0..100u64 {
            let cloud = body.frame(frame, 1_500);
            let fresh = Encoder::new().encode(&cloud, &cfg).0;
            let stats = reused_enc.encode_into(&cloud, &cfg, &mut stream);
            assert_eq!(stream, fresh.data, "frame {frame} bitstream");
            let n = reused_dec
                .decode_into(
                    &EncodedCloud {
                        data: stream.clone(),
                    },
                    &mut decoded,
                )
                .unwrap();
            assert_eq!(n, stats.voxels);
            let mut fresh_cloud = PointCloud::new();
            Decoder::new()
                .decode_into(&fresh, &mut fresh_cloud)
                .unwrap();
            assert_eq!(decoded.points, fresh_cloud.points, "frame {frame} points");
        }
    }

    #[test]
    fn compression_is_effective() {
        let cloud = SyntheticBody::default().frame(0, 50_000);
        let (_, stats) = encode(&cloud, &CodecConfig::default());
        // Raw: 12 bytes position + 3 bytes color = 120 bits/point.
        assert!(
            stats.bits_per_point < 40.0,
            "bits per point {}",
            stats.bits_per_point
        );
        assert!(stats.bits_per_point > 2.0);
    }

    #[test]
    fn deeper_quantization_costs_more_bits() {
        let cloud = SyntheticBody::default().frame(0, 20_000);
        let (_, s8) = encode(
            &cloud,
            &CodecConfig {
                depth: 8,
                color_bits: 6,
            },
        );
        let (_, s11) = encode(
            &cloud,
            &CodecConfig {
                depth: 11,
                color_bits: 6,
            },
        );
        assert!(s11.bytes > s8.bytes);
    }

    #[test]
    fn color_fidelity_within_quantization() {
        let cloud = PointCloud::from_points(vec![
            Point::new([0.0, 0.0, 0.0], [255, 0, 128]),
            Point::new([1.0, 1.0, 1.0], [0, 255, 64]),
        ]);
        let cfg = CodecConfig {
            depth: 8,
            color_bits: 6,
        };
        let (enc, _) = encode(&cloud, &cfg);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        let step = 1u32 << (8 - cfg.color_bits); // 4
        for d in &dec.points {
            let orig = cloud
                .points
                .iter()
                .min_by(|a, b| {
                    let da = a.position().distance(d.position());
                    let db = b.position().distance(d.position());
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            for ch in 0..3 {
                let err = (d.color[ch] as i32 - orig.color[ch] as i32).unsigned_abs();
                assert!(err <= step, "channel {ch} err {err}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        assert_eq!(
            decode(&EncodedCloud {
                data: vec![1, 2, 3]
            }),
            Err(CodecError::TruncatedHeader)
        );
        let mut bad_magic = vec![0u8; HEADER_LEN + 8];
        bad_magic[0..4].copy_from_slice(b"NOPE");
        assert_eq!(
            decode(&EncodedCloud { data: bad_magic }),
            Err(CodecError::BadMagic)
        );
        // Bad depth.
        let mut bad_depth = vec![0u8; HEADER_LEN + 8];
        bad_depth[0..4].copy_from_slice(&MAGIC);
        bad_depth[4] = 0;
        bad_depth[5] = 6;
        assert!(matches!(
            decode(&EncodedCloud { data: bad_depth }),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn corrupt_payload_does_not_panic_or_overrun() {
        let cloud = SyntheticBody::default().frame(0, 2_000);
        let (mut enc, _) = encode(&cloud, &CodecConfig::default());
        // Truncate the payload savagely: an error, never a panic, and
        // never more voxels than the header declares.
        enc.data.truncate(HEADER_LEN + 8);
        assert!(matches!(decode(&enc), Err(CodecError::CorruptPayload(_))));
    }

    #[test]
    fn truncated_payloads_error_and_leave_output_untouched() {
        let cloud = SyntheticBody::default().frame(1, 2_000);
        let (enc, _) = encode(&cloud, &CodecConfig::default());
        let full = decode(&enc).unwrap();
        let mut dec = Decoder::new();
        // Cut the stream at a spread of points across both the occupancy
        // and color regions; every cut must surface as CorruptPayload and
        // must not leave partial points behind in the output cloud.
        let payload_len = enc.data.len() - HEADER_LEN;
        for i in 0..32 {
            let cut = HEADER_LEN + payload_len * i / 32;
            let truncated = EncodedCloud {
                data: enc.data[..cut].to_vec(),
            };
            let mut out = PointCloud::new();
            out.points.push(full.points[0]);
            let err = dec.decode_append(&truncated, &mut out).unwrap_err();
            assert!(
                matches!(err, CodecError::CorruptPayload(_)),
                "cut at {cut}: {err}"
            );
            assert_eq!(out.len(), 1, "cut at {cut} leaked partial points");
        }
    }

    #[test]
    fn bit_flipped_payloads_never_panic() {
        let cloud = SyntheticBody::default().frame(2, 2_000);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        let mut rng = volcast_util::rng::Rng::seed_from_u64(0x0c7_f11b);
        let mut dec = Decoder::new();
        for _ in 0..200 {
            let mut mutated = enc.data.clone();
            let byte = rng.gen_range(HEADER_LEN as u64..mutated.len() as u64) as usize;
            let bit = rng.gen_range(0..8u32);
            mutated[byte] ^= 1 << bit;
            let mut out = PointCloud::new();
            // A flip that keeps the stream self-consistent may still decode
            // Ok (integrity is the wire layer's job); what is forbidden is
            // a panic or exceeding the declared voxel budget.
            if let Ok(n) = dec.decode_append(&EncodedCloud { data: mutated }, &mut out) {
                assert!(n <= stats.voxels);
            }
        }
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        // depth 5 caps the tree at 8^5 = 32768 leaves; a header claiming
        // u32::MAX voxels must be rejected before any proportional reserve.
        let mut data = vec![0u8; HEADER_LEN + 16];
        data[0..4].copy_from_slice(&MAGIC);
        data[4] = 5;
        data[5] = 6;
        data[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        data[22..26].copy_from_slice(&1.0f32.to_le_bytes());
        assert_eq!(
            decode(&EncodedCloud { data }),
            Err(CodecError::InvalidHeader("count exceeds tree capacity"))
        );
    }

    #[test]
    fn stats_are_consistent() {
        let cloud = SyntheticBody::default().frame(3, 10_000);
        let (enc, stats) = encode(&cloud, &CodecConfig::default());
        assert_eq!(stats.input_points, 10_000);
        assert_eq!(stats.bytes, enc.size_bytes());
        assert!(stats.voxels <= stats.input_points);
        assert!((stats.bits_per_point - enc.size_bytes() as f64 * 8.0 / 10_000.0).abs() < 1e-9);
    }
}

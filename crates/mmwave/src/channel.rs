//! Geometric 60 GHz indoor channel: LoS + image-method reflections +
//! human blockage.
//!
//! This is the Remcom Wireless InSite substitute (`DESIGN.md` §1): for a
//! rectangular room we enumerate the line-of-sight path and the first-order
//! specular reflections off the four walls and the ceiling (floor
//! reflections at 60 GHz are usually carpet-absorbed; included optionally).
//! Every path carries free-space loss, oxygen absorption, a per-reflection
//! loss, and a body-blockage penalty if any blocker cylinder intersects it.
//! RSS for a beam is the non-coherent power sum over paths weighted by the
//! beam's gain toward each path's departure direction.

use crate::array::{AntennaWeights, PlanarArray, SteeringSample};
use crate::calib;
use volcast_geom::{Ray, Vec3};

/// A rectangular room: `x in [-w/2, w/2]`, `y in [0, h]`, `z in [-d/2, d/2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Room {
    /// Width (x extent) in meters.
    pub width: f64,
    /// Height (y extent) in meters.
    pub height: f64,
    /// Depth (z extent) in meters.
    pub depth: f64,
    /// Include the floor reflection (off by default: carpet absorbs).
    pub floor_reflection: bool,
}

impl Default for Room {
    /// An 8 x 3 x 8 m lab/classroom.
    fn default() -> Self {
        Room {
            width: 8.0,
            height: 3.0,
            depth: 8.0,
            floor_reflection: false,
        }
    }
}

/// A standing human blocker: vertical cylinder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blocker {
    /// Cylinder center (x, z); y ignored.
    pub center: Vec3,
    /// Radius in meters.
    pub radius: f64,
    /// Height in meters (from the floor).
    pub height: f64,
}

impl Blocker {
    /// A typical standing person at `center` (head position or body center).
    pub fn person(center: Vec3) -> Self {
        Blocker {
            center,
            radius: 0.25,
            height: 1.8,
        }
    }
}

/// One propagation path from the AP to a receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// First hop target from the TX: the receiver itself (LoS) or the
    /// specular reflection point on a surface.
    pub via: Vec3,
    /// Total path length in meters.
    pub length: f64,
    /// Fixed extra loss (reflection), dB.
    pub extra_loss_db: f64,
    /// `true` for the direct path.
    pub is_los: bool,
}

/// A receiver prepared for repeated beam evaluations: paths enumerated,
/// blockage resolved, and the steering vector toward each path sampled —
/// all hoisted out of the per-beam loop. [`PreparedRx::rss_dbm`] then costs
/// one complex dot product per path.
///
/// Built by [`Channel::prepare_rx`] for a fixed `(receiver, blockers)`
/// pair; it reproduces [`Channel::rss_dbm`] bit-for-bit for that pair. A
/// codebook sweep (48 sectors × 6 paths) goes from 48 path enumerations and
/// blockage tests to one of each.
#[derive(Debug, Clone)]
pub struct PreparedRx {
    /// Per usable path: steering toward its departure point and the total
    /// loss in dB (propagation + reflection + blockage).
    paths: Vec<(SteeringSample, f64)>,
}

impl PreparedRx {
    /// RSS (dBm) for transmit beam `weights` — identical to
    /// [`Channel::rss_dbm`] at the prepared receiver and blocker set.
    pub fn rss_dbm(&self, weights: &AntennaWeights) -> f64 {
        let mut total_mw = 0.0f64;
        for (sample, loss_db) in &self.paths {
            let gain = sample.gain(weights);
            if gain <= 0.0 {
                continue;
            }
            let rx_dbm = calib::TX_POWER_DBM + 10.0 * gain.log10() + calib::RX_GAIN_DBI - loss_db;
            total_mw += calib::dbm_to_mw(rx_dbm);
        }
        calib::mw_to_dbm(total_mw)
    }
}

/// The channel: a room plus the AP's planar array.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Room geometry.
    pub room: Room,
    /// AP antenna array (position + orientation included).
    pub array: PlanarArray,
}

impl Channel {
    /// Creates a channel with the array mounted in the room.
    pub fn new(room: Room, array: PlanarArray) -> Self {
        Channel { room, array }
    }

    /// The default experimental setup: 8 x 3 x 8 m room, 8x4 array mounted
    /// high on the +z wall, tilted slightly down toward the room center.
    pub fn default_setup() -> Self {
        let room = Room::default();
        let pos = Vec3::new(0.0, 2.6, room.depth / 2.0 - 0.1);
        let facing = Vec3::new(0.0, 1.3, 0.0) - pos; // toward room center
        Channel::new(room, PlanarArray::airfide(pos, facing))
    }

    /// Enumerates propagation paths from the AP to `rx`: LoS plus
    /// first-order reflections via the image method.
    pub fn paths(&self, rx: Vec3) -> Vec<Path> {
        let mut out = Vec::with_capacity(6);
        self.paths_into(rx, &mut out);
        out
    }

    /// [`Channel::paths`] into a caller-owned buffer (cleared first) — the
    /// single enumeration program, shared with the allocation-free sweep
    /// engine so path lists are bit-identical however they are produced.
    pub fn paths_into(&self, rx: Vec3, out: &mut Vec<Path>) {
        out.clear();
        let tx = self.array.position;
        out.push(Path {
            via: rx,
            length: tx.distance(rx),
            extra_loss_db: 0.0,
            is_los: true,
        });

        let (hw, hd) = (self.room.width / 2.0, self.room.depth / 2.0);
        // (axis, plane coordinate) for each reflecting surface.
        let surfaces = [
            (0usize, -hw),
            (0, hw),
            (2, -hd),
            (2, hd),
            (1, self.room.height),
        ];
        let floor = self.room.floor_reflection.then_some((1usize, 0.0));
        for (axis, plane) in surfaces.into_iter().chain(floor) {
            if let Some(p) = self.reflection_path(tx, rx, axis, plane) {
                out.push(p);
            }
        }
    }

    /// Image-method reflection off the plane `coord[axis] = plane`.
    fn reflection_path(&self, tx: Vec3, rx: Vec3, axis: usize, plane: f64) -> Option<Path> {
        // Mirror the receiver across the plane.
        let mut img = rx;
        match axis {
            0 => img.x = 2.0 * plane - rx.x,
            1 => img.y = 2.0 * plane - rx.y,
            _ => img.z = 2.0 * plane - rx.z,
        }
        let total = tx.distance(img);
        if total < 1e-9 {
            return None;
        }
        // Reflection point: where TX->image crosses the plane.
        let dir = (img - tx) / total;
        let denom = dir[axis];
        if denom.abs() < 1e-9 {
            return None;
        }
        let t = (plane - tx[axis]) / denom;
        if t <= 0.0 || t >= total {
            return None; // reflection point not between TX and image
        }
        let via = tx + dir * t;
        // The bounce point must lie on the actual wall area.
        if !self.contains_on_surface(via) {
            return None;
        }
        Some(Path {
            via,
            length: total,
            extra_loss_db: calib::REFLECTION_LOSS_DB,
            is_los: false,
        })
    }

    fn contains_on_surface(&self, p: Vec3) -> bool {
        let (hw, hd) = (self.room.width / 2.0, self.room.depth / 2.0);
        let eps = 1e-6;
        p.x >= -hw - eps
            && p.x <= hw + eps
            && p.y >= -eps
            && p.y <= self.room.height + eps
            && p.z >= -hd - eps
            && p.z <= hd + eps
    }

    /// `true` when any blocker cylinder interrupts the segment `a -> b`.
    ///
    /// A blocker whose cylinder axis stands (horizontally) on the segment's
    /// receiving endpoint `b` is treated as the receiver's own body and
    /// ignored — their device is above their shoulders, not behind their
    /// torso. This lets callers pass the full room population without
    /// manually excluding each receiver.
    fn segment_blocked(&self, a: Vec3, b: Vec3, blockers: &[Blocker]) -> bool {
        let Some(ray) = Ray::between(a, b) else {
            return false;
        };
        let dist = a.distance(b);
        blockers.iter().any(|bl| {
            // Own-body exclusion: axis within the cylinder radius of the
            // receiving endpoint.
            let horiz = ((bl.center.x - b.x).powi(2) + (bl.center.z - b.z).powi(2)).sqrt();
            if horiz <= bl.radius + 1e-6 {
                return false;
            }
            match ray.intersect_vertical_cylinder(
                bl.center.x,
                bl.center.z,
                bl.radius,
                0.0,
                bl.height,
            ) {
                Some(t) => t > 1e-6 && t < dist - bl.radius.min(dist * 0.5),
                None => false,
            }
        })
    }

    /// Received signal strength (dBm) at `rx` for transmit beam `weights`,
    /// with the given blockers. Non-coherent power sum over paths.
    pub fn rss_dbm(&self, weights: &AntennaWeights, rx: Vec3, blockers: &[Blocker]) -> f64 {
        self.prepare_rx(rx, blockers).rss_dbm(weights)
    }

    /// Prepares `rx` for repeated beam evaluations (see [`PreparedRx`]).
    pub fn prepare_rx(&self, rx: Vec3, blockers: &[Blocker]) -> PreparedRx {
        self.prepare_rx_paths(&self.paths(rx), rx, blockers)
    }

    /// [`Channel::prepare_rx`] over an already-enumerated path list, for
    /// callers that memoize [`Channel::paths`] per receiver position (path
    /// geometry is independent of the blocker population).
    pub fn prepare_rx_paths(&self, paths: &[Path], rx: Vec3, blockers: &[Blocker]) -> PreparedRx {
        let paths = paths
            .iter()
            .filter_map(|path| {
                // A path whose departure direction is degenerate contributes
                // zero gain in rss_dbm; dropping it here is equivalent.
                let dir = self.array.local_direction(path.via - self.array.position)?;
                let loss_db = self.path_loss_db(path, rx, blockers);
                Some((self.array.steering_sample(dir), loss_db))
            })
            .collect();
        PreparedRx { paths }
    }

    /// Total loss in dB of one enumerated path toward `rx` — propagation,
    /// reflection, implementation, and (if any blocker cylinder interrupts
    /// a leg) body blockage. The single loss program behind
    /// [`Channel::prepare_rx_paths`], shared with the allocation-free
    /// sweep engine.
    pub fn path_loss_db(&self, path: &Path, rx: Vec3, blockers: &[Blocker]) -> f64 {
        let mut loss_db = calib::fspl_db(path.length)
            + calib::O2_ABSORPTION_DB_PER_M * path.length
            + path.extra_loss_db
            + calib::IMPLEMENTATION_LOSS_DB;
        // Blockage: check both legs of the path.
        let blocked = if path.is_los {
            self.segment_blocked(self.array.position, rx, blockers)
        } else {
            self.segment_blocked(self.array.position, path.via, blockers)
                || self.segment_blocked(path.via, rx, blockers)
        };
        if blocked {
            loss_db += calib::BODY_BLOCKAGE_DB;
        }
        loss_db
    }

    /// RSS using the best dedicated (conjugate) beam toward `rx` — the
    /// upper bound a perfect beam search achieves *on the LoS direction*.
    pub fn rss_dedicated_beam(&self, rx: Vec3, blockers: &[Blocker]) -> f64 {
        match self.array.local_direction(rx - self.array.position) {
            Some(dir) => self.rss_dbm(&self.array.beam_toward(dir), rx, blockers),
            None => f64::NEG_INFINITY,
        }
    }

    /// RSS with the best beam over *all* propagation paths: the AP tries a
    /// dedicated beam toward the receiver and toward every reflection
    /// point, and keeps the strongest. This is what a beam search that is
    /// allowed to use NLoS paths converges to — the escape hatch from a
    /// body blockage (paper §4.1: "adapt its beam to the user with a
    /// reflection path").
    pub fn rss_best_beam(&self, rx: Vec3, blockers: &[Blocker]) -> f64 {
        // One path enumeration + blockage resolution shared by every
        // candidate beam, instead of re-deriving them per candidate.
        // Stays serial: after preparation the sweep is a handful of dot
        // products (one per path), far below thread-spawn cost — the
        // parallel codebook sweeps live in `MultiLobeDesigner`.
        let paths = self.paths(rx);
        let prepared = self.prepare_rx_paths(&paths, rx, blockers);
        paths
            .iter()
            .filter_map(|p| {
                self.array
                    .local_direction(p.via - self.array.position)
                    .map(|dir| prepared.rss_dbm(&self.array.beam_toward(dir)))
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Room {
    width,
    height,
    depth,
    floor_reflection
});
volcast_util::impl_json_struct!(Blocker {
    center,
    radius,
    height
});
volcast_util::impl_json_struct!(Path {
    via,
    length,
    extra_loss_db,
    is_los
});
volcast_util::impl_json_struct!(Channel { room, array });

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Channel {
        Channel::default_setup()
    }

    #[test]
    fn paths_include_los_and_reflections() {
        let ch = setup();
        let paths = ch.paths(Vec3::new(1.0, 1.5, 0.0));
        assert!(paths[0].is_los);
        // 4 walls + ceiling = up to 5 reflections; at least 3 must be
        // geometrically valid from this interior point.
        assert!(paths.len() >= 4, "only {} paths", paths.len());
        for p in &paths[1..] {
            assert!(!p.is_los);
            assert!(p.length > paths[0].length, "reflection shorter than LoS");
            assert_eq!(p.extra_loss_db, calib::REFLECTION_LOSS_DB);
        }
    }

    #[test]
    fn aligned_user_has_strong_rss() {
        let ch = setup();
        let user = Vec3::new(0.0, 1.6, 0.0); // room center, ~4 m
        let rss = ch.rss_dedicated_beam(user, &[]);
        assert!(
            (-68.0..=-45.0).contains(&rss),
            "calibration anchor violated: {rss} dBm at room center"
        );
    }

    #[test]
    fn rss_decreases_with_distance() {
        let ch = setup();
        let near = ch.rss_dedicated_beam(Vec3::new(0.0, 1.6, 2.0), &[]);
        let far = ch.rss_dedicated_beam(Vec3::new(0.0, 1.6, -3.0), &[]);
        assert!(near > far, "near {near} <= far {far}");
    }

    #[test]
    fn misaligned_beam_much_weaker() {
        let ch = setup();
        let user_a = Vec3::new(-2.5, 1.6, 0.0);
        let user_b = Vec3::new(2.5, 1.6, 0.0);
        let beam_a = ch.array.beam_toward(
            ch.array
                .local_direction(user_a - ch.array.position)
                .unwrap(),
        );
        let rss_at_a = ch.rss_dbm(&beam_a, user_a, &[]);
        let rss_at_b = ch.rss_dbm(&beam_a, user_b, &[]);
        assert!(
            rss_at_a > rss_at_b + 8.0,
            "beam at A: {rss_at_a} dBm at A vs {rss_at_b} dBm at B"
        );
    }

    #[test]
    fn blockage_attenuates_but_does_not_kill() {
        let ch = setup();
        let user = Vec3::new(0.0, 1.2, -2.0);
        // Blocker standing on the LoS close to the user: the ray from the
        // AP (y=2.6, z=3.9) descends below 1.8 m only near the user.
        let blocker = Blocker::person(Vec3::new(0.0, 0.0, -1.0));
        let clear = ch.rss_dedicated_beam(user, &[]);
        let blocked = ch.rss_dedicated_beam(user, &[blocker]);
        assert!(blocked < clear - 5.0, "clear {clear} blocked {blocked}");
        // Reflections keep the link alive (paper §5).
        assert!(blocked > clear - calib::BODY_BLOCKAGE_DB - 10.0);
        assert!(blocked.is_finite());
    }

    #[test]
    fn off_los_blocker_is_harmless() {
        let ch = setup();
        let user = Vec3::new(0.0, 1.2, -2.0);
        let bystander = Blocker::person(Vec3::new(3.0, 0.0, -1.0));
        let clear = ch.rss_dedicated_beam(user, &[]);
        let with = ch.rss_dedicated_beam(user, &[bystander]);
        assert!((clear - with).abs() < 1.0);
    }

    #[test]
    fn reflection_points_lie_on_walls() {
        let ch = setup();
        let paths = ch.paths(Vec3::new(2.0, 1.0, -1.0));
        let (hw, hd) = (ch.room.width / 2.0, ch.room.depth / 2.0);
        for p in paths.iter().filter(|p| !p.is_los) {
            let on_wall = (p.via.x.abs() - hw).abs() < 1e-6
                || (p.via.z.abs() - hd).abs() < 1e-6
                || (p.via.y - ch.room.height).abs() < 1e-6
                || p.via.y.abs() < 1e-6;
            assert!(on_wall, "bounce point {} not on a surface", p.via);
        }
    }

    #[test]
    fn floor_reflection_toggle() {
        let mut ch = setup();
        let rx = Vec3::new(1.0, 1.5, 0.0);
        let without = ch.paths(rx).len();
        ch.room.floor_reflection = true;
        let with = ch.paths(rx).len();
        assert_eq!(with, without + 1);
    }

    #[test]
    fn prepared_rx_matches_direct_rss_exactly() {
        let ch = setup();
        let rx = Vec3::new(-1.7, 1.4, -2.2);
        let blockers = [
            Blocker::person(Vec3::new(-1.0, 0.0, -0.5)),
            Blocker::person(Vec3::new(2.0, 0.0, 1.0)),
        ];
        let prepared = ch.prepare_rx(rx, &blockers);
        for dir in [
            Vec3::new(0.1, -0.4, -1.0),
            rx - ch.array.position,
            Vec3::new(-1.0, 0.0, -0.2),
        ] {
            let beam = ch.array.beam_toward(ch.array.local_direction(dir).unwrap());
            // Bit-for-bit: prepared evaluation is the same float program.
            assert_eq!(prepared.rss_dbm(&beam), ch.rss_dbm(&beam, rx, &blockers));
        }
    }

    #[test]
    fn rss_is_deterministic() {
        let ch = setup();
        let u = Vec3::new(1.3, 1.5, -0.7);
        assert_eq!(ch.rss_dedicated_beam(u, &[]), ch.rss_dedicated_beam(u, &[]));
    }
}

#[cfg(test)]
mod reflected_beam_tests {
    use super::*;

    #[test]
    fn reflected_beam_rescues_blocked_link() {
        let ch = Channel::default_setup();
        // A user near a side wall: the short side-wall bounce departs the
        // AP at a very different angle from the (blocked) LoS, so
        // re-steering buys real dB. (For users on the room axis the LoS
        // beam already covers the back-wall bounce and the gain is small.)
        let user = Vec3::new(-3.0, 1.5, 0.5);
        let ap = ch.array.position;
        let dir = (user - ap).normalized_or(Vec3::FORWARD);
        let bp = user - dir * 0.8;
        let blocker = Blocker::person(Vec3::new(bp.x, 0.0, bp.z));
        let los_blocked = ch.rss_dedicated_beam(user, &[blocker]);
        let best_blocked = ch.rss_best_beam(user, &[blocker]);
        assert!(
            best_blocked > los_blocked + 3.0,
            "best {best_blocked} vs los {los_blocked}"
        );
    }

    #[test]
    fn best_beam_equals_los_beam_when_clear() {
        let ch = Channel::default_setup();
        let user = Vec3::new(0.5, 1.5, 0.0);
        let los = ch.rss_dedicated_beam(user, &[]);
        let best = ch.rss_best_beam(user, &[]);
        assert!(best >= los - 1e-9);
        assert!(
            best < los + 3.0,
            "clear link should prefer LoS: {best} vs {los}"
        );
    }
}

//! Modulation-and-coding-scheme tables: RSS -> PHY rate.
//!
//! Two tables are modeled:
//!
//! - **DMG (802.11ad single-carrier)**: MCS 1-12, PHY rates 385-4620 Mbps,
//!   receiver sensitivities per the standard's Table 21-3 (approximately).
//!   The paper's anchor: *"RSS of -68 dBm ... can provide approximately
//!   384 Mbps"* — exactly DMG MCS 1 (385 Mbps at -68 dBm sensitivity).
//! - **VHT (802.11ac, 80 MHz, 2 spatial streams)**: used by the 802.11ac
//!   baseline rows of Table 1.
//!
//! A multicast group's rate is the minimum MCS across members (the paper's
//! `r^m` constraint).

/// One MCS level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// MCS index (per the respective standard).
    pub index: u8,
    /// PHY data rate in Mbps.
    pub phy_mbps: f64,
    /// Minimum RSS (dBm) required to sustain this MCS.
    pub min_rss_dbm: f64,
}

/// An ordered MCS table (ascending rate).
#[derive(Debug, Clone, PartialEq)]
pub struct McsTable {
    /// Entries sorted by ascending `phy_mbps`.
    pub entries: Vec<McsEntry>,
}

impl McsTable {
    /// The 802.11ad DMG table: control-PHY MCS 0 (27.5 Mbps, the always-
    /// decodable fallback that keeps deeply-faded links alive) plus the
    /// single-carrier MCS 1-12.
    pub fn dmg() -> McsTable {
        let raw: [(u8, f64, f64); 13] = [
            (0, 27.5, -78.0),
            (1, 385.0, -68.0),
            (2, 770.0, -66.0),
            (3, 962.5, -65.0),
            (4, 1155.0, -64.0),
            (5, 1251.25, -62.0),
            (6, 1540.0, -61.0),
            (7, 1925.0, -59.0),
            (8, 2310.0, -58.0),
            (9, 2502.5, -56.0),
            (10, 3080.0, -55.0),
            (11, 3850.0, -54.0),
            (12, 4620.0, -53.0),
        ];
        McsTable {
            entries: raw
                .iter()
                .map(|&(index, phy_mbps, min_rss_dbm)| McsEntry {
                    index,
                    phy_mbps,
                    min_rss_dbm,
                })
                .collect(),
        }
    }

    /// The 802.11ac VHT table at 80 MHz, 2 spatial streams, short guard
    /// interval (MCS 0-9), with typical receiver sensitivities. MCS9 at
    /// 866.7 Mbps PHY is the anchor behind the paper's 374 Mbps
    /// single-user TCP measurement.
    pub fn vht80_2ss() -> McsTable {
        let raw: [(u8, f64, f64); 10] = [
            (0, 65.0, -82.0),
            (1, 130.0, -79.0),
            (2, 195.0, -77.0),
            (3, 260.0, -74.0),
            (4, 390.0, -70.0),
            (5, 520.0, -66.0),
            (6, 585.0, -65.0),
            (7, 650.0, -64.0),
            (8, 780.0, -59.0),
            (9, 866.7, -57.0),
        ];
        McsTable {
            entries: raw
                .iter()
                .map(|&(index, phy_mbps, min_rss_dbm)| McsEntry {
                    index,
                    phy_mbps,
                    min_rss_dbm,
                })
                .collect(),
        }
    }

    /// Highest entry sustainable at `rss_dbm`; `None` when even the lowest
    /// MCS does not close (link outage).
    pub fn best_for_rss(&self, rss_dbm: f64) -> Option<McsEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| rss_dbm >= e.min_rss_dbm)
            .copied()
    }

    /// PHY rate at `rss_dbm` in Mbps (0 on outage).
    pub fn phy_rate_mbps(&self, rss_dbm: f64) -> f64 {
        self.best_for_rss(rss_dbm).map_or(0.0, |e| e.phy_mbps)
    }

    /// The multicast rate for a group: the PHY rate at the *lowest* member
    /// RSS (reliable multicast must be decodable by every member). An empty
    /// group yields 0.
    pub fn multicast_rate_mbps(&self, member_rss_dbm: &[f64]) -> f64 {
        match member_rss_dbm.iter().copied().reduce(f64::min) {
            Some(min_rss) => self.phy_rate_mbps(min_rss),
            None => 0.0,
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(McsEntry {
    index,
    phy_mbps,
    min_rss_dbm
});
volcast_util::impl_json_struct!(McsTable { entries });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_minus68_gives_385() {
        let t = McsTable::dmg();
        let e = t.best_for_rss(-68.0).unwrap();
        assert_eq!(e.index, 1);
        assert_eq!(e.phy_mbps, 385.0);
        // Slightly below: only the control-PHY trickle remains.
        assert_eq!(t.best_for_rss(-68.5).unwrap().index, 0);
        assert_eq!(t.phy_rate_mbps(-70.0), 27.5);
        // Below even MCS 0: outage.
        assert!(t.best_for_rss(-80.0).is_none());
    }

    #[test]
    fn tables_are_monotone() {
        for t in [McsTable::dmg(), McsTable::vht80_2ss()] {
            for w in t.entries.windows(2) {
                assert!(w[0].phy_mbps < w[1].phy_mbps);
                assert!(w[0].min_rss_dbm <= w[1].min_rss_dbm);
            }
        }
    }

    #[test]
    fn stronger_rss_never_lowers_rate() {
        let t = McsTable::dmg();
        let mut prev = 0.0;
        let mut rss = -82.0;
        while rss < -40.0 {
            let r = t.phy_rate_mbps(rss);
            assert!(r >= prev, "rate dropped at {rss}");
            prev = r;
            rss += 0.25;
        }
        assert_eq!(prev, 4620.0);
    }

    #[test]
    fn multicast_rate_is_min_member() {
        let t = McsTable::dmg();
        // -55 alone: 3080; -62 alone: 1251.25; group: limited by -62.
        assert_eq!(t.phy_rate_mbps(-55.0), 3080.0);
        assert_eq!(t.multicast_rate_mbps(&[-55.0, -62.0]), 1251.25);
        // Any member in outage kills the multicast.
        assert_eq!(t.multicast_rate_mbps(&[-55.0, -85.0]), 0.0);
        // Degenerate: empty group (defensive: 0).
        assert_eq!(t.multicast_rate_mbps(&[]), 0.0);
    }

    #[test]
    fn vht_baseline_table() {
        let t = McsTable::vht80_2ss();
        assert_eq!(t.phy_rate_mbps(-50.0), 866.7);
        assert_eq!(t.phy_rate_mbps(-72.0), 260.0);
        assert_eq!(t.phy_rate_mbps(-90.0), 0.0);
    }
}

//! Default sector codebooks.
//!
//! Commercial 802.11ad radios ship a fixed codebook of a few dozen sector
//! beams that the sector-level sweep (SLS) scans. The paper's point (Fig.
//! 3b) is that these single-lobe sectors were never designed for multicast:
//! one sector rarely covers two spread-out users with high RSS.

use crate::array::{AntennaWeights, PlanarArray};
use volcast_geom::Spherical;

/// A set of sector beams over the array's field of view.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    /// Sector beams (unit transmit power each).
    pub sectors: Vec<AntennaWeights>,
    /// The steering direction of each sector (same indexing).
    pub directions: Vec<Spherical>,
}

impl Codebook {
    /// Builds the default DFT-style codebook: a uniform az/el grid of
    /// conjugate-beamforming sectors covering ±`az_span`/±`el_span`.
    ///
    /// Defaults mirror commercial devices: ~32-64 sectors.
    pub fn dft(array: &PlanarArray, n_az: usize, n_el: usize, az_span: f64, el_span: f64) -> Self {
        assert!(n_az >= 1 && n_el >= 1);
        let mut sectors = Vec::with_capacity(n_az * n_el);
        let mut directions = Vec::with_capacity(n_az * n_el);
        for ie in 0..n_el {
            let el = if n_el == 1 {
                0.0
            } else {
                -el_span + 2.0 * el_span * ie as f64 / (n_el - 1) as f64
            };
            for ia in 0..n_az {
                let az = if n_az == 1 {
                    0.0
                } else {
                    -az_span + 2.0 * az_span * ia as f64 / (n_az - 1) as f64
                };
                let dir = Spherical::new(az, el);
                sectors.push(array.beam_toward(dir));
                directions.push(dir);
            }
        }
        Codebook {
            sectors,
            directions,
        }
    }

    /// The standard commercial configuration for the 8x4 array: 16 azimuth
    /// x 3 elevation sectors over ±60° az, ±30° el (48 sectors).
    pub fn default_for(array: &PlanarArray) -> Self {
        Codebook::dft(array, 16, 3, 60f64.to_radians(), 30f64.to_radians())
    }

    /// Number of sectors.
    pub fn len(&self) -> usize {
        self.sectors.len()
    }

    /// `true` when the codebook has no sectors.
    pub fn is_empty(&self) -> bool {
        self.sectors.is_empty()
    }

    /// Index of the sector whose steering direction is closest to `dir`.
    pub fn nearest_sector(&self, dir: Spherical) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| {
            self.directions[a]
                .angle_to(dir)
                .partial_cmp(&self.directions[b].angle_to(dir))
                .unwrap()
        })
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(Codebook {
    sectors,
    directions
});

#[cfg(test)]
mod tests {
    use super::*;
    use volcast_geom::Vec3;

    fn setup() -> (PlanarArray, Codebook) {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let cb = Codebook::default_for(&array);
        (array, cb)
    }

    #[test]
    fn default_codebook_size() {
        let (_, cb) = setup();
        assert_eq!(cb.len(), 48);
        assert_eq!(cb.sectors.len(), cb.directions.len());
        assert!(!cb.is_empty());
    }

    #[test]
    fn all_sectors_unit_power() {
        let (_, cb) = setup();
        for s in &cb.sectors {
            assert!((s.power() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_finds_good_sector_for_any_front_direction() {
        let (array, cb) = setup();
        // For directions within the codebook span, the best sector must be
        // within ~4 dB of a dedicated beam.
        for az_deg in [-55.0f64, -20.0, 0.0, 33.0, 58.0] {
            for el_deg in [-25.0f64, 0.0, 22.0] {
                let dir = Spherical::new(az_deg.to_radians(), el_deg.to_radians());
                let dedicated = array.gain(&array.beam_toward(dir), dir);
                let best = cb
                    .sectors
                    .iter()
                    .map(|s| array.gain(s, dir))
                    .fold(0.0f64, f64::max);
                assert!(
                    best > dedicated * 0.4,
                    "az {az_deg} el {el_deg}: best {best} vs dedicated {dedicated}"
                );
            }
        }
    }

    #[test]
    fn nearest_sector_is_consistent() {
        let (_, cb) = setup();
        for (i, &d) in cb.directions.iter().enumerate() {
            assert_eq!(cb.nearest_sector(d), Some(i));
        }
    }

    #[test]
    fn single_sector_codebook() {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let cb = Codebook::dft(&array, 1, 1, 1.0, 1.0);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb.directions[0], Spherical::BORESIGHT);
    }

    #[test]
    fn directions_span_requested_range() {
        let (_, cb) = setup();
        let max_az = cb
            .directions
            .iter()
            .map(|d| d.azimuth)
            .fold(f64::MIN, f64::max);
        let min_az = cb
            .directions
            .iter()
            .map(|d| d.azimuth)
            .fold(f64::MAX, f64::min);
        assert!((max_az - 60f64.to_radians()).abs() < 1e-9);
        assert!((min_az + 60f64.to_radians()).abs() < 1e-9);
    }
}

//! 60 GHz mmWave substrate for volcast.
//!
//! Replaces the paper's physical testbed (Airfide 8-patch 802.11ad AP,
//! QCA9500 laptops, Remcom ray tracing) with a geometric simulation that
//! exercises the same code paths:
//!
//! - [`mod@array`]: uniform planar phased arrays, steering vectors, antenna
//!   weight vectors and far-field gain patterns,
//! - [`codebook`]: the default DFT sector codebook commercial 802.11ad
//!   devices sweep,
//! - [`channel`]: a room-scale geometric channel — free-space path loss at
//!   60 GHz, oxygen absorption, first-order wall reflections via the image
//!   method (the Remcom substitute), and human-body blockage,
//! - [`mcs`]: 802.11ad DMG and 802.11ac VHT MCS tables mapping RSS to PHY
//!   rate,
//! - [`multilobe`]: the paper's customized multi-lobe beam synthesis
//!   (`w = (Δ2·w1 + Δ1·w2) / (Δ1 + Δ2)`, power-normalized, generalized to
//!   k users),
//! - [`beamsearch`]: sector-sweep beam search with its latency model
//!   (5-20 ms re-search cost on blockage).
//!
//! All calibration constants live in [`calib`] with the paper anchor they
//! reproduce.
//!
//! ```
//! use volcast_geom::Vec3;
//! use volcast_mmwave::{Channel, Codebook};
//!
//! // Received signal strength for one codebook sector at a user position.
//! let channel = Channel::default_setup();
//! let codebook = Codebook::default_for(&channel.array);
//! let rss = channel.rss_dbm(&codebook.sectors[0], Vec3::new(1.0, 1.5, -1.0), &[]);
//! assert!(rss.is_finite() && rss < 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod beamsearch;
pub mod calib;
pub mod channel;
pub mod codebook;
pub mod mcs;
pub mod multilobe;
pub mod sweep;

pub use array::{AntennaWeights, PlanarArray, SteeringSample};
pub use beamsearch::BeamSearch;
pub use channel::{Blocker, Channel, Path, PreparedRx, Room};
pub use codebook::Codebook;
pub use mcs::{McsEntry, McsTable};
pub use multilobe::{combine_weights, combine_weights_multi, MultiLobeDesigner};
pub use sweep::{SweepEngine, SweepRx};

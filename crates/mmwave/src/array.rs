//! Uniform planar phased arrays and antenna weight vectors.
//!
//! The AP's antenna is modeled as an `nx x ny` uniform planar array with
//! half-wavelength spacing. A beam is an [`AntennaWeights`] vector of
//! per-element complex weights; its far-field gain toward a direction is
//! `|w^H a(dir)|^2` where `a` is the steering vector. This is exactly the
//! abstraction the paper's custom multi-lobe design manipulates.

use crate::calib::WAVELENGTH_M;
use volcast_geom::{Complex, Quat, Spherical, Vec3};

/// A per-element complex weight vector (one beam).
#[derive(Debug, Clone, PartialEq)]
pub struct AntennaWeights {
    /// One complex weight per array element, row-major.
    pub w: Vec<Complex>,
}

impl AntennaWeights {
    /// Total transmit power of the weight vector (`sum |w_i|^2`).
    pub fn power(&self) -> f64 {
        self.w.iter().map(|c| c.norm_sq()).sum()
    }

    /// Returns the weights scaled to unit total power (the total-transmit-
    /// power constraint in the paper's beam design). Zero vectors are
    /// returned unchanged.
    pub fn normalized(&self) -> AntennaWeights {
        let p = self.power();
        if p <= 0.0 {
            return self.clone();
        }
        let s = 1.0 / p.sqrt();
        AntennaWeights {
            w: self.w.iter().map(|c| c.scale(s)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` for an element-less vector.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

/// A steering vector sampled toward one fixed array-local direction, for
/// evaluating many candidate weight vectors against the same direction
/// (codebook sweeps, multi-lobe design).
///
/// [`SteeringSample::gain`] reproduces [`PlanarArray::gain`] exactly — same
/// floating-point operations in the same order — but skips re-deriving the
/// per-element phases on every call, leaving one complex dot product per
/// evaluation.
#[derive(Debug, Clone)]
pub struct SteeringSample {
    /// `a(dir)`: the unit-magnitude phase vector toward the direction.
    steering: AntennaWeights,
    /// Cosine element-pattern factor at the direction (floored backlobe).
    element: f64,
}

impl SteeringSample {
    /// Far-field power gain of `weights` toward the sampled direction:
    /// `|w^T a|^2` times the element pattern, identical to calling
    /// [`PlanarArray::gain`] with the direction this sample was built from.
    pub fn gain(&self, weights: &AntennaWeights) -> f64 {
        debug_assert_eq!(weights.len(), self.steering.len());
        let mut acc = Complex::ZERO;
        for (wi, ai) in weights.w.iter().zip(&self.steering.w) {
            acc += *wi * *ai;
        }
        acc.norm_sq() * self.element
    }
}

/// A uniform planar array of isotropic-ish elements at λ/2 spacing.
///
/// The array lies in its local XY plane; its boresight is local `-Z`
/// (matching the camera convention). `orientation`/`position` place it in
/// the world.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarArray {
    /// Elements along local X.
    pub nx: usize,
    /// Elements along local Y.
    pub ny: usize,
    /// Element spacing in wavelengths (0.5 = half wavelength).
    pub spacing_wl: f64,
    /// World position of the array center.
    pub position: Vec3,
    /// World orientation (boresight = rotated `-Z`).
    pub orientation: Quat,
}

impl PlanarArray {
    /// An 8x4 = 32-element array like the paper's 8-patch Airfide AP,
    /// mounted at `position` facing `facing` (world direction).
    pub fn airfide(position: Vec3, facing: Vec3) -> Self {
        PlanarArray {
            nx: 8,
            ny: 4,
            spacing_wl: 0.5,
            position,
            orientation: Quat::look_at(facing, Vec3::Y),
        }
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.nx * self.ny
    }

    /// Converts a world-space direction into array-local spherical angles.
    /// Returns `None` for the zero direction.
    pub fn local_direction(&self, world_dir: Vec3) -> Option<Spherical> {
        let local = self.orientation.conjugate().rotate(world_dir);
        Spherical::from_vector(local)
    }

    /// The steering vector toward an array-local direction: unit-magnitude
    /// phase terms `exp(j k (x_m sin_az cos_el + y_n sin_el))`.
    pub fn steering(&self, dir: Spherical) -> AntennaWeights {
        let mut w = Vec::with_capacity(self.elements());
        self.steering_into(dir, &mut w);
        AntennaWeights { w }
    }

    /// Appends the steering phases toward `dir` to `out` — the single
    /// float program behind [`PlanarArray::steering`], shared with the
    /// allocation-free sweep engine so every caller produces bit-identical
    /// phase vectors.
    pub fn steering_into(&self, dir: Spherical, out: &mut Vec<Complex>) {
        let k = 2.0 * std::f64::consts::PI / WAVELENGTH_M;
        let d = self.spacing_wl * WAVELENGTH_M;
        let u = dir.azimuth.sin() * dir.elevation.cos();
        let v = dir.elevation.sin();
        let cx = (self.nx as f64 - 1.0) / 2.0;
        let cy = (self.ny as f64 - 1.0) / 2.0;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let x = (ix as f64 - cx) * d;
                let y = (iy as f64 - cy) * d;
                out.push(Complex::cis(k * (x * u + y * v)));
            }
        }
    }

    /// The conjugate-beamforming weights that maximize gain toward `dir`,
    /// normalized to unit transmit power.
    pub fn beam_toward(&self, dir: Spherical) -> AntennaWeights {
        let s = self.steering(dir);
        AntennaWeights {
            w: s.w.iter().map(|c| c.conj()).collect(),
        }
        .normalized()
    }

    /// Samples the steering vector and element pattern toward `dir` once,
    /// so repeated [`SteeringSample::gain`] calls against different weight
    /// vectors (a codebook sweep) cost one dot product each.
    pub fn steering_sample(&self, dir: Spherical) -> SteeringSample {
        SteeringSample {
            steering: self.steering(dir),
            element: element_pattern(dir),
        }
    }

    /// Far-field power gain (linear) of `weights` toward an array-local
    /// direction: `|w^T a(dir)|^2`, including a cosine element pattern.
    ///
    /// With unit-power weights the peak achievable gain is the element
    /// count (e.g. 32 -> ~15 dB).
    pub fn gain(&self, weights: &AntennaWeights, dir: Spherical) -> f64 {
        debug_assert_eq!(weights.len(), self.elements());
        self.steering_sample(dir).gain(weights)
    }

    /// Samples the far-field pattern along an azimuth cut at fixed
    /// elevation: `n` points over `[-span, span]` radians, as
    /// `(azimuth_rad, gain_dBi)` pairs. Useful for inspecting sector and
    /// multi-lobe beams (see the `beam_designer` example).
    pub fn azimuth_cut(
        &self,
        weights: &AntennaWeights,
        elevation: f64,
        span: f64,
        n: usize,
    ) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let az = -span + 2.0 * span * i as f64 / (n - 1) as f64;
                let g = self.gain(weights, Spherical::new(az, elevation));
                (az, 10.0 * g.max(1e-12).log10())
            })
            .collect()
    }

    /// Gain toward a world-space target point.
    pub fn gain_toward_point(&self, weights: &AntennaWeights, point: Vec3) -> f64 {
        match self.local_direction(point - self.position) {
            Some(dir) => self.gain(weights, dir),
            None => 0.0,
        }
    }
}

/// Element pattern at an array-local direction: cosine roll-off away from
/// boresight, floored to a -20 dB backlobe so reflections behind the array
/// stay finite. The single float program shared by
/// [`PlanarArray::steering_sample`] and the sweep engine.
pub fn element_pattern(dir: Spherical) -> f64 {
    (dir.azimuth.cos() * dir.elevation.cos()).max(0.01)
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(AntennaWeights { w });
volcast_util::impl_json_struct!(PlanarArray {
    nx,
    ny,
    spacing_wl,
    position,
    orientation
});

#[cfg(test)]
mod tests {
    use super::*;

    fn test_array() -> PlanarArray {
        PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD)
    }

    #[test]
    fn element_count() {
        assert_eq!(test_array().elements(), 32);
    }

    #[test]
    fn beam_has_unit_power() {
        let a = test_array();
        for dir in [
            Spherical::BORESIGHT,
            Spherical::new(0.5, 0.0),
            Spherical::new(-1.0, 0.4),
        ] {
            let b = a.beam_toward(dir);
            assert!((b.power() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn boresight_beam_achieves_array_gain() {
        let a = test_array();
        let b = a.beam_toward(Spherical::BORESIGHT);
        let g = a.gain(&b, Spherical::BORESIGHT);
        // Peak gain = N elements (32) times element pattern (1 at boresight).
        assert!((g - 32.0).abs() < 1e-6, "gain {g}");
    }

    #[test]
    fn steered_beam_peaks_at_target() {
        let a = test_array();
        let target = Spherical::new(0.6, 0.2);
        let b = a.beam_toward(target);
        let g_target = a.gain(&b, target);
        // Scan: no direction may beat the target (modulo element pattern).
        for az in -30..30 {
            for el in -10..10 {
                let d = Spherical::new(az as f64 * 0.1, el as f64 * 0.1);
                let g = a.gain(&b, d);
                assert!(
                    g <= g_target * 1.001,
                    "gain at ({},{}) = {g} exceeds target {g_target}",
                    d.azimuth,
                    d.elevation
                );
            }
        }
    }

    #[test]
    fn misaligned_beam_loses_gain() {
        let a = test_array();
        let b = a.beam_toward(Spherical::BORESIGHT);
        let g0 = a.gain(&b, Spherical::BORESIGHT);
        // 30 degrees off: well outside the ~13-degree azimuth beamwidth.
        let g_off = a.gain(&b, Spherical::new(0.52, 0.0));
        assert!(g_off < g0 / 10.0, "off-beam gain {g_off} vs peak {g0}");
    }

    #[test]
    fn azimuth_beam_narrower_than_elevation() {
        // 8 elements across azimuth vs 4 across elevation: the -3 dB point
        // in azimuth comes earlier.
        let a = test_array();
        let b = a.beam_toward(Spherical::BORESIGHT);
        let g0 = a.gain(&b, Spherical::BORESIGHT);
        let find_3db = |is_az: bool| -> f64 {
            let mut angle: f64 = 0.0;
            loop {
                angle += 0.005;
                let d = if is_az {
                    Spherical::new(angle, 0.0)
                } else {
                    Spherical::new(0.0, angle)
                };
                if a.gain(&b, d) < g0 / 2.0 || angle > 1.5 {
                    return angle;
                }
            }
        };
        assert!(find_3db(true) < find_3db(false));
    }

    #[test]
    fn world_mounting_and_direction() {
        // Array on the +Z wall facing -Z sees a user ahead at boresight.
        let a = PlanarArray::airfide(Vec3::new(0.0, 2.5, 4.0), Vec3::FORWARD);
        let dir = a
            .local_direction(Vec3::new(0.0, 2.5, 0.0) - a.position)
            .unwrap();
        assert!(dir.azimuth.abs() < 1e-9 && dir.elevation.abs() < 1e-9);
        // A user below and to the right maps to nonzero angles.
        let dir2 = a
            .local_direction(Vec3::new(2.0, 1.0, 0.0) - a.position)
            .unwrap();
        assert!(dir2.azimuth > 0.0);
        assert!(dir2.elevation < 0.0);
    }

    #[test]
    fn gain_toward_point_uses_geometry() {
        let a = PlanarArray::airfide(Vec3::new(0.0, 2.0, 4.0), Vec3::FORWARD);
        let user = Vec3::new(0.0, 2.0, 0.0);
        let b = a.beam_toward(a.local_direction(user - a.position).unwrap());
        let g_at_user = a.gain_toward_point(&b, user);
        let g_elsewhere = a.gain_toward_point(&b, Vec3::new(3.0, 1.0, 0.0));
        assert!(g_at_user > 10.0 * g_elsewhere);
        // Degenerate: the array's own position.
        assert_eq!(a.gain_toward_point(&b, a.position), 0.0);
    }

    #[test]
    fn azimuth_cut_shape() {
        let a = test_array();
        let b = a.beam_toward(Spherical::new(0.4, 0.0));
        let cut = a.azimuth_cut(&b, 0.0, 1.2, 121);
        assert_eq!(cut.len(), 121);
        // The maximum of the cut lies near the steering azimuth.
        let (peak_az, peak_db) =
            cut.iter().copied().fold(
                (0.0, f64::MIN),
                |acc, (az, g)| {
                    if g > acc.1 {
                        (az, g)
                    } else {
                        acc
                    }
                },
            );
        assert!((peak_az - 0.4).abs() < 0.05, "peak at {peak_az}");
        // Peak ~ 15 dBi for 32 elements (x element pattern at 0.4 rad).
        assert!((12.0..16.0).contains(&peak_db), "peak {peak_db} dB");
        // Cut endpoints are in range and sorted by azimuth.
        assert!(cut.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn multi_lobe_cut_shows_two_peaks() {
        let a = test_array();
        let w1 = a.beam_toward(Spherical::new(-0.5, 0.0));
        let w2 = a.beam_toward(Spherical::new(0.5, 0.0));
        let combined = crate::multilobe::combine_weights(&w1, 1e-6, &w2, 1e-6);
        let cut = a.azimuth_cut(&combined, 0.0, 1.0, 201);
        let gain_at = |target: f64| -> f64 {
            cut.iter()
                .min_by(|x, y| {
                    (x.0 - target)
                        .abs()
                        .partial_cmp(&(y.0 - target).abs())
                        .unwrap()
                })
                .unwrap()
                .1
        };
        let lobe_l = gain_at(-0.5);
        let lobe_r = gain_at(0.5);
        let valley = gain_at(0.0);
        assert!(lobe_l > valley + 3.0, "left lobe {lobe_l} valley {valley}");
        assert!(lobe_r > valley + 3.0, "right lobe {lobe_r} valley {valley}");
    }

    #[test]
    fn normalized_zero_vector_is_safe() {
        let z = AntennaWeights {
            w: vec![Complex::ZERO; 4],
        };
        assert_eq!(z.normalized().power(), 0.0);
        assert!(!z.is_empty());
        assert_eq!(z.len(), 4);
    }
}

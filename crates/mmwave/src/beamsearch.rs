//! Sector-level beam search and its latency model.
//!
//! 802.11ad finds beams with a sector-level sweep (SLS): the initiator
//! transmits a short SSW frame on every sector and the responder reports
//! the best. After a blockage breaks the current beam, re-initiating this
//! search costs 5-20 ms (paper §4.1) — long enough to stall 30 FPS video,
//! which is exactly why the paper wants prediction-driven *proactive* beam
//! adaptation instead.

use crate::channel::{Blocker, Channel};
use crate::codebook::Codebook;
use volcast_geom::Vec3;
use volcast_util::obs;

/// Result of one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepResult {
    /// Index of the best sector in the codebook.
    pub sector: usize,
    /// RSS (dBm) achieved on that sector.
    pub rss_dbm: f64,
    /// Time the sweep took, in seconds.
    pub duration_s: f64,
}

/// Sector sweep engine with a timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamSearch {
    /// Time per SSW frame (per sector probed), seconds. ~15 us airtime plus
    /// turnaround; commercial sweeps land in the hundreds of microseconds
    /// per sector once MAC overhead is included.
    pub per_sector_s: f64,
    /// Fixed setup/feedback overhead per sweep, seconds.
    pub overhead_s: f64,
}

impl Default for BeamSearch {
    /// Calibrated so a full 48-sector sweep costs ~12 ms and a focused
    /// partial sweep a few ms — inside the paper's 5-20 ms window.
    fn default() -> Self {
        BeamSearch {
            per_sector_s: 230e-6,
            overhead_s: 1.2e-3,
        }
    }
}

impl BeamSearch {
    /// Full sweep: probe every sector, return the best for `user`.
    pub fn full_sweep(
        &self,
        channel: &Channel,
        codebook: &Codebook,
        user: Vec3,
        blockers: &[Blocker],
    ) -> SweepResult {
        self.sweep_subset(
            channel,
            codebook,
            user,
            blockers,
            &Vec::from_iter(0..codebook.len()),
        )
    }

    /// Partial sweep over an explicit subset of sector indices (used for
    /// proactive re-steering where prediction narrows the candidates).
    pub fn sweep_subset(
        &self,
        channel: &Channel,
        codebook: &Codebook,
        user: Vec3,
        blockers: &[Blocker],
        sectors: &[usize],
    ) -> SweepResult {
        assert!(!sectors.is_empty(), "cannot sweep zero sectors");
        obs::inc("mmwave.beamsearch.sweeps");
        obs::add("mmwave.beamsearch.sectors_probed", sectors.len() as u64);
        let mut best = SweepResult {
            sector: sectors[0],
            rss_dbm: f64::NEG_INFINITY,
            duration_s: self.overhead_s + self.per_sector_s * sectors.len() as f64,
        };
        for &i in sectors {
            let rss = channel.rss_dbm(&codebook.sectors[i], user, blockers);
            if rss > best.rss_dbm {
                best.sector = i;
                best.rss_dbm = rss;
            }
        }
        best
    }

    /// Candidate sectors near a predicted direction: the `k` sectors whose
    /// steering direction is closest to the AP->predicted-position ray.
    pub fn candidates_near(
        &self,
        channel: &Channel,
        codebook: &Codebook,
        predicted_pos: Vec3,
        k: usize,
    ) -> Vec<usize> {
        let Some(dir) = channel
            .array
            .local_direction(predicted_pos - channel.array.position)
        else {
            return (0..codebook.len().min(k)).collect();
        };
        let mut idx: Vec<usize> = (0..codebook.len()).collect();
        idx.sort_by(|&a, &b| {
            codebook.directions[a]
                .angle_to(dir)
                .partial_cmp(&codebook.directions[b].angle_to(dir))
                .unwrap()
        });
        idx.truncate(k.max(1));
        idx
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(SweepResult {
    sector,
    rss_dbm,
    duration_s
});
volcast_util::impl_json_struct!(BeamSearch {
    per_sector_s,
    overhead_s
});

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Channel, Codebook, BeamSearch) {
        let ch = Channel::default_setup();
        let cb = Codebook::default_for(&ch.array);
        (ch, cb, BeamSearch::default())
    }

    #[test]
    fn full_sweep_duration_in_paper_window() {
        let (ch, cb, bs) = setup();
        let r = bs.full_sweep(&ch, &cb, Vec3::new(0.0, 1.5, 0.0), &[]);
        assert!(
            (0.005..=0.020).contains(&r.duration_s),
            "full sweep {} s outside 5-20 ms",
            r.duration_s
        );
    }

    #[test]
    fn partial_sweep_is_faster() {
        let (ch, cb, bs) = setup();
        let user = Vec3::new(1.0, 1.5, -1.0);
        let full = bs.full_sweep(&ch, &cb, user, &[]);
        let subset = bs.candidates_near(&ch, &cb, user, 8);
        let partial = bs.sweep_subset(&ch, &cb, user, &[], &subset);
        assert!(partial.duration_s < full.duration_s / 2.0);
        // Prediction-guided partial sweep finds (nearly) the same beam.
        assert!(partial.rss_dbm >= full.rss_dbm - 1.0);
    }

    #[test]
    fn sweep_finds_strong_sector() {
        let (ch, cb, bs) = setup();
        let user = Vec3::new(-1.5, 1.4, 0.5);
        let r = bs.full_sweep(&ch, &cb, user, &[]);
        let dedicated = ch.rss_dedicated_beam(user, &[]);
        assert!(
            r.rss_dbm > dedicated - 4.0,
            "sweep {} vs dedicated {}",
            r.rss_dbm,
            dedicated
        );
    }

    #[test]
    fn candidates_near_are_sorted_by_angle() {
        let (ch, cb, bs) = setup();
        let user = Vec3::new(2.0, 1.5, 0.0);
        let cands = bs.candidates_near(&ch, &cb, user, 5);
        assert_eq!(cands.len(), 5);
        let dir = ch.array.local_direction(user - ch.array.position).unwrap();
        let mut prev = -1.0;
        for &c in &cands {
            let a = cb.directions[c].angle_to(dir);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn blockage_changes_best_sector_or_rss() {
        let (ch, cb, bs) = setup();
        let user = Vec3::new(0.0, 1.2, -2.0);
        let clear = bs.full_sweep(&ch, &cb, user, &[]);
        let blocker = crate::channel::Blocker::person(Vec3::new(0.0, 0.0, -1.0));
        let blocked = bs.full_sweep(&ch, &cb, user, &[blocker]);
        assert!(blocked.rss_dbm < clear.rss_dbm);
    }

    #[test]
    #[should_panic]
    fn empty_subset_panics() {
        let (ch, cb, bs) = setup();
        let _ = bs.sweep_subset(&ch, &cb, Vec3::ZERO, &[], &[]);
    }
}

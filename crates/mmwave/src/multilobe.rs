//! Customized multi-lobe beam synthesis (§4.2 of the paper).
//!
//! Default single-lobe sectors cannot give high RSS to two spread-out
//! multicast members at once. The paper's design: combine the antenna
//! weight vectors of the individual users' beams, weighting each by the
//! *other* user's RSS so the weaker user gets the larger share of transmit
//! power, under a total-power constraint:
//!
//! ```text
//! w = (Δ2·w1 + Δ1·w2) / (Δ1 + Δ2)        (then power-normalized)
//! ```
//!
//! Only RSS values are needed — not full CSI — because the users have
//! independent receive chains (paper §4.2). The k-user generalization
//! weights each user's beam by the inverse of their RSS share.

use crate::array::AntennaWeights;
use crate::channel::{Blocker, Channel, Path, PreparedRx};
use crate::codebook::Codebook;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use volcast_geom::Vec3;
use volcast_util::{obs, par};

/// The paper's two-user combination: `w = (Δ2·w1 + Δ1·w2)/(Δ1+Δ2)`,
/// normalized to unit transmit power. `rss1`/`rss2` are linear powers
/// (milliwatts), not dB.
pub fn combine_weights(
    w1: &AntennaWeights,
    rss1_mw: f64,
    w2: &AntennaWeights,
    rss2_mw: f64,
) -> AntennaWeights {
    combine_weights_multi(&[(w1.clone(), rss1_mw), (w2.clone(), rss2_mw)])
}

/// k-user generalization: coefficient of user i's beam is proportional to
/// `1/Δ_i` (weaker users get more power), normalized to unit total power.
///
/// For k = 2 this reduces exactly to the paper's formula up to the common
/// scale removed by normalization:
/// `c1 : c2 = 1/Δ1 : 1/Δ2 = Δ2 : Δ1`.
pub fn combine_weights_multi(beams: &[(AntennaWeights, f64)]) -> AntennaWeights {
    assert!(!beams.is_empty(), "need at least one beam");
    let n = beams[0].0.len();
    let mut acc = AntennaWeights {
        w: vec![volcast_geom::Complex::ZERO; n],
    };
    for (w, rss_mw) in beams {
        assert_eq!(w.len(), n, "mismatched element counts");
        let coeff = 1.0 / rss_mw.max(1e-15);
        for (a, b) in acc.w.iter_mut().zip(&w.w) {
            *a += b.scale(coeff);
        }
    }
    acc.normalized()
}

/// Designs the transmit beam for a multicast group: either the best common
/// default sector, or a customized multi-lobe beam — whichever provides the
/// higher common (minimum) RSS. The paper notes that when all users already
/// share a strong default sector, the default beam should be used directly.
///
/// ```
/// use volcast_mmwave::{Channel, Codebook, MultiLobeDesigner};
/// use volcast_geom::Vec3;
///
/// let channel = Channel::default_setup();
/// let codebook = Codebook::default_for(&channel.array);
/// let designer = MultiLobeDesigner::new(&channel, &codebook);
/// // Users on opposite sides of the room: no single sector covers both.
/// let beam = designer.design(
///     &[Vec3::new(-2.5, 1.5, 0.0), Vec3::new(2.5, 1.5, 0.0)], &[]);
/// assert!(beam.customized);
/// assert!(beam.common_rss_dbm() > -68.0); // multicast-capable
/// ```
#[derive(Debug)]
pub struct MultiLobeDesigner<'a> {
    /// The propagation channel (owns the array geometry).
    pub channel: &'a Channel,
    /// The default sector codebook swept by the hardware.
    pub codebook: &'a Codebook,
    /// Memoized [`Channel::paths`] per receiver position. Path enumeration
    /// is pure room geometry, and the shared borrow of `channel` keeps that
    /// geometry frozen for the designer's whole lifetime, so entries can
    /// never go stale. Keyed by the position's raw f64 bits; `Mutex` so a
    /// shared designer can serve parallel trials.
    path_cache: Mutex<HashMap<[u64; 3], Arc<Vec<Path>>>>,
}

impl Clone for MultiLobeDesigner<'_> {
    fn clone(&self) -> Self {
        MultiLobeDesigner {
            channel: self.channel,
            codebook: self.codebook,
            path_cache: Mutex::new(self.path_cache.lock().unwrap().clone()),
        }
    }
}

/// The outcome of a group beam design.
#[derive(Debug, Clone)]
pub struct GroupBeam {
    /// Weights to transmit with.
    pub weights: AntennaWeights,
    /// Per-member RSS (dBm) under those weights.
    pub member_rss_dbm: Vec<f64>,
    /// Whether the custom multi-lobe beam beat the default codebook.
    pub customized: bool,
}

impl GroupBeam {
    /// The group's common RSS: the minimum across members.
    pub fn common_rss_dbm(&self) -> f64 {
        self.member_rss_dbm
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

impl<'a> MultiLobeDesigner<'a> {
    /// Creates a designer over a channel and codebook.
    pub fn new(channel: &'a Channel, codebook: &'a Codebook) -> Self {
        MultiLobeDesigner {
            channel,
            codebook,
            path_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Propagation paths to `rx`, memoized per position.
    fn cached_paths(&self, rx: Vec3) -> Arc<Vec<Path>> {
        let key = [rx.x.to_bits(), rx.y.to_bits(), rx.z.to_bits()];
        // The lock is held across the compute, so each unique position is
        // enumerated exactly once — which also makes the hit/miss counters
        // below independent of the worker budget.
        let mut cache = self.path_cache.lock().unwrap();
        if let Some(paths) = cache.get(&key) {
            obs::inc("mmwave.designer.path_cache_hits");
            return paths.clone();
        }
        obs::inc("mmwave.designer.path_cache_misses");
        let paths = Arc::new(self.channel.paths(rx));
        cache.insert(key, paths.clone());
        paths
    }

    /// One member prepared for codebook sweeps: memoized paths, blockage
    /// and steering resolved once instead of once per sector.
    fn prepare_member(&self, m: Vec3, blockers: &[Blocker]) -> PreparedRx {
        self.channel
            .prepare_rx_paths(&self.cached_paths(m), m, blockers)
    }

    /// The sector sweep over prepared members. Sectors are evaluated in
    /// parallel; the argmax runs serially in sector order afterwards, so
    /// the strict `>` keeps the first-best sector exactly as the serial
    /// sweep did.
    fn best_sector_prepared(&self, prepared: &[PreparedRx]) -> (usize, Vec<f64>) {
        obs::inc("mmwave.designer.sweeps");
        obs::add(
            "mmwave.designer.sectors_swept",
            self.codebook.sectors.len() as u64,
        );
        let per_sector: Vec<Vec<f64>> = par::par_map(&self.codebook.sectors, |sector| {
            prepared.iter().map(|p| p.rss_dbm(sector)).collect()
        });
        let mut best_idx = 0usize;
        let mut best_min = f64::NEG_INFINITY;
        let mut best_rss = vec![f64::NEG_INFINITY; prepared.len()];
        for (i, rss) in per_sector.into_iter().enumerate() {
            let min = rss.iter().copied().fold(f64::INFINITY, f64::min);
            if min > best_min {
                best_min = min;
                best_idx = i;
                best_rss = rss;
            }
        }
        (best_idx, best_rss)
    }

    /// Best *default-codebook* sector for the group: maximizes the minimum
    /// member RSS. Returns (weights index, per-member RSS).
    pub fn best_common_sector(&self, members: &[Vec3], blockers: &[Blocker]) -> (usize, Vec<f64>) {
        let prepared: Vec<PreparedRx> = members
            .iter()
            .map(|&m| self.prepare_member(m, blockers))
            .collect();
        self.best_sector_prepared(&prepared)
    }

    /// The custom combination over already-prepared members.
    fn custom_beam_prepared(&self, prepared: &[PreparedRx]) -> AntennaWeights {
        let per_user: Vec<(AntennaWeights, f64)> = prepared
            .iter()
            .map(|p| {
                // Individually best sector for this member (the AP knows it
                // from the sector sweep / predicted 6DoF motion).
                let (idx, rss) = self.best_sector_prepared(std::slice::from_ref(p));
                let w = self.codebook.sectors[idx].clone();
                (w, crate::calib::dbm_to_mw(rss[0]))
            })
            .collect();
        combine_weights_multi(&per_user)
    }

    /// Designs the custom multi-lobe beam for the group: combine each
    /// member's individually-best sector, weighted by measured RSS.
    pub fn custom_beam(&self, members: &[Vec3], blockers: &[Blocker]) -> AntennaWeights {
        let prepared: Vec<PreparedRx> = members
            .iter()
            .map(|&m| self.prepare_member(m, blockers))
            .collect();
        self.custom_beam_prepared(&prepared)
    }

    /// Full group beam design: returns whichever of (best common default
    /// sector, customized multi-lobe beam) yields the higher common RSS.
    pub fn design(&self, members: &[Vec3], blockers: &[Blocker]) -> GroupBeam {
        assert!(!members.is_empty());
        let _span = obs::span("mmwave.designer.design");
        obs::inc("mmwave.designer.designs");
        let prepared: Vec<PreparedRx> = members
            .iter()
            .map(|&m| self.prepare_member(m, blockers))
            .collect();
        let (idx, default_rss) = self.best_sector_prepared(&prepared);
        let default_min = default_rss.iter().copied().fold(f64::INFINITY, f64::min);

        if members.len() == 1 {
            return GroupBeam {
                weights: self.codebook.sectors[idx].clone(),
                member_rss_dbm: default_rss,
                customized: false,
            };
        }

        let custom = self.custom_beam_prepared(&prepared);
        let custom_rss: Vec<f64> = prepared.iter().map(|p| p.rss_dbm(&custom)).collect();
        let custom_min = custom_rss.iter().copied().fold(f64::INFINITY, f64::min);

        if custom_min > default_min {
            obs::inc("mmwave.designer.customized");
            GroupBeam {
                weights: custom,
                member_rss_dbm: custom_rss,
                customized: true,
            }
        } else {
            GroupBeam {
                weights: self.codebook.sectors[idx].clone(),
                member_rss_dbm: default_rss,
                customized: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PlanarArray;
    use volcast_geom::{Complex, Spherical};

    fn setup() -> (Channel, Codebook) {
        let ch = Channel::default_setup();
        let cb = Codebook::default_for(&ch.array);
        (ch, cb)
    }

    #[test]
    fn combined_weights_have_unit_power() {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let w1 = array.beam_toward(Spherical::new(-0.5, 0.0));
        let w2 = array.beam_toward(Spherical::new(0.5, 0.0));
        let c = combine_weights(&w1, 1e-6, &w2, 2e-6);
        assert!((c.power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_user_formula_matches_paper() {
        // Manual check: with Δ1 = 1, Δ2 = 3 the coefficients must be in
        // ratio Δ2 : Δ1 = 3 : 1 before normalization.
        let w1 = AntennaWeights {
            w: vec![Complex::ONE, Complex::ZERO],
        };
        let w2 = AntennaWeights {
            w: vec![Complex::ZERO, Complex::ONE],
        };
        let c = combine_weights(&w1, 1.0, &w2, 3.0);
        let ratio = c.w[0].abs() / c.w[1].abs();
        assert!((ratio - 3.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn weaker_user_gets_more_power() {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let dir1 = Spherical::new(-0.6, 0.0);
        let dir2 = Spherical::new(0.6, 0.0);
        let w1 = array.beam_toward(dir1);
        let w2 = array.beam_toward(dir2);
        // User 1 is much weaker (RSS 10x lower).
        let c = combine_weights(&w1, 0.1e-6, &w2, 1e-6);
        let g1 = array.gain(&c, dir1);
        let g2 = array.gain(&c, dir2);
        assert!(
            g1 > g2,
            "weak user's lobe {g1} should exceed strong user's {g2}"
        );
    }

    #[test]
    fn two_lobes_beat_single_sector_for_spread_users() {
        let (ch, cb) = setup();
        // Users on opposite sides of the room: far apart in azimuth.
        let users = [Vec3::new(-2.5, 1.5, 0.0), Vec3::new(2.5, 1.5, 0.0)];
        let d = MultiLobeDesigner::new(&ch, &cb);
        let (_, default_rss) = d.best_common_sector(&users, &[]);
        let default_min = default_rss.iter().copied().fold(f64::INFINITY, f64::min);
        let custom = d.custom_beam(&users, &[]);
        let custom_min = users
            .iter()
            .map(|&u| ch.rss_dbm(&custom, u, &[]))
            .fold(f64::INFINITY, f64::min);
        assert!(
            custom_min > default_min + 3.0,
            "custom {custom_min} dBm vs default {default_min} dBm"
        );
    }

    #[test]
    fn design_prefers_default_for_colocated_users() {
        let (ch, cb) = setup();
        // Two users standing shoulder to shoulder: one sector covers both.
        let users = [Vec3::new(0.0, 1.5, 0.0), Vec3::new(0.25, 1.5, 0.0)];
        let d = MultiLobeDesigner::new(&ch, &cb);
        let beam = d.design(&users, &[]);
        // Common RSS must be strong either way; and for such users the
        // default sector is typically already optimal.
        assert!(beam.common_rss_dbm() > -60.0);
    }

    #[test]
    fn design_customizes_for_spread_users() {
        let (ch, cb) = setup();
        let users = [Vec3::new(-2.5, 1.5, 0.0), Vec3::new(2.5, 1.5, 0.0)];
        let d = MultiLobeDesigner::new(&ch, &cb);
        let beam = d.design(&users, &[]);
        assert!(
            beam.customized,
            "spread users should trigger the custom beam"
        );
        assert_eq!(beam.member_rss_dbm.len(), 2);
    }

    #[test]
    fn single_user_design_uses_codebook() {
        let (ch, cb) = setup();
        let d = MultiLobeDesigner::new(&ch, &cb);
        let beam = d.design(&[Vec3::new(1.0, 1.5, 0.0)], &[]);
        assert!(!beam.customized);
        assert_eq!(beam.member_rss_dbm.len(), 1);
    }

    #[test]
    fn design_never_worse_than_default() {
        let (ch, cb) = setup();
        let d = MultiLobeDesigner::new(&ch, &cb);
        for users in [
            vec![Vec3::new(-1.0, 1.5, 1.0), Vec3::new(2.0, 1.3, -2.0)],
            vec![
                Vec3::new(-2.0, 1.5, 0.0),
                Vec3::new(0.0, 1.5, -2.0),
                Vec3::new(2.0, 1.5, 0.0),
            ],
        ] {
            let (_, default_rss) = d.best_common_sector(&users, &[]);
            let default_min = default_rss.iter().copied().fold(f64::INFINITY, f64::min);
            let beam = d.design(&users, &[]);
            assert!(beam.common_rss_dbm() >= default_min - 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn empty_group_panics() {
        let (ch, cb) = setup();
        let d = MultiLobeDesigner::new(&ch, &cb);
        let _ = d.design(&[], &[]);
    }
}

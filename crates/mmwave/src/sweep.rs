//! Allocation-free, bound-pruned codebook sweeps for the campus hot path.
//!
//! A full sector sweep evaluates every codebook sector against every usable
//! propagation path — 48 complex dot products of 32 elements per receiver.
//! For the DFT codebook those dot products have a closed form: the sector
//! weights are the conjugated steering vector toward the sector direction
//! (normalized), so the response magnitude toward a path factors into two
//! Dirichlet kernels, one per array axis:
//!
//! ```text
//! |w_s^T a_p| = s * |sin(nx·ψx)/sin(ψx)| * |sin(ny·ψy)/sin(ψy)|
//!   ψx = (k·d/2)·(u_p - u_s),  ψy = (k·d/2)·(v_p - v_s)
//! ```
//!
//! [`SweepEngine`] precomputes per-sector trig tables once per codebook and
//! per-path trig tables once per receiver ([`SweepRx::prepare`]), then turns
//! each (sector, path) amplitude bound into ~20 flops with no
//! transcendentals. The bounds carry explicit floating-point safety margins
//! so a pruned sector is *guaranteed* (not just likely) to lose against the
//! best exact value seen so far — the pruned sweep returns **bit-identical**
//! winners and RSS values to [`MultiLobeDesigner::best_common_sector`],
//! which existing tests and the campus outcome hash pin down.
//!
//! Everything here reuses caller-owned buffers: after warm-up, sweeps
//! allocate nothing, which the campus epoch loop's counting-allocator gate
//! relies on.
//!
//! [`MultiLobeDesigner::best_common_sector`]:
//!     crate::MultiLobeDesigner::best_common_sector

use crate::array::element_pattern;
use crate::calib;
use crate::channel::{Blocker, Channel, Path};
use crate::codebook::Codebook;
use volcast_geom::{Complex, Vec3};

/// Per-sector trig table: sin/cos of `ψ`-halves at the sector direction,
/// plus the sector's maximum per-element weight magnitude (the `s` in the
/// Dirichlet product, rounded up).
#[derive(Debug, Clone, Copy)]
struct SectorTrig {
    /// `max_i |w_i|`, scaled up by a relative margin.
    s_rt: f64,
    sin_bx: f64,
    cos_bx: f64,
    sin_bxn: f64,
    cos_bxn: f64,
    sin_by: f64,
    cos_by: f64,
    sin_byn: f64,
    cos_byn: f64,
}

/// A pruned-sweep evaluator for one `(channel, codebook)` pair.
///
/// Immutable and `Sync` once built: all per-receiver mutable state lives in
/// [`SweepRx`], so one engine can serve many parallel room workers.
///
/// If the codebook's sectors are *not* the conjugate-beamforming weights of
/// its listed directions (a custom codebook), the engine falls back to
/// exact-only mode: every sector bound is `+∞`, nothing is pruned, and the
/// sweep degenerates to the plain exhaustive scan — still bit-identical,
/// just not faster.
#[derive(Debug)]
pub struct SweepEngine<'a> {
    channel: &'a Channel,
    codebook: &'a Codebook,
    /// `k·d/2`: half the per-element phase advance per unit direction
    /// cosine.
    half_kd: f64,
    nxf: f64,
    nyf: f64,
    elements: usize,
    /// Per-sector trig tables; empty in exact-only fallback mode.
    sectors: Vec<SectorTrig>,
}

impl<'a> SweepEngine<'a> {
    /// Builds the engine, verifying that each codebook sector equals
    /// `beam_toward(direction)` bit-for-bit (the DFT structure the Dirichlet
    /// bound depends on). On mismatch the engine still works, exact-only.
    pub fn new(channel: &'a Channel, codebook: &'a Codebook) -> Self {
        let array = &channel.array;
        let elements = array.elements();
        let half_kd = 0.5
            * (2.0 * std::f64::consts::PI / calib::WAVELENGTH_M)
            * (array.spacing_wl * calib::WAVELENGTH_M);
        let structured = codebook.sectors.len() == codebook.directions.len()
            && codebook
                .sectors
                .iter()
                .zip(&codebook.directions)
                .all(|(s, &d)| s.len() == elements && *s == array.beam_toward(d));
        let sectors = if structured {
            codebook
                .sectors
                .iter()
                .zip(&codebook.directions)
                .map(|(sec, dir)| {
                    let s2_max = sec.w.iter().map(|c| c.norm_sq()).fold(0.0f64, f64::max);
                    let u = dir.azimuth.sin() * dir.elevation.cos();
                    let v = dir.elevation.sin();
                    let (sin_bx, cos_bx) = (half_kd * u).sin_cos();
                    let (sin_bxn, cos_bxn) = (array.nx as f64 * half_kd * u).sin_cos();
                    let (sin_by, cos_by) = (half_kd * v).sin_cos();
                    let (sin_byn, cos_byn) = (array.ny as f64 * half_kd * v).sin_cos();
                    SectorTrig {
                        s_rt: s2_max.sqrt() * (1.0 + 1e-9),
                        sin_bx,
                        cos_bx,
                        sin_bxn,
                        cos_bxn,
                        sin_by,
                        cos_by,
                        sin_byn,
                        cos_byn,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        SweepEngine {
            channel,
            codebook,
            half_kd,
            nxf: array.nx as f64,
            nyf: array.ny as f64,
            elements,
            sectors,
        }
    }

    /// The channel this engine sweeps.
    pub fn channel(&self) -> &'a Channel {
        self.channel
    }

    /// The codebook this engine sweeps.
    pub fn codebook(&self) -> &'a Codebook {
        self.codebook
    }

    /// Best single-receiver sector: `(sector index, RSS dBm)`, bit-identical
    /// to the exhaustive argmax with first-winner tie-breaking. Results are
    /// cached on the receiver, so repeat calls (and the custom-beam
    /// combination, which needs every member's individual best) are free.
    pub fn best_sector(&self, rx: &mut SweepRx) -> (usize, f64) {
        if let Some(best) = rx.best {
            return best;
        }
        // Seed: exactly evaluate the sector with the largest bound, which
        // is usually the true winner; its value prunes most of the rest.
        let mut j = 0usize;
        let mut jb = f64::NEG_INFINITY;
        for (s, &b) in rx.bounds.iter().enumerate() {
            if b > jb {
                jb = b;
                j = s;
            }
        }
        let seed = rx.eval_sector(self, j);
        let mut thr = calib::dbm_to_mw(seed) * (1.0 - 1e-9);
        let mut best_idx = 0usize;
        let mut best = f64::NEG_INFINITY;
        for s in 0..rx.bounds.len() {
            if rx.bounds[s] <= thr {
                continue;
            }
            let v = rx.eval_sector(self, s);
            if v > best {
                best = v;
                best_idx = s;
                let t = calib::dbm_to_mw(best) * (1.0 - 1e-9);
                if t > thr {
                    thr = t;
                }
            }
        }
        rx.best = Some((best_idx, best));
        (best_idx, best)
    }

    /// Best common sector for a member set: maximizes the minimum member
    /// RSS with first-winner tie-breaking, bit-identical to the exhaustive
    /// scan. On return `rss_out` holds the winning sector's per-member RSS
    /// in member order (all `-∞` if nothing is reachable), matching the
    /// exhaustive sweep's vector. `tmp` is scratch of the same shape.
    pub fn best_joint(
        &self,
        rxs: &mut [SweepRx],
        members: &[usize],
        tmp: &mut Vec<f64>,
        rss_out: &mut Vec<f64>,
    ) -> usize {
        let m = members.len();
        rss_out.clear();
        rss_out.resize(m, f64::NEG_INFINITY);
        let nsec = self.codebook.sectors.len();
        // Seed: the sector with the largest min-over-members bound.
        let mut j = 0usize;
        let mut jb = f64::NEG_INFINITY;
        for s in 0..nsec {
            let mut mn = f64::INFINITY;
            for &mi in members {
                mn = mn.min(rxs[mi].bounds[s]);
            }
            if mn > jb {
                jb = mn;
                j = s;
            }
        }
        let mut seed_min = f64::INFINITY;
        for &mi in members {
            seed_min = seed_min.min(rxs[mi].eval_sector(self, j));
        }
        let mut thr = calib::dbm_to_mw(seed_min) * (1.0 - 1e-9);
        let mut best_idx = 0usize;
        let mut best_min = f64::NEG_INFINITY;
        'sectors: for s in 0..nsec {
            // Prune: the sector loses if any single member's bound already
            // cannot beat the best min seen so far.
            for &mi in members {
                if rxs[mi].bounds[s] <= thr {
                    continue 'sectors;
                }
            }
            tmp.clear();
            let mut mn = f64::INFINITY;
            for &mi in members {
                let v = rxs[mi].eval_sector(self, s);
                if v <= best_min {
                    // min-over-members ≤ v ≤ best_min: cannot strictly
                    // improve, and the exhaustive scan would not update on
                    // ties either. Abort the member loop early.
                    continue 'sectors;
                }
                tmp.push(v);
                mn = mn.min(v);
            }
            if mn > best_min {
                best_min = mn;
                best_idx = s;
                std::mem::swap(tmp, rss_out);
                let t = calib::dbm_to_mw(best_min) * (1.0 - 1e-9);
                if t > thr {
                    thr = t;
                }
            }
        }
        best_idx
    }

    /// The custom multi-lobe combination for a member set, written into
    /// `acc` — bit-identical to `combine_weights_multi` over each member's
    /// individually-best sector weighted by its linear RSS (the program
    /// behind [`MultiLobeDesigner::custom_beam`]). Member bests come from
    /// the [`SweepEngine::best_sector`] cache, so after an assign-phase
    /// sweep this costs only the accumulation itself.
    ///
    /// [`MultiLobeDesigner::custom_beam`]: crate::MultiLobeDesigner::custom_beam
    pub fn combine_into(&self, rxs: &mut [SweepRx], members: &[usize], acc: &mut Vec<Complex>) {
        acc.clear();
        acc.resize(self.elements, Complex::ZERO);
        for &mi in members {
            let (idx, dbm) = self.best_sector(&mut rxs[mi]);
            let coeff = 1.0 / calib::dbm_to_mw(dbm).max(1e-15);
            for (a, b) in acc.iter_mut().zip(&self.codebook.sectors[idx].w) {
                *a += b.scale(coeff);
            }
        }
        // `AntennaWeights::normalized`, in place.
        let p: f64 = acc.iter().map(|c| c.norm_sq()).sum();
        if p > 0.0 {
            let s = 1.0 / p.sqrt();
            for c in acc.iter_mut() {
                *c = c.scale(s);
            }
        }
    }
}

/// Per-receiver sweep state: flattened prepared paths, per-sector upper
/// bounds, and a lazily-filled exact-RSS cache. One instance per
/// `(AP, user)` pair, reused across epochs — `prepare` only rewrites
/// contents, so steady-state reuse allocates nothing.
#[derive(Debug, Default)]
pub struct SweepRx {
    n_paths: usize,
    /// Path steering vectors, row-major `n_paths × elements`.
    steer: Vec<Complex>,
    /// Per-path total loss (dB).
    loss_db: Vec<f64>,
    /// Per-path element-pattern factor.
    element: Vec<f64>,
    /// Per-path `dbm_to_mw(TX + RX - loss)`, scaled up by a margin: the
    /// linear power the path would deliver at unit gain.
    c_mw: Vec<f64>,
    /// Per-path sin/cos of `ψ`-halves:
    /// `[sin ax, cos ax, sin axn, cos axn, sin ay, cos ay, sin ayn, cos ayn]`.
    ptrig: Vec<[f64; 8]>,
    /// Scratch for path enumeration.
    paths_tmp: Vec<Path>,
    /// Per-sector RSS upper bound in linear mW, margins folded in.
    bounds: Vec<f64>,
    /// Per-sector exact RSS cache (dBm); `NaN` = not yet evaluated. Real
    /// RSS values are never `NaN` (they can be `-∞`), so `NaN` is a safe
    /// sentinel.
    cache: Vec<f64>,
    /// Cached [`SweepEngine::best_sector`] result.
    best: Option<(usize, f64)>,
}

impl SweepRx {
    /// A fresh, empty receiver slot.
    pub fn new() -> Self {
        SweepRx::default()
    }

    /// (Re)prepares the receiver at `pos` with the given blockers:
    /// enumerates paths, caches their steering rows and trig tables, and
    /// computes every sector's RSS upper bound. Clears the exact cache.
    pub fn prepare(&mut self, engine: &SweepEngine, pos: Vec3, blockers: &[Blocker]) {
        let channel = engine.channel;
        let array = &channel.array;
        channel.paths_into(pos, &mut self.paths_tmp);
        self.n_paths = 0;
        self.steer.clear();
        self.loss_db.clear();
        self.element.clear();
        self.c_mw.clear();
        self.ptrig.clear();
        let paths = std::mem::take(&mut self.paths_tmp);
        for path in &paths {
            // Same filter and order as `Channel::prepare_rx_paths`.
            let Some(dir) = array.local_direction(path.via - array.position) else {
                continue;
            };
            let loss_db = channel.path_loss_db(path, pos, blockers);
            array.steering_into(dir, &mut self.steer);
            self.loss_db.push(loss_db);
            self.element.push(element_pattern(dir));
            self.c_mw.push(
                calib::dbm_to_mw(calib::TX_POWER_DBM + calib::RX_GAIN_DBI - loss_db) * (1.0 + 1e-9),
            );
            let u = dir.azimuth.sin() * dir.elevation.cos();
            let v = dir.elevation.sin();
            let (sin_ax, cos_ax) = (engine.half_kd * u).sin_cos();
            let (sin_axn, cos_axn) = (engine.nxf * engine.half_kd * u).sin_cos();
            let (sin_ay, cos_ay) = (engine.half_kd * v).sin_cos();
            let (sin_ayn, cos_ayn) = (engine.nyf * engine.half_kd * v).sin_cos();
            self.ptrig.push([
                sin_ax, cos_ax, sin_axn, cos_axn, sin_ay, cos_ay, sin_ayn, cos_ayn,
            ]);
            self.n_paths += 1;
        }
        self.paths_tmp = paths;

        let nsec = engine.codebook.sectors.len();
        self.cache.clear();
        self.cache.resize(nsec, f64::NAN);
        self.best = None;
        self.bounds.clear();
        if engine.sectors.is_empty() {
            // Exact-only fallback: nothing prunes.
            self.bounds.resize(nsec, f64::INFINITY);
            return;
        }
        for st in &engine.sectors {
            let mut sum = 0.0f64;
            for (p, t) in self.ptrig.iter().enumerate() {
                // sin(a - b) = sin a · cos b - cos a · sin b, per axis, for
                // both the denominator (ψ) and numerator (n·ψ) angles.
                let dx_den = (t[0] * st.cos_bx - t[1] * st.sin_bx).abs();
                let dx = if dx_den < 1e-9 {
                    engine.nxf
                } else {
                    let dx_num = (t[2] * st.cos_bxn - t[3] * st.sin_bxn).abs();
                    (dx_num / dx_den).min(engine.nxf)
                };
                let dy_den = (t[4] * st.cos_by - t[5] * st.sin_by).abs();
                let dy = if dy_den < 1e-9 {
                    engine.nyf
                } else {
                    let dy_num = (t[6] * st.cos_byn - t[7] * st.sin_byn).abs();
                    (dy_num / dy_den).min(engine.nyf)
                };
                // Amplitude bound with a relative margin for the Dirichlet
                // identity's own rounding and an absolute margin for the
                // catastrophic-cancellation regime near ψ ≈ 0 (den cut off
                // at 1e-9, so absolute trig error can reach ~1e-7 on the
                // quotient — 1e-5 dominates it with room to spare).
                let amp = st.s_rt * dx * dy * (1.0 + 1e-6) + 1e-5;
                sum += self.c_mw[p] * amp * amp * self.element[p] * (1.0 + 1e-6);
            }
            self.bounds.push(sum * (1.0 + 1e-9));
        }
    }

    /// Exact RSS (dBm) of an arbitrary weight vector against the prepared
    /// paths — the same float program as [`PreparedRx::rss_dbm`], operation
    /// for operation.
    ///
    /// [`PreparedRx::rss_dbm`]: crate::PreparedRx::rss_dbm
    pub fn eval_weights(&self, weights: &[Complex]) -> f64 {
        let ne = weights.len();
        let mut total_mw = 0.0f64;
        for p in 0..self.n_paths {
            let row = &self.steer[p * ne..(p + 1) * ne];
            let mut acc = Complex::ZERO;
            for (wi, ai) in weights.iter().zip(row) {
                acc += *wi * *ai;
            }
            let gain = acc.norm_sq() * self.element[p];
            if gain <= 0.0 {
                continue;
            }
            let rx_dbm =
                calib::TX_POWER_DBM + 10.0 * gain.log10() + calib::RX_GAIN_DBI - self.loss_db[p];
            total_mw += calib::dbm_to_mw(rx_dbm);
        }
        calib::mw_to_dbm(total_mw)
    }

    /// Exact RSS of codebook sector `s`, memoized per prepare.
    pub fn eval_sector(&mut self, engine: &SweepEngine, s: usize) -> f64 {
        let v = self.cache[s];
        if !v.is_nan() {
            return v;
        }
        let v = self.eval_weights(&engine.codebook.sectors[s].w);
        self.cache[s] = v;
        v
    }

    /// The cached [`SweepEngine::best_sector`] result, if one was computed
    /// since the last `prepare`.
    pub fn cached_best(&self) -> Option<(usize, f64)> {
        self.best
    }

    /// Number of usable paths found by the last `prepare`.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::AntennaWeights;
    use crate::channel::Room;
    use crate::multilobe::MultiLobeDesigner;
    use crate::PlanarArray;
    use volcast_util::rng::Rng;

    fn setups() -> Vec<Channel> {
        let mut reflective = Channel::default_setup();
        reflective.room.floor_reflection = true;
        let campus_like = Channel {
            room: Room {
                width: 12.0,
                depth: 9.0,
                height: 3.2,
                floor_reflection: false,
            },
            array: PlanarArray::airfide(
                volcast_geom::Vec3::new(-3.0, 2.9, 4.3),
                volcast_geom::Vec3::new(0.3, -0.45, -1.0),
            ),
        };
        vec![Channel::default_setup(), reflective, campus_like]
    }

    fn random_positions(channel: &Channel, rng: &mut Rng, n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    (rng.gen_range(0.0..1.0) - 0.5) * channel.room.width * 0.95,
                    0.4 + rng.gen_range(0.0..1.0) * (channel.room.height - 0.6),
                    (rng.gen_range(0.0..1.0) - 0.5) * channel.room.depth * 0.95,
                )
            })
            .collect()
    }

    #[test]
    fn singleton_sweep_is_bit_identical() {
        for (ci, channel) in setups().into_iter().enumerate() {
            let codebook = Codebook::default_for(&channel.array);
            let designer = MultiLobeDesigner::new(&channel, &codebook);
            let engine = SweepEngine::new(&channel, &codebook);
            assert!(
                !engine.sectors.is_empty(),
                "setup {ci} should be structured"
            );
            let mut rng = Rng::seed_from_u64(0xC0FFEE + ci as u64);
            let mut rx = SweepRx::new();
            let mut pruned = 0usize;
            for pos in random_positions(&channel, &mut rng, 80) {
                let (want_idx, want_rss) = designer.best_common_sector(&[pos], &[]);
                rx.prepare(&engine, pos, &[]);
                let (got_idx, got_dbm) = engine.best_sector(&mut rx);
                assert_eq!(got_idx, want_idx, "sector index diverged at {pos:?}");
                assert_eq!(
                    got_dbm.to_bits(),
                    want_rss[0].to_bits(),
                    "RSS diverged at {pos:?}: {got_dbm} vs {}",
                    want_rss[0]
                );
                pruned += rx.cache.iter().filter(|v| v.is_nan()).count();
            }
            // The bound must actually prune (wildly so) or the engine is
            // pointless; ~80 sweeps x 48 sectors gives plenty of room.
            assert!(pruned > 80 * 24, "only {pruned} sector evals pruned");
        }
    }

    #[test]
    fn singleton_sweep_matches_with_blockers() {
        let channel = Channel::default_setup();
        let codebook = Codebook::default_for(&channel.array);
        let designer = MultiLobeDesigner::new(&channel, &codebook);
        let engine = SweepEngine::new(&channel, &codebook);
        let mut rng = Rng::seed_from_u64(7);
        let mut rx = SweepRx::new();
        for pos in random_positions(&channel, &mut rng, 40) {
            let blockers = vec![
                Blocker {
                    center: Vec3::new(
                        (rng.gen_range(0.0..1.0) - 0.5) * 6.0,
                        0.0,
                        (rng.gen_range(0.0..1.0) - 0.5) * 6.0,
                    ),
                    radius: 0.25,
                    height: 1.8,
                },
                Blocker {
                    center: Vec3::new(
                        (rng.gen_range(0.0..1.0) - 0.5) * 6.0,
                        0.0,
                        (rng.gen_range(0.0..1.0) - 0.5) * 6.0,
                    ),
                    radius: 0.3,
                    height: 1.7,
                },
            ];
            let (want_idx, want_rss) = designer.best_common_sector(&[pos], &blockers);
            rx.prepare(&engine, pos, &blockers);
            let (got_idx, got_dbm) = engine.best_sector(&mut rx);
            assert_eq!(got_idx, want_idx);
            assert_eq!(got_dbm.to_bits(), want_rss[0].to_bits());
        }
    }

    #[test]
    fn joint_sweep_is_bit_identical() {
        for (ci, channel) in setups().into_iter().enumerate() {
            let codebook = Codebook::default_for(&channel.array);
            let designer = MultiLobeDesigner::new(&channel, &codebook);
            let engine = SweepEngine::new(&channel, &codebook);
            let mut rng = Rng::seed_from_u64(0xBEEF + ci as u64);
            let mut tmp = Vec::new();
            let mut rss = Vec::new();
            for group_size in [2usize, 3, 5, 8] {
                let positions = random_positions(&channel, &mut rng, group_size);
                let (want_idx, want_rss) = designer.best_common_sector(&positions, &[]);
                let mut rxs: Vec<SweepRx> = positions
                    .iter()
                    .map(|&p| {
                        let mut rx = SweepRx::new();
                        rx.prepare(&engine, p, &[]);
                        rx
                    })
                    .collect();
                let members: Vec<usize> = (0..group_size).collect();
                let got_idx = engine.best_joint(&mut rxs, &members, &mut tmp, &mut rss);
                assert_eq!(got_idx, want_idx, "group {group_size} in setup {ci}");
                assert_eq!(rss.len(), want_rss.len());
                for (g, w) in rss.iter().zip(&want_rss) {
                    assert_eq!(g.to_bits(), w.to_bits());
                }
            }
        }
    }

    #[test]
    fn combine_matches_custom_beam() {
        let channel = Channel::default_setup();
        let codebook = Codebook::default_for(&channel.array);
        let designer = MultiLobeDesigner::new(&channel, &codebook);
        let engine = SweepEngine::new(&channel, &codebook);
        let mut rng = Rng::seed_from_u64(99);
        let mut acc = Vec::new();
        for group_size in [2usize, 3, 4] {
            let positions = random_positions(&channel, &mut rng, group_size);
            let want = designer.custom_beam(&positions, &[]);
            let mut rxs: Vec<SweepRx> = positions
                .iter()
                .map(|&p| {
                    let mut rx = SweepRx::new();
                    rx.prepare(&engine, p, &[]);
                    rx
                })
                .collect();
            let members: Vec<usize> = (0..group_size).collect();
            engine.combine_into(&mut rxs, &members, &mut acc);
            assert_eq!(acc.len(), want.w.len());
            for (g, w) in acc.iter().zip(&want.w) {
                assert_eq!(g.re.to_bits(), w.re.to_bits());
                assert_eq!(g.im.to_bits(), w.im.to_bits());
            }
            // The custom beam evaluated through the sweep state matches the
            // prepared-receiver evaluation bit for bit.
            for (i, &p) in positions.iter().enumerate() {
                let direct = channel.prepare_rx(p, &[]).rss_dbm(&want);
                let via_sweep = rxs[i].eval_weights(&acc);
                assert_eq!(via_sweep.to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn unstructured_codebook_falls_back_to_exact() {
        let channel = Channel::default_setup();
        let mut codebook = Codebook::default_for(&channel.array);
        // Break the DFT structure: zero out one sector.
        let n = codebook.sectors[5].w.len();
        codebook.sectors[5] = AntennaWeights {
            w: vec![Complex::ZERO; n],
        };
        let designer = MultiLobeDesigner::new(&channel, &codebook);
        let engine = SweepEngine::new(&channel, &codebook);
        assert!(engine.sectors.is_empty(), "should detect the mismatch");
        let mut rng = Rng::seed_from_u64(3);
        let mut rx = SweepRx::new();
        for pos in random_positions(&channel, &mut rng, 20) {
            let (want_idx, want_rss) = designer.best_common_sector(&[pos], &[]);
            rx.prepare(&engine, pos, &[]);
            let (got_idx, got_dbm) = engine.best_sector(&mut rx);
            assert_eq!(got_idx, want_idx);
            assert_eq!(got_dbm.to_bits(), want_rss[0].to_bits());
        }
    }

    #[test]
    fn prepare_reuses_buffers() {
        let channel = Channel::default_setup();
        let codebook = Codebook::default_for(&channel.array);
        let engine = SweepEngine::new(&channel, &codebook);
        let mut rx = SweepRx::new();
        rx.prepare(&engine, Vec3::new(1.0, 1.5, -1.0), &[]);
        let _ = engine.best_sector(&mut rx);
        let caps = (
            rx.steer.capacity(),
            rx.bounds.capacity(),
            rx.cache.capacity(),
            rx.ptrig.capacity(),
            rx.paths_tmp.capacity(),
        );
        for i in 0..10 {
            let pos = Vec3::new(-2.0 + 0.4 * i as f64, 1.2, 2.0 - 0.3 * i as f64);
            rx.prepare(&engine, pos, &[]);
            let _ = engine.best_sector(&mut rx);
        }
        assert_eq!(
            caps,
            (
                rx.steer.capacity(),
                rx.bounds.capacity(),
                rx.cache.capacity(),
                rx.ptrig.capacity(),
                rx.paths_tmp.capacity(),
            ),
            "steady-state prepare must not reallocate"
        );
    }
}

//! Calibration constants, each documented against its paper anchor.
//!
//! The absolute numbers of a simulated channel are only meaningful relative
//! to a calibration; these constants are fitted once so that the simulated
//! distributions land in the ranges the paper measured, and never touched
//! by individual experiments.

/// Carrier frequency (Hz): 60 GHz, 802.11ad channel 2-ish.
pub const CARRIER_HZ: f64 = 60.48e9;

/// Carrier wavelength in meters.
pub const WAVELENGTH_M: f64 = 299_792_458.0 / CARRIER_HZ;

/// Transmit power in dBm (conducted, before array gain). Commercial
/// 802.11ad APs are EIRP-limited; with the 8x4 array's ~15 dB gain this
/// stays within the 40 dBm EIRP regulatory cap.
pub const TX_POWER_DBM: f64 = 10.0;

/// Fitted implementation-loss offset (dB) folded into every link budget:
/// cable/feed losses, polarization mismatch, imperfect element patterns.
///
/// Anchor: with the default room and 8x4 array, a dedicated beam to a user
/// at the room center measures about -58 dBm, and single users anywhere in
/// the walkable area stay above -68 dBm for ~96% of positions (Fig. 3b's
/// single-user curve).
pub const IMPLEMENTATION_LOSS_DB: f64 = 3.0;

/// Receiver antenna gain (dBi). Clients use a quasi-omni receive pattern
/// during data reception in our model.
pub const RX_GAIN_DBI: f64 = 0.0;

/// Oxygen absorption at 60 GHz, dB per meter (~16 dB/km).
pub const O2_ABSORPTION_DB_PER_M: f64 = 0.016;

/// Extra loss for one wall/ceiling reflection (dB). Indoor 60 GHz
/// first-order reflections typically arrive 8-15 dB below LoS.
pub const REFLECTION_LOSS_DB: f64 = 10.0;

/// Human-body blockage attenuation (dB). Measurements at 60 GHz report
/// 20-35 dB through-torso loss; blockage rarely zeroes the link because
/// reflected paths survive (paper §5: "blockage does not always cause link
/// outage") — with this fade the surviving wall reflections dominate a
/// blocked link's budget.
pub const BODY_BLOCKAGE_DB: f64 = 30.0;

/// Thermal noise floor (dBm) over the 1.76 GHz DMG channel with a ~10 dB
/// noise figure: -174 + 10*log10(1.76e9) + 10 ≈ -71.5.
pub const NOISE_FLOOR_DBM: f64 = -71.5;

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm. Returns `f64::NEG_INFINITY` for 0.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// Free-space path loss in dB at distance `d` meters for [`CARRIER_HZ`].
pub fn fspl_db(d: f64) -> f64 {
    let d = d.max(0.01);
    20.0 * d.log10() + 20.0 * CARRIER_HZ.log10() - 147.55
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_is_5mm_ish() {
        assert!((WAVELENGTH_M - 0.004958).abs() < 1e-4, "{WAVELENGTH_M}");
    }

    #[test]
    fn fspl_reference_points() {
        // Standard result: ~68 dB at 1 m, 60 GHz.
        assert!((fspl_db(1.0) - 68.0).abs() < 0.5, "{}", fspl_db(1.0));
        // +6 dB per doubling.
        assert!((fspl_db(2.0) - fspl_db(1.0) - 6.02).abs() < 0.01);
        // Guard against d = 0.
        assert!(fspl_db(0.0).is_finite());
    }

    #[test]
    fn dbm_conversions() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
        assert!((mw_to_dbm(1.0) - 0.0).abs() < 1e-12);
        assert!((mw_to_dbm(dbm_to_mw(-57.3)) + 57.3).abs() < 1e-9);
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn noise_floor_below_mcs_sensitivities() {
        // The lowest DMG sensitivity we model is -68 dBm; the floor must sit
        // below it for those links to close.
        const { assert!(NOISE_FLOOR_DBM < -68.0) }
    }
}

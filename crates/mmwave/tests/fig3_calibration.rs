//! Calibration tests: the simulated channel + codebook must reproduce the
//! Fig. 3 qualitative results:
//!
//! - 3b: the fraction of positions where the default codebook sustains
//!   -68 dBm (≈385 Mbps) drops sharply as multicast group size grows
//!   (paper: ~96.5% for 1 user, ~79% for 2, ~60% for 3),
//! - 3d: customized multi-lobe beams raise the common RSS of 2-user groups
//!   over the default codebook,
//! - 3e's mechanism: multicast with default beams can be *worse* than
//!   unicast for some geometries (unbalanced RSS), custom beams fix it.

use volcast_geom::Vec3;
use volcast_mmwave::{Channel, Codebook, McsTable, MultiLobeDesigner};
use volcast_util::rng::Rng;

/// Samples a plausible standing viewer position in the default room
/// (around the subject at the room center, 1-2.5 m away).
fn sample_position(rng: &mut Rng) -> Vec3 {
    let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let r = rng.gen_range(1.0..2.6);
    Vec3::new(r * theta.sin(), rng.gen_range(1.3..1.8), r * theta.cos())
}

fn fraction_above(samples: &[f64], threshold: f64) -> f64 {
    samples.iter().filter(|&&s| s >= threshold).count() as f64 / samples.len() as f64
}

#[test]
fn fig3b_default_codebook_degrades_with_group_size() {
    let ch = Channel::default_setup();
    let cb = Codebook::default_for(&ch.array);
    let designer = MultiLobeDesigner::new(&ch, &cb);
    let mut rng = Rng::seed_from_u64(3101);

    let trials = 150;
    let best_common = |k: usize, rng: &mut Rng| -> Vec<f64> {
        (0..trials)
            .map(|_| {
                let users: Vec<Vec3> = (0..k).map(|_| sample_position(rng)).collect();
                let (_, rss) = designer.best_common_sector(&users, &[]);
                rss.into_iter().fold(f64::INFINITY, f64::min)
            })
            .collect()
    };

    let one = best_common(1, &mut rng);
    let two = best_common(2, &mut rng);
    let three = best_common(3, &mut rng);

    let f1 = fraction_above(&one, -68.0);
    let f2 = fraction_above(&two, -68.0);
    let f3 = fraction_above(&three, -68.0);

    // Paper's ordering and rough magnitudes (96.5% / 79% / 60%).
    assert!(f1 > 0.9, "single-user coverage {f1}");
    assert!(f1 > f2, "1-user {f1} <= 2-user {f2}");
    assert!(f2 > f3, "2-user {f2} <= 3-user {f3}");
    assert!(f3 < 0.85, "3-user coverage {f3} suspiciously high");
}

#[test]
fn fig3d_custom_beams_raise_common_rss() {
    let ch = Channel::default_setup();
    let cb = Codebook::default_for(&ch.array);
    let designer = MultiLobeDesigner::new(&ch, &cb);
    let mut rng = Rng::seed_from_u64(3102);

    let trials = 100;
    let mut default_wins = 0usize;
    let mut improvements = Vec::new();
    for _ in 0..trials {
        let users = [sample_position(&mut rng), sample_position(&mut rng)];
        let (_, default_rss) = designer.best_common_sector(&users, &[]);
        let default_min = default_rss.into_iter().fold(f64::INFINITY, f64::min);
        let beam = designer.design(&users, &[]);
        let designed_min = beam.common_rss_dbm();
        assert!(
            designed_min >= default_min - 1e-9,
            "design must never lose to the default sector"
        );
        if !beam.customized {
            default_wins += 1;
        }
        improvements.push(designed_min - default_min);
    }
    let mean_gain: f64 = improvements.iter().sum::<f64>() / trials as f64;
    assert!(
        mean_gain > 1.5,
        "mean common-RSS improvement only {mean_gain} dB"
    );
    // The paper notes the default beam should be kept when both users are
    // already strong — both regimes must occur.
    assert!(default_wins > 0, "default beam never preferred");
    assert!(default_wins < trials, "custom beam never preferred");
}

#[test]
fn fig3e_mechanism_unbalanced_multicast_can_lose_to_unicast() {
    // With the default codebook, a 2-user multicast runs at the minimum
    // member MCS; when the sector is unbalanced this rate can be lower than
    // serving the better user alone — the pathology Fig. 3e reports.
    let ch = Channel::default_setup();
    let cb = Codebook::default_for(&ch.array);
    let designer = MultiLobeDesigner::new(&ch, &cb);
    let mcs = McsTable::dmg();
    let mut rng = Rng::seed_from_u64(3103);

    let mut found_pathology = false;
    let mut custom_fixes = false;
    for _ in 0..200 {
        let users = [sample_position(&mut rng), sample_position(&mut rng)];
        let (_, default_rss) = designer.best_common_sector(&users, &[]);
        let multicast_rate = mcs.multicast_rate_mbps(&default_rss);

        // Unicast: each user on their own best sector.
        let unicast_rates: Vec<f64> = users
            .iter()
            .map(|&u| {
                let (_, rss) = designer.best_common_sector(&[u], &[]);
                mcs.phy_rate_mbps(rss[0])
            })
            .collect();
        // Effective per-user rate when time-sharing unicast: half each.
        let unicast_effective = unicast_rates.iter().sum::<f64>() / 4.0;
        // Multicast delivers to both at once: per-user effective rate is
        // the group rate (both receive the same bits simultaneously).
        if multicast_rate < unicast_effective {
            found_pathology = true;
            let beam = designer.design(&users, &[]);
            let fixed_rate = mcs.multicast_rate_mbps(&beam.member_rss_dbm);
            if fixed_rate > multicast_rate {
                custom_fixes = true;
                break;
            }
        }
    }
    assert!(
        found_pathology,
        "no geometry showed the unbalanced-RSS pathology"
    );
    assert!(custom_fixes, "custom beams never repaired the pathology");
}

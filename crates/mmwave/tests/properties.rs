//! Property tests for the mmWave substrate.

use volcast_geom::{Spherical, Vec3};
use volcast_mmwave::{
    combine_weights_multi, Channel, Codebook, McsTable, MultiLobeDesigner, PlanarArray,
};
use volcast_util::prop::prelude::*;

fn arb_dir() -> impl Strategy<Value = Spherical> {
    (-1.2f64..1.2, -0.8f64..0.8).prop_map(|(az, el)| Spherical::new(az, el))
}

fn arb_room_pos() -> impl Strategy<Value = Vec3> {
    (-3.5f64..3.5, 0.8f64..2.0, -3.5f64..3.5).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn steered_beams_have_unit_power(dir in arb_dir()) {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let b = array.beam_toward(dir);
        prop_assert!((b.power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gain_peaks_at_steering_direction(dir in arb_dir(), probe in arb_dir()) {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let b = array.beam_toward(dir);
        // No probe direction may exceed the steered direction's gain
        // divided by its element pattern (the array factor peaks there).
        let g_target = array.gain(&b, dir);
        let g_probe = array.gain(&b, probe);
        let elem = |d: Spherical| (d.azimuth.cos() * d.elevation.cos()).max(0.01);
        prop_assert!(
            g_probe / elem(probe) <= g_target / elem(dir) * (1.0 + 1e-9),
            "array factor exceeded its steering peak"
        );
    }

    #[test]
    fn combined_weights_unit_power(dirs in prop::collection::vec(arb_dir(), 1..5),
                                   rss in prop::collection::vec(1e-9f64..1e-3, 1..5)) {
        let array = PlanarArray::airfide(Vec3::ZERO, Vec3::FORWARD);
        let k = dirs.len().min(rss.len());
        let beams: Vec<_> = (0..k)
            .map(|i| (array.beam_toward(dirs[i]), rss[i]))
            .collect();
        let c = combine_weights_multi(&beams);
        prop_assert!((c.power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rss_finite_inside_room(pos in arb_room_pos()) {
        let ch = Channel::default_setup();
        let rss = ch.rss_dedicated_beam(pos, &[]);
        prop_assert!(rss.is_finite());
        // Plausible indoor range for a 32-element array.
        prop_assert!((-95.0..=-30.0).contains(&rss), "rss {}", rss);
    }

    #[test]
    fn best_beam_at_least_dedicated(pos in arb_room_pos()) {
        let ch = Channel::default_setup();
        let ded = ch.rss_dedicated_beam(pos, &[]);
        let best = ch.rss_best_beam(pos, &[]);
        prop_assert!(best >= ded - 1e-9);
    }

    #[test]
    fn blockers_never_increase_rss(pos in arb_room_pos(),
                                   bx in -3.5f64..3.5, bz in -3.5f64..3.5) {
        let ch = Channel::default_setup();
        let blocker = volcast_mmwave::Blocker::person(Vec3::new(bx, 0.0, bz));
        let clear = ch.rss_dedicated_beam(pos, &[]);
        let blocked = ch.rss_dedicated_beam(pos, &[blocker]);
        prop_assert!(blocked <= clear + 1e-9);
    }

    #[test]
    fn designed_beam_never_below_best_sector(a in arb_room_pos(), b in arb_room_pos()) {
        let ch = Channel::default_setup();
        let cb = Codebook::default_for(&ch.array);
        let d = MultiLobeDesigner::new(&ch, &cb);
        let users = [a, b];
        let (_, rss) = d.best_common_sector(&users, &[]);
        let default_min = rss.into_iter().fold(f64::INFINITY, f64::min);
        let beam = d.design(&users, &[]);
        prop_assert!(beam.common_rss_dbm() >= default_min - 1e-9);
    }

    #[test]
    fn mcs_rate_monotone_in_rss(r1 in -90.0f64..-40.0, r2 in -90.0f64..-40.0) {
        let t = McsTable::dmg();
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(t.phy_rate_mbps(lo) <= t.phy_rate_mbps(hi));
    }

    #[test]
    fn multicast_rate_never_exceeds_any_member(rss in prop::collection::vec(-90.0f64..-40.0, 1..6)) {
        let t = McsTable::dmg();
        let group = t.multicast_rate_mbps(&rss);
        for &r in &rss {
            prop_assert!(group <= t.phy_rate_mbps(r) + 1e-9);
        }
    }
}

//! Multi-user video rate adaptation (§4.3) and the unified delivery
//! policy.
//!
//! Three ABR policies are implemented; the cross-layer one is the paper's:
//!
//! - [`AbrPolicy::BufferOnly`]: BBA-style — quality from buffer occupancy
//!   alone (the classic client-side baseline),
//! - [`AbrPolicy::ThroughputOnly`]: quality from the throughput EWMA,
//! - [`AbrPolicy::CrossLayer`]: quality from the cross-layer bandwidth
//!   prediction, plus *reactions* — prefetch for users with predicted
//!   bandwidth dips, regrouping when viewports drifted, proactive beam
//!   switching ahead of forecast blockages.
//!
//! Callers do not sequence ABR choice, distress clamping, and FEC rungs by
//! hand: [`RateAdapter::plan_delivery`] folds all three into one
//! [`DeliveryDecision`] carrying per-layer targets — the base quality, the
//! enhancement-layer count a layered session unicasts on top of the
//! multicast base, and the proactive XOR-parity [`FecRung`] the
//! degradation ladder selects from the user's distress level *before*
//! falling back to budgeted retransmits.

use crate::bandwidth::{BandwidthPredictor, CrossLayerInputs};
use volcast_pointcloud::{Ladder, QualityLevel};

/// Which adaptation policy a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrPolicy {
    /// Buffer-occupancy thresholds only.
    BufferOnly,
    /// Throughput-EWMA only.
    ThroughputOnly,
    /// The paper's cross-layer scheme.
    CrossLayer,
}

/// A reaction the adapter may request alongside the quality decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateAction {
    /// Prefetch future frames for this user while bandwidth lasts.
    Prefetch {
        /// User to prefetch for.
        user: usize,
        /// How many extra frames to push.
        frames: usize,
    },
    /// Re-run multicast grouping (viewport overlap changed).
    Regroup,
    /// Proactively steer this user's beam before a forecast blockage.
    BeamSwitch {
        /// Affected user.
        user: usize,
    },
}

/// One user's standing in the delivery group when a frame is planned — the
/// inputs [`RateAdapter::plan_delivery`] folds into a decision.
#[derive(Debug, Clone, Copy)]
pub struct GroupState<'a> {
    /// The user being planned for.
    pub user: usize,
    /// Cross-layer observations for this user.
    pub inputs: &'a CrossLayerInputs,
    /// Fraction of network time this user's content can use (e.g. `1/n`
    /// under fair unicast, more under multicast savings).
    pub share: f64,
    /// Fraction of the full frame the user actually fetches after
    /// visibility culling.
    pub needed_fraction: f64,
    /// Whether the session delivers layered (progressive) frames: base
    /// layer multicast to the whole group, enhancements unicast per user.
    pub layered: bool,
    /// Pinned quality (sessions running with `fixed_quality`): skips the
    /// ABR policy but still passes through distress clamping.
    pub fixed: Option<QualityLevel>,
}

/// A user's accumulated fault pressure (consecutive faulted frames tracked
/// by the session — outages, losses, stalls), driving the degradation
/// ladder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Distress {
    /// The distress level; 0 = fault-free.
    pub level: u32,
}

impl Distress {
    /// A fault-free user.
    pub fn calm() -> Distress {
        Distress { level: 0 }
    }

    /// Wraps a session-tracked distress level.
    pub fn new(level: u32) -> Distress {
        Distress { level }
    }
}

/// Proactive XOR-parity FEC overhead rung (see `volcast_net::fec`): how
/// much parity rides with a distressed user's payload so single chunk
/// erasures repair locally instead of consuming retransmit airtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FecRung {
    /// No parity: the link is clean.
    Off,
    /// One parity chunk per 4 payload chunks (25% overhead).
    Quarter,
    /// One parity chunk per 2 payload chunks (50% overhead).
    Half,
}

impl FecRung {
    /// Parity bytes as a fraction of payload bytes.
    pub fn overhead(&self) -> f64 {
        match self {
            FecRung::Off => 0.0,
            FecRung::Quarter => 0.25,
            FecRung::Half => 0.5,
        }
    }

    /// Payload chunks per parity group (0 = FEC disabled).
    pub fn group_chunks(&self) -> usize {
        match self {
            FecRung::Off => 0,
            FecRung::Quarter => 4,
            FecRung::Half => 2,
        }
    }
}

/// The unified per-user delivery decision: what quality to build, how many
/// layers to send, and how much proactive parity to spend.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryDecision {
    /// Quality of the base payload. Legacy (single-stream) delivery puts
    /// the whole clamped frame here; layered delivery pins the multicast
    /// base at the ladder's lowest level.
    pub base_quality: QualityLevel,
    /// Enhancement layers unicast on top of the base (0 for legacy
    /// delivery; layered delivery reaches `base + enhancements` =
    /// the clamped target level).
    pub enhancements: u8,
    /// Proactive-FEC rung for this user's bursts.
    pub fec: FecRung,
    /// The ABR target *before* distress clamping — callers compare against
    /// [`DeliveryDecision::quality`] to count degradation clamps.
    pub target_quality: QualityLevel,
    /// Requested reactions (prefetch, regroup, beam switch).
    pub actions: Vec<RateAction>,
}

impl DeliveryDecision {
    /// The quality level the user receives when every planned layer
    /// arrives: the base stepped up by `enhancements` (saturating at the
    /// top of the ladder).
    pub fn quality(&self) -> QualityLevel {
        let all = QualityLevel::ALL;
        let base = all
            .iter()
            .position(|&q| q == self.base_quality)
            .unwrap_or(0);
        all[(base + self.enhancements as usize).min(all.len() - 1)]
    }
}

/// The rate adapter: one instance per session, holding per-user predictors.
#[derive(Debug, Clone)]
pub struct RateAdapter {
    /// Active policy.
    pub policy: AbrPolicy,
    /// The canonical quality ladder decisions are made against.
    pub ladder: Ladder,
    /// Per-user cross-layer predictors.
    pub predictors: Vec<BandwidthPredictor>,
    /// Safety margin: use only this fraction of predicted bandwidth.
    pub safety: f64,
    /// Buffer level (frames) below which BufferOnly drops to Low.
    pub buffer_low: f64,
    /// Buffer level above which BufferOnly dares High.
    pub buffer_high: f64,
    /// Blockage-driven prefetch depth (frames).
    pub prefetch_frames: usize,
}

impl RateAdapter {
    /// Creates an adapter for `users` users.
    pub fn new(policy: AbrPolicy, users: usize) -> Self {
        RateAdapter {
            policy,
            ladder: Ladder::paper(),
            predictors: (0..users).map(|_| BandwidthPredictor::new()).collect(),
            safety: 0.85,
            buffer_low: 3.0,
            buffer_high: 7.0,
            prefetch_frames: 4,
        }
    }

    /// Feeds one user's measurements after a frame.
    pub fn observe(&mut self, user: usize, throughput_mbps: f64, rss_dbm: f64) {
        self.predictors[user].observe(throughput_mbps, rss_dbm);
    }

    /// Plans one user's delivery for the next frame: folds the ABR policy
    /// (or the session's pinned quality), the distress-driven degradation
    /// clamp, and the proactive-FEC rung into one [`DeliveryDecision`].
    ///
    /// Legacy (`layered: false`) decisions put the clamped target in
    /// `base_quality` with zero enhancements and FEC off — byte-identical
    /// behaviour to the old `decide` + `degrade` call pattern. Layered
    /// decisions pin the base at the ladder's lowest level (that is what
    /// the whole group multicasts), carry the remaining levels as
    /// enhancement unicasts, and engage parity as soon as the user shows
    /// distress — one rung *before* the ladder's budgeted-retransmit step,
    /// so single erasures stop costing retransmit airtime.
    pub fn plan_delivery(&self, group: &GroupState<'_>, distress: &Distress) -> DeliveryDecision {
        let (target, actions) = match group.fixed {
            Some(q) => (q, Vec::new()),
            None => self.target_quality(group),
        };
        let clamped = self.degrade(target, distress.level);
        if !group.layered {
            return DeliveryDecision {
                base_quality: clamped,
                enhancements: 0,
                fec: FecRung::Off,
                target_quality: target,
                actions,
            };
        }
        let fec = match distress.level {
            0 => FecRung::Off,
            1..=3 => FecRung::Quarter,
            _ => FecRung::Half,
        };
        DeliveryDecision {
            base_quality: QualityLevel::Low,
            enhancements: self.ladder.enhancement_layers(clamped) as u8,
            fec,
            target_quality: target,
            actions,
        }
    }

    /// The ABR rung: picks the target quality + reactions for one user.
    fn target_quality(&self, group: &GroupState<'_>) -> (QualityLevel, Vec<RateAction>) {
        let GroupState {
            user,
            inputs,
            share,
            needed_fraction,
            ..
        } = *group;
        let predictor = &self.predictors[user];
        let mut actions = Vec::new();

        let quality = match self.policy {
            AbrPolicy::BufferOnly => {
                if inputs.buffer_frames < self.buffer_low {
                    QualityLevel::Low
                } else if inputs.buffer_frames >= self.buffer_high {
                    QualityLevel::High
                } else {
                    QualityLevel::Medium
                }
            }
            AbrPolicy::ThroughputOnly => {
                let budget = predictor.predict_app_only_mbps(inputs) * self.safety * share
                    / needed_fraction.max(0.05);
                self.ladder.best_within(budget).unwrap_or(QualityLevel::Low)
            }
            AbrPolicy::CrossLayer => {
                let budget = predictor.predict_mbps(inputs) * self.safety * share
                    / needed_fraction.max(0.05);
                let q = self.ladder.best_within(budget).unwrap_or(QualityLevel::Low);
                if inputs.blockage_forecast {
                    // Paper's reactions: prefetch ahead of the dip and
                    // steer to a reflected path proactively.
                    actions.push(RateAction::Prefetch {
                        user,
                        frames: self.prefetch_frames,
                    });
                    actions.push(RateAction::BeamSwitch { user });
                }
                // A big gap between predicted and current PHY rate means
                // the geometry changed: regroup.
                if inputs.current_phy_rate_mbps > 0.0
                    && (inputs.predicted_phy_rate_mbps / inputs.current_phy_rate_mbps - 1.0).abs()
                        > 0.3
                {
                    actions.push(RateAction::Regroup);
                }
                q
            }
        };
        (quality, actions)
    }

    /// The graceful-degradation rung of the ladder: clamps a decided
    /// quality by the user's *distress* level. Light distress steps one
    /// level down; sustained distress pins the bottom of the ladder until
    /// the link proves itself again. Zero distress is the identity, so
    /// fault-free sessions are untouched.
    fn degrade(&self, quality: QualityLevel, distress: u32) -> QualityLevel {
        match distress {
            0..=1 => quality,
            2..=3 => self.ladder.step_down(quality, 1),
            _ => QualityLevel::Low,
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(AbrPolicy {
    BufferOnly,
    ThroughputOnly,
    CrossLayer
});
volcast_util::impl_json_enum!(RateAction { Prefetch { user, frames }, Regroup, BeamSwitch { user } });
volcast_util::impl_json_enum!(FecRung { Off, Quarter, Half });
volcast_util::impl_json_struct!(DeliveryDecision {
    base_quality,
    enhancements,
    fec,
    target_quality,
    actions
});

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(buffer: f64, current: f64, predicted: f64, blockage: bool) -> CrossLayerInputs {
        CrossLayerInputs {
            measured_throughput_mbps: 0.0,
            buffer_frames: buffer,
            blockage_forecast: blockage,
            predicted_phy_rate_mbps: predicted,
            current_phy_rate_mbps: current,
        }
    }

    fn warmed(policy: AbrPolicy, mbps: f64) -> RateAdapter {
        let mut a = RateAdapter::new(policy, 2);
        for _ in 0..20 {
            a.observe(0, mbps, -55.0);
            a.observe(1, mbps, -55.0);
        }
        a
    }

    /// Legacy plan for `user` with unit share and no culling.
    fn plan(
        a: &RateAdapter,
        user: usize,
        i: &CrossLayerInputs,
        share: f64,
        needed: f64,
    ) -> DeliveryDecision {
        a.plan_delivery(
            &GroupState {
                user,
                inputs: i,
                share,
                needed_fraction: needed,
                layered: false,
                fixed: None,
            },
            &Distress::calm(),
        )
    }

    #[test]
    fn buffer_only_thresholds() {
        let a = warmed(AbrPolicy::BufferOnly, 1000.0);
        let i = |b| inputs(b, 2000.0, 2000.0, false);
        assert_eq!(plan(&a, 0, &i(1.0), 1.0, 1.0).quality(), QualityLevel::Low);
        assert_eq!(
            plan(&a, 0, &i(5.0), 1.0, 1.0).quality(),
            QualityLevel::Medium
        );
        assert_eq!(plan(&a, 0, &i(9.0), 1.0, 1.0).quality(), QualityLevel::High);
    }

    #[test]
    fn throughput_only_scales_with_bandwidth() {
        // 1000 Mbps x 0.85 = 850 budget -> High (364) easily at share 1.
        let a = warmed(AbrPolicy::ThroughputOnly, 1000.0);
        let i = inputs(5.0, 1000.0, 1000.0, false);
        assert_eq!(plan(&a, 0, &i, 1.0, 1.0).quality(), QualityLevel::High);
        // share 1/4 -> 212 budget -> even Low (235) fails -> clamps Low.
        assert_eq!(plan(&a, 0, &i, 0.25, 1.0).quality(), QualityLevel::Low);
        // Visibility culling (needed_fraction 0.7) stretches the budget to
        // ~304 Mbps -> Medium (294) fits, High (364) does not.
        assert_eq!(plan(&a, 0, &i, 0.25, 0.7).quality(), QualityLevel::Medium);
        // Aggressive culling (0.5) fits even High: budget 425 > 364.
        assert_eq!(plan(&a, 0, &i, 0.25, 0.5).quality(), QualityLevel::High);
    }

    #[test]
    fn cross_layer_downgrades_on_predicted_dip() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let stable = plan(&a, 0, &inputs(5.0, 2502.5, 2502.5, false), 1.0, 1.0);
        assert_eq!(stable.quality(), QualityLevel::High);
        // Forecast collapse to 1/5 -> budget 170 -> Low.
        let dip = plan(&a, 0, &inputs(5.0, 2502.5, 500.5, false), 1.0, 1.0);
        assert_eq!(dip.quality(), QualityLevel::Low);
        // Throughput-only would have stayed High.
        let naive = warmed(AbrPolicy::ThroughputOnly, 1000.0);
        let naive = plan(&naive, 0, &inputs(5.0, 2502.5, 500.5, false), 1.0, 1.0);
        assert_eq!(naive.quality(), QualityLevel::High);
    }

    #[test]
    fn blockage_forecast_triggers_reactions() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let d = plan(&a, 1, &inputs(5.0, 2502.5, 2502.5, true), 1.0, 1.0);
        assert!(d
            .actions
            .iter()
            .any(|x| matches!(x, RateAction::Prefetch { user: 1, .. })));
        assert!(d.actions.contains(&RateAction::BeamSwitch { user: 1 }));
    }

    #[test]
    fn geometry_shift_triggers_regroup() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let d = plan(&a, 0, &inputs(5.0, 1000.0, 2000.0, false), 1.0, 1.0);
        assert!(d.actions.contains(&RateAction::Regroup));
        let stable = plan(&a, 0, &inputs(5.0, 1000.0, 1000.0, false), 1.0, 1.0);
        assert!(!stable.actions.contains(&RateAction::Regroup));
    }

    #[test]
    fn distress_clamps_fixed_and_adaptive_targets() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let i = inputs(5.0, 2502.5, 2502.5, false);
        let at = |fixed: Option<QualityLevel>, level: u32| {
            a.plan_delivery(
                &GroupState {
                    user: 0,
                    inputs: &i,
                    share: 1.0,
                    needed_fraction: 1.0,
                    layered: false,
                    fixed,
                },
                &Distress::new(level),
            )
        };
        // Zero / light distress: identity.
        assert_eq!(
            at(Some(QualityLevel::High), 0).quality(),
            QualityLevel::High
        );
        assert_eq!(at(Some(QualityLevel::Low), 1).quality(), QualityLevel::Low);
        // Moderate distress: one step down (saturating at the bottom).
        assert_eq!(
            at(Some(QualityLevel::High), 2).quality(),
            QualityLevel::Medium
        );
        assert_eq!(
            at(Some(QualityLevel::Medium), 3).quality(),
            QualityLevel::Low
        );
        assert_eq!(at(Some(QualityLevel::Low), 2).quality(), QualityLevel::Low);
        // Sustained distress: the bottom of the ladder.
        assert_eq!(at(Some(QualityLevel::High), 4).quality(), QualityLevel::Low);
        assert_eq!(
            at(Some(QualityLevel::High), 100).quality(),
            QualityLevel::Low
        );
        // The pre-clamp target is preserved for clamp accounting, and the
        // adaptive path clamps identically.
        assert_eq!(
            at(Some(QualityLevel::High), 4).target_quality,
            QualityLevel::High
        );
        let adaptive = at(None, 2);
        assert_eq!(adaptive.target_quality, QualityLevel::High);
        assert_eq!(adaptive.quality(), QualityLevel::Medium);
    }

    #[test]
    fn non_cross_layer_policies_emit_no_actions() {
        for policy in [AbrPolicy::BufferOnly, AbrPolicy::ThroughputOnly] {
            let a = warmed(policy, 1000.0);
            let d = plan(&a, 0, &inputs(1.0, 100.0, 50.0, true), 1.0, 1.0);
            assert!(d.actions.is_empty());
        }
    }

    #[test]
    fn layered_plans_split_base_and_enhancements() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let i = inputs(5.0, 2502.5, 2502.5, false);
        let at = |level: u32| {
            a.plan_delivery(
                &GroupState {
                    user: 0,
                    inputs: &i,
                    share: 1.0,
                    needed_fraction: 1.0,
                    layered: true,
                    fixed: None,
                },
                &Distress::new(level),
            )
        };
        // Clean link, High target: multicast base at Low + 2 enhancement
        // unicasts, no parity.
        let clean = at(0);
        assert_eq!(clean.base_quality, QualityLevel::Low);
        assert_eq!(clean.enhancements, 2);
        assert_eq!(clean.quality(), QualityLevel::High);
        assert_eq!(clean.fec, FecRung::Off);
        // Light distress: parity engages BEFORE quality falls (level 1 is
        // below the quality-clamp threshold).
        let light = at(1);
        assert_eq!(light.quality(), QualityLevel::High);
        assert_eq!(light.fec, FecRung::Quarter);
        // Moderate distress: one level down AND parity.
        let moderate = at(2);
        assert_eq!(moderate.quality(), QualityLevel::Medium);
        assert_eq!(moderate.enhancements, 1);
        assert_eq!(moderate.fec, FecRung::Quarter);
        // Sustained distress: base only, heavy parity.
        let heavy = at(5);
        assert_eq!(heavy.quality(), QualityLevel::Low);
        assert_eq!(heavy.enhancements, 0);
        assert_eq!(heavy.fec, FecRung::Half);
    }

    #[test]
    fn fec_rung_overheads() {
        assert_eq!(FecRung::Off.overhead(), 0.0);
        assert_eq!(FecRung::Quarter.overhead(), 0.25);
        assert_eq!(FecRung::Half.overhead(), 0.5);
        assert_eq!(FecRung::Off.group_chunks(), 0);
        assert_eq!(FecRung::Quarter.group_chunks(), 4);
        assert_eq!(FecRung::Half.group_chunks(), 2);
    }
}

//! Multi-user video rate adaptation (§4.3).
//!
//! Three policies are implemented; the cross-layer one is the paper's:
//!
//! - [`AbrPolicy::BufferOnly`]: BBA-style — quality from buffer occupancy
//!   alone (the classic client-side baseline),
//! - [`AbrPolicy::ThroughputOnly`]: quality from the throughput EWMA,
//! - [`AbrPolicy::CrossLayer`]: quality from the cross-layer bandwidth
//!   prediction, plus *reactions* — prefetch for users with predicted
//!   bandwidth dips, regrouping when viewports drifted, proactive beam
//!   switching ahead of forecast blockages.

use crate::bandwidth::{BandwidthPredictor, CrossLayerInputs};
use volcast_pointcloud::{QualityLadder, QualityLevel};

/// Which adaptation policy a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrPolicy {
    /// Buffer-occupancy thresholds only.
    BufferOnly,
    /// Throughput-EWMA only.
    ThroughputOnly,
    /// The paper's cross-layer scheme.
    CrossLayer,
}

/// A reaction the adapter may request alongside the quality decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateAction {
    /// Prefetch future frames for this user while bandwidth lasts.
    Prefetch {
        /// User to prefetch for.
        user: usize,
        /// How many extra frames to push.
        frames: usize,
    },
    /// Re-run multicast grouping (viewport overlap changed).
    Regroup,
    /// Proactively steer this user's beam before a forecast blockage.
    BeamSwitch {
        /// Affected user.
        user: usize,
    },
}

/// Per-frame adaptation decision for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct RateDecision {
    /// Chosen quality level.
    pub quality: QualityLevel,
    /// Requested reactions.
    pub actions: Vec<RateAction>,
}

/// The rate adapter: one instance per session, holding per-user predictors.
#[derive(Debug, Clone)]
pub struct RateAdapter {
    /// Active policy.
    pub policy: AbrPolicy,
    /// The quality ladder to pick from.
    pub ladder: QualityLadder,
    /// Per-user cross-layer predictors.
    pub predictors: Vec<BandwidthPredictor>,
    /// Safety margin: use only this fraction of predicted bandwidth.
    pub safety: f64,
    /// Buffer level (frames) below which BufferOnly drops to Low.
    pub buffer_low: f64,
    /// Buffer level above which BufferOnly dares High.
    pub buffer_high: f64,
    /// Blockage-driven prefetch depth (frames).
    pub prefetch_frames: usize,
}

impl RateAdapter {
    /// Creates an adapter for `users` users.
    pub fn new(policy: AbrPolicy, users: usize) -> Self {
        RateAdapter {
            policy,
            ladder: QualityLadder::default(),
            predictors: (0..users).map(|_| BandwidthPredictor::new()).collect(),
            safety: 0.85,
            buffer_low: 3.0,
            buffer_high: 7.0,
            prefetch_frames: 4,
        }
    }

    /// Feeds one user's measurements after a frame.
    pub fn observe(&mut self, user: usize, throughput_mbps: f64, rss_dbm: f64) {
        self.predictors[user].observe(throughput_mbps, rss_dbm);
    }

    /// Decides quality + actions for one user.
    ///
    /// `share` is the fraction of network time this user's content can use
    /// (e.g. `1/n` under fair unicast, more under multicast savings) —
    /// quality is chosen so the user's *full-frame* bitrate at that quality
    /// fits the predicted bandwidth times `share`... scaled by
    /// `needed_fraction`, the fraction of the full frame the user actually
    /// fetches after visibility culling.
    pub fn decide(
        &self,
        user: usize,
        inputs: &CrossLayerInputs,
        share: f64,
        needed_fraction: f64,
    ) -> RateDecision {
        let predictor = &self.predictors[user];
        let mut actions = Vec::new();

        let quality = match self.policy {
            AbrPolicy::BufferOnly => {
                if inputs.buffer_frames < self.buffer_low {
                    QualityLevel::Low
                } else if inputs.buffer_frames >= self.buffer_high {
                    QualityLevel::High
                } else {
                    QualityLevel::Medium
                }
            }
            AbrPolicy::ThroughputOnly => {
                let budget = predictor.predict_app_only_mbps(inputs) * self.safety * share
                    / needed_fraction.max(0.05);
                self.ladder.best_within(budget).unwrap_or(QualityLevel::Low)
            }
            AbrPolicy::CrossLayer => {
                let budget = predictor.predict_mbps(inputs) * self.safety * share
                    / needed_fraction.max(0.05);
                let q = self.ladder.best_within(budget).unwrap_or(QualityLevel::Low);
                if inputs.blockage_forecast {
                    // Paper's reactions: prefetch ahead of the dip and
                    // steer to a reflected path proactively.
                    actions.push(RateAction::Prefetch {
                        user,
                        frames: self.prefetch_frames,
                    });
                    actions.push(RateAction::BeamSwitch { user });
                }
                // A big gap between predicted and current PHY rate means
                // the geometry changed: regroup.
                if inputs.current_phy_rate_mbps > 0.0
                    && (inputs.predicted_phy_rate_mbps / inputs.current_phy_rate_mbps - 1.0).abs()
                        > 0.3
                {
                    actions.push(RateAction::Regroup);
                }
                q
            }
        };
        RateDecision { quality, actions }
    }

    /// The graceful-degradation rung of the ladder: clamps a decided
    /// quality by the user's *distress* level (consecutive faulted frames
    /// tracked by the session — outages, losses, stalls). Light distress
    /// steps one level down; sustained distress pins the bottom of the
    /// ladder until the link proves itself again. Zero distress is the
    /// identity, so fault-free sessions are untouched.
    pub fn degrade(&self, quality: QualityLevel, distress: u32) -> QualityLevel {
        match distress {
            0..=1 => quality,
            2..=3 => quality.lower().unwrap_or(quality),
            _ => QualityLevel::Low,
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_enum!(AbrPolicy {
    BufferOnly,
    ThroughputOnly,
    CrossLayer
});
volcast_util::impl_json_enum!(RateAction { Prefetch { user, frames }, Regroup, BeamSwitch { user } });
volcast_util::impl_json_struct!(RateDecision { quality, actions });

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(buffer: f64, current: f64, predicted: f64, blockage: bool) -> CrossLayerInputs {
        CrossLayerInputs {
            measured_throughput_mbps: 0.0,
            buffer_frames: buffer,
            blockage_forecast: blockage,
            predicted_phy_rate_mbps: predicted,
            current_phy_rate_mbps: current,
        }
    }

    fn warmed(policy: AbrPolicy, mbps: f64) -> RateAdapter {
        let mut a = RateAdapter::new(policy, 2);
        for _ in 0..20 {
            a.observe(0, mbps, -55.0);
            a.observe(1, mbps, -55.0);
        }
        a
    }

    #[test]
    fn buffer_only_thresholds() {
        let a = warmed(AbrPolicy::BufferOnly, 1000.0);
        let i = |b| inputs(b, 2000.0, 2000.0, false);
        assert_eq!(a.decide(0, &i(1.0), 1.0, 1.0).quality, QualityLevel::Low);
        assert_eq!(a.decide(0, &i(5.0), 1.0, 1.0).quality, QualityLevel::Medium);
        assert_eq!(a.decide(0, &i(9.0), 1.0, 1.0).quality, QualityLevel::High);
    }

    #[test]
    fn throughput_only_scales_with_bandwidth() {
        // 1000 Mbps x 0.85 = 850 budget -> High (364) easily at share 1.
        let a = warmed(AbrPolicy::ThroughputOnly, 1000.0);
        assert_eq!(
            a.decide(0, &inputs(5.0, 1000.0, 1000.0, false), 1.0, 1.0)
                .quality,
            QualityLevel::High
        );
        // share 1/4 -> 212 budget -> even Low (235) fails -> clamps Low.
        assert_eq!(
            a.decide(0, &inputs(5.0, 1000.0, 1000.0, false), 0.25, 1.0)
                .quality,
            QualityLevel::Low
        );
        // Visibility culling (needed_fraction 0.7) stretches the budget to
        // ~304 Mbps -> Medium (294) fits, High (364) does not.
        assert_eq!(
            a.decide(0, &inputs(5.0, 1000.0, 1000.0, false), 0.25, 0.7)
                .quality,
            QualityLevel::Medium
        );
        // Aggressive culling (0.5) fits even High: budget 425 > 364.
        assert_eq!(
            a.decide(0, &inputs(5.0, 1000.0, 1000.0, false), 0.25, 0.5)
                .quality,
            QualityLevel::High
        );
    }

    #[test]
    fn cross_layer_downgrades_on_predicted_dip() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let stable = a.decide(0, &inputs(5.0, 2502.5, 2502.5, false), 1.0, 1.0);
        assert_eq!(stable.quality, QualityLevel::High);
        // PHY forecast halves -> budget 425 -> still High? 425 > 364 yes.
        // Forecast collapse to 1/5 -> budget 170 -> Low.
        let dip = a.decide(0, &inputs(5.0, 2502.5, 500.5, false), 1.0, 1.0);
        assert_eq!(dip.quality, QualityLevel::Low);
        // Throughput-only would have stayed High.
        let naive = warmed(AbrPolicy::ThroughputOnly, 1000.0).decide(
            0,
            &inputs(5.0, 2502.5, 500.5, false),
            1.0,
            1.0,
        );
        assert_eq!(naive.quality, QualityLevel::High);
    }

    #[test]
    fn blockage_forecast_triggers_reactions() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let d = a.decide(1, &inputs(5.0, 2502.5, 2502.5, true), 1.0, 1.0);
        assert!(d
            .actions
            .iter()
            .any(|x| matches!(x, RateAction::Prefetch { user: 1, .. })));
        assert!(d.actions.contains(&RateAction::BeamSwitch { user: 1 }));
    }

    #[test]
    fn geometry_shift_triggers_regroup() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        let d = a.decide(0, &inputs(5.0, 1000.0, 2000.0, false), 1.0, 1.0);
        assert!(d.actions.contains(&RateAction::Regroup));
        let stable = a.decide(0, &inputs(5.0, 1000.0, 1000.0, false), 1.0, 1.0);
        assert!(!stable.actions.contains(&RateAction::Regroup));
    }

    #[test]
    fn degrade_clamps_by_distress() {
        let a = warmed(AbrPolicy::CrossLayer, 1000.0);
        // Zero / light distress: identity.
        assert_eq!(a.degrade(QualityLevel::High, 0), QualityLevel::High);
        assert_eq!(a.degrade(QualityLevel::Low, 1), QualityLevel::Low);
        // Moderate distress: one step down (saturating at the bottom).
        assert_eq!(a.degrade(QualityLevel::High, 2), QualityLevel::Medium);
        assert_eq!(a.degrade(QualityLevel::Medium, 3), QualityLevel::Low);
        assert_eq!(a.degrade(QualityLevel::Low, 2), QualityLevel::Low);
        // Sustained distress: the bottom of the ladder.
        assert_eq!(a.degrade(QualityLevel::High, 4), QualityLevel::Low);
        assert_eq!(a.degrade(QualityLevel::High, 100), QualityLevel::Low);
    }

    #[test]
    fn non_cross_layer_policies_emit_no_actions() {
        for policy in [AbrPolicy::BufferOnly, AbrPolicy::ThroughputOnly] {
            let a = warmed(policy, 1000.0);
            let d = a.decide(0, &inputs(1.0, 100.0, 50.0, true), 1.0, 1.0);
            assert!(d.actions.is_empty());
        }
    }
}

//! volcast-core: the paper's contribution — a multi-user volumetric video
//! streaming system over mmWave WLANs with cross-layer design.
//!
//! The crate composes the substrates (`volcast-pointcloud`,
//! `volcast-viewport`, `volcast-mmwave`, `volcast-net`) into the four
//! research-agenda components of the paper plus the end-to-end system:
//!
//! - [`grouping`]: multicast grouping with viewport similarity — the
//!   `T_m(k) = S_m/r_m + Σ(S_i - S_m)/r_i ≤ 1/F` transmission-time model
//!   and a similarity-driven group search (§4.2),
//! - [`bandwidth`]: cross-layer bandwidth prediction combining PHY-layer
//!   indicators (RSS trend, forecast blockage) with application-layer
//!   indicators (throughput history, buffer levels) (§4.3),
//! - [`rate_adapt`]: the multi-user video rate adaptation that picks
//!   quality levels and reactions (prefetch / regroup / beam switch)
//!   (§4.3),
//! - [`mitigation`]: proactive blockage mitigation driven by multi-user
//!   viewport prediction (§4.1),
//! - [`session`]: the end-to-end streaming session driving all of the
//!   above frame by frame, with client buffers and stall accounting,
//! - [`server`]: the serving story — per-client connection state
//!   machines streaming the `volcast-net::wire` container with admission
//!   control, bounded send queues (backpressure), and network faults
//!   (disconnects, loss, stalls) from the deterministic fault plan,
//! - [`player`]: the three player baselines of Table 1 — vanilla (full
//!   frames), multi-user ViVo (visibility-aware unicast) — and volcast
//!   itself (visibility-aware multicast with custom beams),
//! - [`qoe`]: quality-of-experience metrics,
//! - [`multi_ap`]: multi-AP coordination (§5, open challenge realized).
//!
//! ```
//! use volcast_core::{SessionParams, StreamingSession};
//! use volcast_viewport::UserStudy;
//!
//! // Two seeded runs of the full end-to-end session agree exactly.
//! let params = SessionParams { frames: 5, analysis_points: 2_000, ..SessionParams::default() };
//! let traces = UserStudy::generate_with(7, 5, 1, 1).traces;
//! let a = StreamingSession::new(params.clone(), traces.clone()).run().unwrap();
//! let b = StreamingSession::new(params, traces).run().unwrap();
//! assert_eq!(a.qoe.mean_fps(), b.qoe.mean_fps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod campus;
pub mod config;
pub mod error;
pub mod grouping;
pub mod mitigation;
pub mod multi_ap;
pub mod player;
pub mod qoe;
pub mod rate_adapt;
pub mod server;
pub mod session;

pub use bandwidth::{BandwidthPredictor, CrossLayerInputs};
pub use campus::{Campus, CampusOutcome, CampusParams};
pub use config::SystemConfig;
pub use error::VolcastError;
pub use grouping::{Group, GroupPlan, GroupPlanner, GroupingInputs};
pub use mitigation::{BlockageMitigator, MitigationAction, MitigationMode};
pub use multi_ap::{ApAssignment, EpochCoordinator, MultiApCoordinator};
pub use player::{max_sustainable_fps, PlayerKind};
pub use qoe::{QoeReport, UserQoe};
pub use rate_adapt::{
    AbrPolicy, DeliveryDecision, Distress, FecRung, GroupState, RateAction, RateAdapter,
};
pub use server::{ClientOutcome, ServerOutcome, ServerParams, SessionServer};
pub use session::{DeliveryMode, RadioKind, SessionOutcome, SessionParams, StreamingSession};

//! Quality-of-experience accounting.
//!
//! ## Empty-input contract
//!
//! Every aggregate is total and finite: an empty session (zero frames,
//! zero users, or zero duration) must never poison downstream `results/`
//! files with NaN. Ratios and means over nothing return `0.0`; the Jain
//! fairness index over nothing returns `1.0` (vacuously fair). The
//! `empty_session_aggregates_are_finite` test pins this contract.

use volcast_pointcloud::QualityLevel;

/// Accumulated QoE for one user over a session.
#[derive(Debug, Clone, PartialEq)]
pub struct UserQoe {
    /// Frames rendered on time.
    pub frames_on_time: usize,
    /// Frames that arrived late (stalled playback).
    pub frames_stalled: usize,
    /// Total stall time in seconds.
    pub stall_time_s: f64,
    /// Per-frame quality levels delivered.
    pub qualities: Vec<QualityLevel>,
    /// Number of quality switches.
    pub quality_switches: usize,
}

impl Default for UserQoe {
    fn default() -> Self {
        UserQoe {
            frames_on_time: 0,
            frames_stalled: 0,
            stall_time_s: 0.0,
            qualities: Vec::new(),
            quality_switches: 0,
        }
    }
}

impl UserQoe {
    /// Records one frame's outcome.
    pub fn record_frame(&mut self, on_time: bool, stall_s: f64, quality: QualityLevel) {
        if on_time {
            self.frames_on_time += 1;
        } else {
            self.frames_stalled += 1;
            self.stall_time_s += stall_s;
        }
        if let Some(&last) = self.qualities.last() {
            if last != quality {
                self.quality_switches += 1;
            }
        }
        self.qualities.push(quality);
    }

    /// Total frames recorded.
    pub fn frames(&self) -> usize {
        self.frames_on_time + self.frames_stalled
    }

    /// Fraction of frames that stalled; `0.0` when no frames were
    /// recorded (never NaN).
    pub fn stall_ratio(&self) -> f64 {
        if self.frames() == 0 {
            0.0
        } else {
            self.frames_stalled as f64 / self.frames() as f64
        }
    }

    /// Mean quality as a 0..=2 score (Low=0, Medium=1, High=2); `0.0`
    /// when no frames were recorded.
    pub fn mean_quality_score(&self) -> f64 {
        if self.qualities.is_empty() {
            return 0.0;
        }
        let sum: usize = self
            .qualities
            .iter()
            .map(|q| match q {
                QualityLevel::Low => 0usize,
                QualityLevel::Medium => 1,
                QualityLevel::High => 2,
            })
            .sum();
        sum as f64 / self.qualities.len() as f64
    }

    /// Effective frame rate over a session of `duration_s` seconds;
    /// `0.0` for a zero or negative duration (never infinite or NaN).
    pub fn effective_fps(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            self.frames_on_time as f64 / duration_s
        }
    }
}

/// Session-level QoE: all users.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QoeReport {
    /// Per-user records.
    pub users: Vec<UserQoe>,
    /// Session length in seconds.
    pub duration_s: f64,
}

impl QoeReport {
    /// Creates a report for `n` users.
    pub fn new(n: usize) -> Self {
        QoeReport {
            users: vec![UserQoe::default(); n],
            duration_s: 0.0,
        }
    }

    /// Mean stall ratio across users; `0.0` for a report with no users.
    pub fn mean_stall_ratio(&self) -> f64 {
        if self.users.is_empty() {
            return 0.0;
        }
        self.users.iter().map(|u| u.stall_ratio()).sum::<f64>() / self.users.len() as f64
    }

    /// Mean quality score across users; `0.0` for a report with no users.
    pub fn mean_quality_score(&self) -> f64 {
        if self.users.is_empty() {
            return 0.0;
        }
        self.users
            .iter()
            .map(|u| u.mean_quality_score())
            .sum::<f64>()
            / self.users.len() as f64
    }

    /// Mean effective FPS across users; `0.0` for a report with no users
    /// or a zero-duration session.
    pub fn mean_fps(&self) -> f64 {
        if self.users.is_empty() {
            return 0.0;
        }
        self.users
            .iter()
            .map(|u| u.effective_fps(self.duration_s))
            .sum::<f64>()
            / self.users.len() as f64
    }

    /// Jain's fairness index over per-user effective FPS; `1.0`
    /// (vacuously fair) when there are no users or all rates are zero.
    pub fn fps_fairness(&self) -> f64 {
        let rates: Vec<f64> = self
            .users
            .iter()
            .map(|u| u.effective_fps(self.duration_s))
            .collect();
        let n = rates.len() as f64;
        if n == 0.0 {
            return 1.0;
        }
        let sum: f64 = rates.iter().sum();
        let sq_sum: f64 = rates.iter().map(|r| r * r).sum();
        if sq_sum == 0.0 {
            1.0
        } else {
            sum * sum / (n * sq_sum)
        }
    }
}

// JSON serialization (replaces the former serde derives; see volcast-util).
volcast_util::impl_json_struct!(UserQoe {
    frames_on_time,
    frames_stalled,
    stall_time_s,
    qualities,
    quality_switches
});
volcast_util::impl_json_struct!(QoeReport { users, duration_s });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_recording() {
        let mut u = UserQoe::default();
        u.record_frame(true, 0.0, QualityLevel::High);
        u.record_frame(false, 0.05, QualityLevel::High);
        u.record_frame(true, 0.0, QualityLevel::Low);
        assert_eq!(u.frames(), 3);
        assert_eq!(u.frames_on_time, 2);
        assert!((u.stall_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((u.stall_time_s - 0.05).abs() < 1e-12);
        assert_eq!(u.quality_switches, 1);
    }

    #[test]
    fn quality_score() {
        let mut u = UserQoe::default();
        u.record_frame(true, 0.0, QualityLevel::Low);
        u.record_frame(true, 0.0, QualityLevel::High);
        assert!((u.mean_quality_score() - 1.0).abs() < 1e-12);
        assert_eq!(UserQoe::default().mean_quality_score(), 0.0);
    }

    #[test]
    fn effective_fps() {
        let mut u = UserQoe::default();
        for _ in 0..60 {
            u.record_frame(true, 0.0, QualityLevel::Medium);
        }
        assert!((u.effective_fps(2.0) - 30.0).abs() < 1e-12);
        assert_eq!(u.effective_fps(0.0), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let mut r = QoeReport::new(2);
        r.duration_s = 1.0;
        r.users[0].record_frame(true, 0.0, QualityLevel::High);
        r.users[1].record_frame(false, 0.1, QualityLevel::Low);
        assert!((r.mean_stall_ratio() - 0.5).abs() < 1e-12);
        assert!((r.mean_quality_score() - 1.0).abs() < 1e-12);
        assert!((r.mean_fps() - 0.5).abs() < 1e-12);
    }

    /// Pins the module-level empty-input contract: an empty session must
    /// yield finite (zero-division-free) aggregates, because these feed
    /// the `results/*.txt` files verbatim.
    #[test]
    fn empty_session_aggregates_are_finite() {
        // No users at all.
        let empty = QoeReport::new(0);
        assert_eq!(empty.mean_stall_ratio(), 0.0);
        assert_eq!(empty.mean_quality_score(), 0.0);
        assert_eq!(empty.mean_fps(), 0.0);
        assert_eq!(empty.fps_fairness(), 1.0);

        // Users present but zero frames and zero duration.
        let idle = QoeReport::new(3);
        assert_eq!(idle.mean_stall_ratio(), 0.0);
        assert_eq!(idle.mean_quality_score(), 0.0);
        assert_eq!(idle.mean_fps(), 0.0);
        assert_eq!(idle.fps_fairness(), 1.0);
        let u = &idle.users[0];
        assert_eq!(u.stall_ratio(), 0.0);
        assert_eq!(u.mean_quality_score(), 0.0);
        assert_eq!(u.effective_fps(0.0), 0.0);
        assert_eq!(u.effective_fps(-1.0), 0.0);

        // Frames recorded but duration never set: fps paths stay finite.
        let mut r = QoeReport::new(1);
        r.users[0].record_frame(true, 0.0, QualityLevel::High);
        assert!(r.mean_fps().is_finite());
        assert!(r.fps_fairness().is_finite());
    }

    #[test]
    fn fairness_index() {
        let mut r = QoeReport::new(2);
        r.duration_s = 1.0;
        // Equal rates -> fairness 1.
        for u in &mut r.users {
            for _ in 0..30 {
                u.record_frame(true, 0.0, QualityLevel::Medium);
            }
        }
        assert!((r.fps_fairness() - 1.0).abs() < 1e-9);
        // Skewed rates -> fairness < 1.
        let mut s = QoeReport::new(2);
        s.duration_s = 1.0;
        for _ in 0..30 {
            s.users[0].record_frame(true, 0.0, QualityLevel::Medium);
        }
        s.users[1].record_frame(true, 0.0, QualityLevel::Medium);
        assert!(s.fps_fairness() < 0.7);
        // Degenerate cases.
        assert_eq!(QoeReport::new(0).fps_fairness(), 1.0);
        assert_eq!(QoeReport::new(2).fps_fairness(), 1.0);
    }
}
